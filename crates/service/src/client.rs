//! A blocking typed client for the coloring service.
//!
//! [`ServiceClient`] wraps one TCP connection and exposes a method per protocol verb;
//! each method sends a single frame, reads a single reply frame, and either returns the
//! typed payload or a [`ClientError`].  Server-side typed errors arrive as
//! [`ClientError::Service`], so callers can match on e.g.
//! [`ServiceError::EpochUnavailable`]
//! without string parsing.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use arbcolor::dynamic::{GraphUpdate, RepairStrategy};
use arbcolor_graph::Vertex;

use crate::protocol::{read_frame, write_frame, Request, Response, ServiceError, ServiceStats};

/// Errors a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or timeout).
    Io(io::Error),
    /// The server's reply frame could not be decoded.
    Protocol(ServiceError),
    /// The server answered with a typed error.
    Service(ServiceError),
    /// The server answered with a well-formed reply of the wrong kind.
    Unexpected {
        /// What the call was waiting for.
        expected: &'static str,
        /// A debug rendering of what arrived instead.
        got: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Service(e) => write!(f, "service error: {e}"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) | ClientError::Service(e) => Some(e),
            ClientError::Unexpected { .. } => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Outcome of a successful [`ServiceClient::apply`] call (the wire-level projection of
/// [`BatchOutcome`](arbcolor::dynamic::BatchOutcome)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedBatch {
    /// Epoch after the batch.
    pub epoch: u64,
    /// Edges submitted across the batch's updates.
    pub submitted_edges: u64,
    /// Edges genuinely added.
    pub new_edges: u64,
    /// Edges genuinely removed.
    pub removed_edges: u64,
    /// Conflict-frontier size.
    pub frontier: u64,
    /// Vertices recolored by conflict repair.
    pub repaired: u64,
    /// Strategy the repair policy chose.
    pub strategy: RepairStrategy,
    /// `(colors_before, colors_after, recolored)` when auto-compaction ran.
    pub compacted: Option<(u64, u64, u64)>,
}

/// A blocking client over one TCP connection to a [`ServiceServer`](crate::server::ServiceServer).
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
}

impl ServiceClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient { stream })
    }

    /// Bounds how long each call waits for the server's reply (`None` = forever).
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ))
        })?;
        let response = Response::decode(&payload).map_err(ClientError::Protocol)?;
        if let Response::Error(err) = response {
            return Err(ClientError::Service(err));
        }
        Ok(response)
    }

    /// Applies a batch of graph updates.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed service errors (e.g. an out-of-range endpoint).
    pub fn apply(&mut self, updates: Vec<GraphUpdate>) -> Result<AppliedBatch, ClientError> {
        match self.call(&Request::Apply(updates))? {
            Response::Applied {
                epoch,
                submitted_edges,
                new_edges,
                removed_edges,
                frontier,
                repaired,
                strategy,
                compacted,
            } => Ok(AppliedBatch {
                epoch,
                submitted_edges,
                new_edges,
                removed_edges,
                frontier,
                repaired,
                strategy,
                compacted,
            }),
            other => Err(unexpected("Applied", &other)),
        }
    }

    /// Queries the current colors of `vertices`, returned in request order.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed service errors.
    pub fn query_colors(&mut self, vertices: Vec<Vertex>) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::QueryColors(vertices))? {
            Response::Colors(colors) => Ok(colors),
            other => Err(unexpected("Colors", &other)),
        }
    }

    /// Fetches the full coloring at `epoch` (`None` = current); returns the snapshot's
    /// epoch alongside one color per vertex.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed service errors — notably
    /// [`ServiceError::EpochUnavailable`] for evicted epochs.
    pub fn snapshot(&mut self, epoch: Option<u64>) -> Result<(u64, Vec<u64>), ClientError> {
        match self.call(&Request::Snapshot(epoch))? {
            Response::Snapshot { epoch, colors } => Ok((epoch, colors)),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    /// Fetches service statistics.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Runs a palette-compaction sweep; returns `(epoch, colors_before, colors_after,
    /// recolored)`.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn compact(&mut self) -> Result<(u64, u64, u64, u64), ClientError> {
        match self.call(&Request::Compact)? {
            Response::Compacted { epoch, colors_before, colors_after, recolored } => {
                Ok((epoch, colors_before, colors_after, recolored))
            }
            other => Err(unexpected("Compacted", &other)),
        }
    }

    /// Asks the server to re-verify its coloring; returns `(legal, conflicts)`.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn verify(&mut self) -> Result<(bool, u64), ClientError> {
        match self.call(&Request::Verify)? {
            Response::Verified { legal, conflicts } => Ok((legal, conflicts)),
            other => Err(unexpected("Verified", &other)),
        }
    }

    /// Asks the daemon to shut down cleanly; returns once the server acknowledges.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(expected: &'static str, got: &Response) -> ClientError {
    ClientError::Unexpected { expected, got: format!("{got:?}") }
}
