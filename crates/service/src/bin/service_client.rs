//! Command-line client for the coloring daemon.
//!
//! Usage:
//!   service_client replay ADDR [--n N] [--ops N] [--batch N] [--seed S] [--skew F]
//!                              [--compact-every K] [--insert-weight W] [--remove-weight W]
//!                              [--query-weight W]
//!   service_client stats ADDR
//!   service_client verify ADDR
//!   service_client shutdown ADDR
//!
//! `replay` generates the seeded workload locally (the same generator the E25 benchmark
//! uses), streams it to the daemon, asks the daemon to re-verify its coloring, and exits
//! non-zero if the final coloring is illegal or any request fails — which is exactly the
//! assertion the CI `service-smoke` job makes.

use arbcolor_service::client::ServiceClient;
use arbcolor_service::workload::{generate, WorkloadConfig, WorkloadOp};

fn usage() -> ! {
    eprintln!(
        "usage: service_client replay ADDR [--n N] [--ops N] [--batch N] [--seed S] \
         [--skew F] [--compact-every K] [--insert-weight W] [--remove-weight W] \
         [--query-weight W]\n       service_client stats|verify|shutdown ADDR"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("service_client: {flag} needs a value");
        usage();
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("service_client: cannot parse {flag} value {value:?}");
        usage();
    })
}

fn connect(addr: &str) -> ServiceClient {
    ServiceClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("service_client: cannot connect to {addr}: {e}");
        std::process::exit(1);
    })
}

fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("service_client: {context}: {err}");
    std::process::exit(1);
}

fn replay(addr: &str, mut rest: impl Iterator<Item = String>) {
    let mut config = WorkloadConfig { n: 256, ops: 120, batch_size: 8, ..Default::default() };
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--n" => config.n = parse(&flag, rest.next()),
            "--ops" => config.ops = parse(&flag, rest.next()),
            "--batch" => config.batch_size = parse(&flag, rest.next()),
            "--seed" => config.seed = parse(&flag, rest.next()),
            "--skew" => config.skew = parse(&flag, rest.next()),
            "--compact-every" => config.compact_every = parse(&flag, rest.next()),
            "--insert-weight" => config.insert_weight = parse(&flag, rest.next()),
            "--remove-weight" => config.remove_weight = parse(&flag, rest.next()),
            "--query-weight" => config.query_weight = parse(&flag, rest.next()),
            other => {
                eprintln!("service_client: unknown replay flag {other}");
                usage();
            }
        }
    }
    let mut client = connect(addr);
    let (mut applies, mut queries, mut compactions, mut repaired) = (0u64, 0u64, 0u64, 0u64);
    for op in generate(&config) {
        match op {
            WorkloadOp::Apply(updates) => match client.apply(updates) {
                Ok(outcome) => {
                    applies += 1;
                    repaired += outcome.repaired;
                }
                Err(e) => fail("apply failed", e),
            },
            WorkloadOp::QueryColors(vertices) => match client.query_colors(vertices) {
                Ok(_) => queries += 1,
                Err(e) => fail("query failed", e),
            },
            WorkloadOp::Compact => match client.compact() {
                Ok(_) => compactions += 1,
                Err(e) => fail("compact failed", e),
            },
        }
    }
    let (legal, conflicts) = client.verify().unwrap_or_else(|e| fail("verify failed", e));
    let stats = client.stats().unwrap_or_else(|e| fail("stats failed", e));
    println!(
        "replayed seed {}: {applies} applies, {queries} queries, {compactions} compactions, \
         {repaired} repaired; server at epoch {} with {} edges and {} colors",
        config.seed, stats.epoch, stats.m, stats.colors
    );
    if !legal {
        eprintln!("service_client: final coloring is ILLEGAL ({conflicts} conflicts)");
        std::process::exit(1);
    }
    println!("final coloring verified legal");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let Some(addr) = args.next() else { usage() };
    match command.as_str() {
        "replay" => replay(&addr, args),
        "stats" => {
            let stats = connect(&addr).stats().unwrap_or_else(|e| fail("stats failed", e));
            println!(
                "n={} m={} epoch={} colors={} max_degree={} batches={} new_edges={} \
                 removed_edges={} repaired={} compactions={} queries={}",
                stats.n,
                stats.m,
                stats.epoch,
                stats.colors,
                stats.max_degree,
                stats.batches,
                stats.new_edges,
                stats.removed_edges,
                stats.repaired,
                stats.compactions,
                stats.queries
            );
        }
        "verify" => {
            let (legal, conflicts) =
                connect(&addr).verify().unwrap_or_else(|e| fail("verify failed", e));
            println!("legal={legal} conflicts={conflicts}");
            if !legal {
                std::process::exit(1);
            }
        }
        "shutdown" => {
            connect(&addr).shutdown().unwrap_or_else(|e| fail("shutdown failed", e));
            println!("server acknowledged shutdown");
        }
        other => {
            eprintln!("service_client: unknown command {other}");
            usage();
        }
    }
}
