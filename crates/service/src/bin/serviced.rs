//! The coloring daemon.
//!
//! Usage:
//!   serviced [--port P] [--port-file PATH] [--n N | --dataset EDGES_FILE]
//!            [--request-timeout-ms MS] [--idle-timeout-ms MS]
//!            [--snapshot-history K] [--auto-compact]
//!
//! Binds a TCP listener (port 0 = ephemeral), prints the bound address on stdout as
//! `listening on ADDR`, optionally writes the bare address to `--port-file` (the CI
//! `service-smoke` job polls that file to discover the ephemeral port), and serves the
//! typed protocol until a client sends a shutdown request.  Exits 0 on a clean shutdown.

use std::io::Write;
use std::time::Duration;

use arbcolor_service::server::{ColoringService, ServiceConfig, ServiceServer};

struct Args {
    port: u16,
    port_file: Option<String>,
    n: usize,
    dataset: Option<String>,
    config: ServiceConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: serviced [--port P] [--port-file PATH] [--n N | --dataset FILE] \
         [--request-timeout-ms MS] [--idle-timeout-ms MS] [--snapshot-history K] \
         [--auto-compact]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("serviced: {flag} needs a value");
        usage();
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("serviced: cannot parse {flag} value {value:?}");
        usage();
    })
}

fn parse_args() -> Args {
    let mut args =
        Args { port: 0, port_file: None, n: 1024, dataset: None, config: ServiceConfig::default() };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--port" => args.port = parse(&flag, iter.next()),
            "--port-file" => args.port_file = Some(parse(&flag, iter.next())),
            "--n" => args.n = parse(&flag, iter.next()),
            "--dataset" => args.dataset = Some(parse(&flag, iter.next())),
            "--request-timeout-ms" => {
                args.config.request_timeout = Duration::from_millis(parse(&flag, iter.next()))
            }
            "--idle-timeout-ms" => {
                args.config.idle_timeout = Duration::from_millis(parse(&flag, iter.next()))
            }
            "--snapshot-history" => args.config.snapshot_history = parse(&flag, iter.next()),
            "--auto-compact" => args.config.auto_compact = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("serviced: unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let service = match &args.dataset {
        Some(path) => {
            let graph = arbcolor_graph::io::read_graph(path).unwrap_or_else(|e| {
                eprintln!("serviced: cannot load dataset {path}: {e}");
                std::process::exit(2);
            });
            ColoringService::new(graph, args.config)
        }
        None => ColoringService::empty(args.n, args.config),
    }
    .unwrap_or_else(|e| {
        eprintln!("serviced: cannot start the service: {e}");
        std::process::exit(2);
    });
    let server = ServiceServer::bind(("127.0.0.1", args.port), service).unwrap_or_else(|e| {
        eprintln!("serviced: cannot bind 127.0.0.1:{}: {e}", args.port);
        std::process::exit(2);
    });
    let addr = server.local_addr().expect("bound listener has an address");
    println!("listening on {addr}");
    std::io::stdout().flush().ok();
    if let Some(path) = &args.port_file {
        // Write-then-rename so pollers never observe a half-written address.
        let tmp = format!("{path}.tmp");
        let write =
            std::fs::write(&tmp, addr.to_string()).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("serviced: cannot write port file {path}: {e}");
            std::process::exit(2);
        }
    }
    if let Err(e) = server.run() {
        eprintln!("serviced: accept loop failed: {e}");
        std::process::exit(1);
    }
    println!("shutdown complete");
}
