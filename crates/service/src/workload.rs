//! Seeded, replayable update workloads for the coloring service.
//!
//! [`generate`] expands a [`WorkloadConfig`] into a deterministic stream of
//! [`WorkloadOp`]s — mixed insert/delete batches, color queries, and periodic compaction
//! sweeps — using a ChaCha8 stream cipher keyed by the config's seed.  The generator
//! maintains its own model of the edge set so deletions always target edges that exist
//! and no batch touches the same edge twice (which keeps the model exactly in sync with
//! the service's last-write-wins batch semantics).  Same config ⇒ byte-identical stream,
//! which is what lets the CI `service-smoke` job and the E25 benchmark assert that
//! replaying a workload twice produces bit-identical colorings.
//!
//! Vertex sampling is skewed: endpoint indices are drawn as `⌊n · u^skew⌋` for uniform
//! `u ∈ [0, 1)`.  `skew = 1` is uniform; larger values concentrate traffic on low-index
//! vertices, modeling hub-heavy update streams.

use std::collections::BTreeSet;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use arbcolor::dynamic::GraphUpdate;
use arbcolor_graph::Vertex;

/// Shape of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Vertices of the served graph.
    pub n: usize,
    /// Total operations to generate.
    pub ops: usize,
    /// Edges per mutation batch / vertices per query.
    pub batch_size: usize,
    /// Relative weight of edge insertions within a mutation batch.
    pub insert_weight: u32,
    /// Relative weight of edge removals within a mutation batch.
    pub remove_weight: u32,
    /// Relative weight of query operations against mutation operations.
    pub query_weight: u32,
    /// Emit a compaction sweep every this many operations (0 = never).
    pub compact_every: usize,
    /// Vertex-sampling skew exponent (`1.0` = uniform, larger = hub-heavier).
    pub skew: f64,
    /// RNG seed; the whole stream is a pure function of this config.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n: 1_000,
            ops: 200,
            batch_size: 16,
            insert_weight: 3,
            remove_weight: 1,
            query_weight: 1,
            compact_every: 50,
            skew: 1.5,
            seed: 7,
        }
    }
}

/// One operation of a generated workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// A mutation batch (mixed insertions and removals, already deduplicated).
    Apply(Vec<GraphUpdate>),
    /// A color query over the given vertices.
    QueryColors(Vec<Vertex>),
    /// A palette-compaction sweep.
    Compact,
}

/// Draws a skewed vertex index in `0..n`.
fn skewed_vertex(rng: &mut ChaCha8Rng, n: usize, skew: f64) -> Vertex {
    let u: f64 = rng.gen();
    let v = (n as f64 * u.powf(skew)) as usize;
    v.min(n - 1)
}

/// Draws a canonical `(min, max)` candidate edge with distinct skewed endpoints.
fn skewed_edge(rng: &mut ChaCha8Rng, n: usize, skew: f64) -> (Vertex, Vertex) {
    loop {
        let u = skewed_vertex(rng, n, skew);
        let v = skewed_vertex(rng, n, skew);
        if u != v {
            return (u.min(v), u.max(v));
        }
    }
}

/// Expands `config` into its deterministic operation stream.
///
/// The generator tracks the edge set the stream implies, so every `RemoveEdges` entry
/// names a currently present edge, every `InsertEdges` entry names a currently absent
/// one, and no batch mentions the same edge twice.  Replaying the stream against a
/// [`ColoringService`](crate::server::ColoringService) (or a bare
/// [`DynamicColoring`](arbcolor::dynamic::DynamicColoring)) therefore mutates the graph
/// exactly as the model predicts.
///
/// # Panics
///
/// Panics if `config.n < 2`, `config.ops == 0` is fine but `config.batch_size == 0` or a
/// zero total weight would generate empty batches — those are rejected with a panic
/// naming the offending field, since a silently empty workload would make benchmarks lie.
pub fn generate(config: &WorkloadConfig) -> Vec<WorkloadOp> {
    assert!(config.n >= 2, "workload needs n >= 2, got {}", config.n);
    assert!(config.batch_size > 0, "workload needs batch_size > 0");
    assert!(
        config.insert_weight + config.remove_weight > 0,
        "workload needs a nonzero insert or remove weight"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut present: BTreeSet<(Vertex, Vertex)> = BTreeSet::new();
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    let mut ops = Vec::with_capacity(config.ops);
    let mutation_weight = config.insert_weight + config.remove_weight;
    for op_index in 0..config.ops {
        if config.compact_every > 0 && op_index > 0 && op_index % config.compact_every == 0 {
            ops.push(WorkloadOp::Compact);
            continue;
        }
        let is_query = rng.gen_range(0..mutation_weight + config.query_weight) >= mutation_weight;
        if is_query {
            let vertices: Vec<Vertex> = (0..config.batch_size)
                .map(|_| skewed_vertex(&mut rng, config.n, config.skew))
                .collect();
            ops.push(WorkloadOp::QueryColors(vertices));
            continue;
        }
        let mut inserts = Vec::new();
        let mut removes = Vec::new();
        let mut touched: BTreeSet<(Vertex, Vertex)> = BTreeSet::new();
        for _ in 0..config.batch_size {
            let remove =
                !edges.is_empty() && rng.gen_range(0..mutation_weight) >= config.insert_weight;
            if remove {
                let at = rng.gen_range(0..edges.len());
                let edge = edges.swap_remove(at);
                if touched.insert(edge) {
                    present.remove(&edge);
                    removes.push(edge);
                } else {
                    // Already inserted in this very batch; put it back untouched.
                    edges.push(edge);
                }
            } else {
                // A few redraws to find an absent, untouched edge; dense corners of the
                // skew distribution may fail all of them, in which case the slot is
                // skipped (batches stay deduplicated rather than padded with no-ops).
                for _ in 0..8 {
                    let edge = skewed_edge(&mut rng, config.n, config.skew);
                    if !present.contains(&edge) && !touched.contains(&edge) {
                        touched.insert(edge);
                        present.insert(edge);
                        edges.push(edge);
                        inserts.push(edge);
                        break;
                    }
                }
            }
        }
        let mut updates = Vec::new();
        if !inserts.is_empty() {
            updates.push(GraphUpdate::InsertEdges(inserts));
        }
        if !removes.is_empty() {
            updates.push(GraphUpdate::RemoveEdges(removes));
        }
        if !updates.is_empty() {
            ops.push(WorkloadOp::Apply(updates));
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};
    use crate::server::{ColoringService, ServiceConfig};

    #[test]
    fn the_stream_is_a_pure_function_of_its_config() {
        let config = WorkloadConfig { n: 64, ops: 120, ..WorkloadConfig::default() };
        assert_eq!(generate(&config), generate(&config));
        let reseeded = WorkloadConfig { seed: config.seed + 1, ..config };
        assert_ne!(generate(&config), generate(&reseeded), "seed must matter");
    }

    #[test]
    fn removals_always_name_present_edges_and_batches_never_repeat_an_edge() {
        let config = WorkloadConfig {
            n: 32,
            ops: 300,
            batch_size: 8,
            insert_weight: 1,
            remove_weight: 1,
            ..WorkloadConfig::default()
        };
        let mut present: BTreeSet<(Vertex, Vertex)> = BTreeSet::new();
        let mut saw_removal = false;
        for op in generate(&config) {
            let WorkloadOp::Apply(updates) = op else { continue };
            let mut touched = BTreeSet::new();
            for update in &updates {
                for &edge in update.edges() {
                    assert!(touched.insert(edge), "edge {edge:?} repeated within a batch");
                    if update.is_insert() {
                        assert!(present.insert(edge), "inserted a present edge {edge:?}");
                    } else {
                        saw_removal = true;
                        assert!(present.remove(&edge), "removed an absent edge {edge:?}");
                    }
                }
            }
        }
        assert!(saw_removal, "the mixed workload never removed anything");
    }

    #[test]
    fn replaying_a_workload_keeps_the_service_legal() {
        let config = WorkloadConfig {
            n: 48,
            ops: 80,
            batch_size: 6,
            compact_every: 20,
            ..WorkloadConfig::default()
        };
        let mut service = ColoringService::empty(config.n, ServiceConfig::default()).unwrap();
        for op in generate(&config) {
            let request = match op {
                WorkloadOp::Apply(updates) => Request::Apply(updates),
                WorkloadOp::QueryColors(vertices) => Request::QueryColors(vertices),
                WorkloadOp::Compact => Request::Compact,
            };
            let reply = service.handle(request);
            assert!(
                !matches!(reply, Response::Error(_)),
                "workload replay hit an error: {reply:?}"
            );
        }
        match service.handle(Request::Verify) {
            Response::Verified { legal: true, conflicts: 0 } => {}
            other => panic!("replayed service is not legal: {other:?}"),
        }
    }

    #[test]
    fn skew_concentrates_traffic_on_low_vertices() {
        let mut uniform_rng = ChaCha8Rng::seed_from_u64(5);
        let mut skewed_rng = ChaCha8Rng::seed_from_u64(5);
        let n = 1_000;
        let samples = 2_000;
        let uniform_mean: f64 =
            (0..samples).map(|_| skewed_vertex(&mut uniform_rng, n, 1.0) as f64).sum::<f64>()
                / samples as f64;
        let skewed_mean: f64 =
            (0..samples).map(|_| skewed_vertex(&mut skewed_rng, n, 3.0) as f64).sum::<f64>()
                / samples as f64;
        assert!(
            skewed_mean < uniform_mean * 0.6,
            "skew 3.0 should pull the mean index down (uniform {uniform_mean:.0}, skewed {skewed_mean:.0})"
        );
    }
}
