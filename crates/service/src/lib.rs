//! A long-lived coloring service over the dynamic-recoloring driver.
//!
//! Everything the "heavy traffic" axis needs to run the Barenboim–Elkin reproduction as a
//! *process* rather than a batch experiment:
//!
//! * [`protocol`] — a small typed wire protocol (length-prefixed frames, hand-rolled
//!   encoding, no external dependencies) covering edge mutations, color queries,
//!   epoch snapshots, palette compaction, verification, stats, and shutdown;
//! * [`server`] — [`ColoringService`], the protocol-agnostic
//!   state machine that owns a [`DynamicColoring`](arbcolor::dynamic::DynamicColoring)
//!   plus an epoch-stamped snapshot history, and
//!   [`ServiceServer`], the `std::net` TCP daemon that serves it
//!   with per-request timeouts and typed error replies;
//! * [`client`] — a blocking typed client speaking the same protocol;
//! * [`workload`] — a seeded, replayable generator of mixed insert/delete/query/compact
//!   streams with configurable skew, driving both the CI `service-smoke` job and the E25
//!   sustained-update benchmark.
//!
//! The wire protocol is versioned by a magic byte per frame; both sides reject frames
//! they cannot parse with a typed [`protocol::ServiceError`] instead of dying. All state
//! transitions go through `arbcolor::dynamic`, so everything the daemon serves inherits
//! the workspace-wide determinism guarantee: the same update stream produces bit-identical
//! colorings wherever it is replayed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod workload;

pub use client::{ClientError, ServiceClient};
pub use protocol::{Request, Response, ServiceError};
pub use server::{ColoringService, ServiceConfig, ServiceServer};
pub use workload::{WorkloadConfig, WorkloadOp};
