//! The wire protocol of the coloring service.
//!
//! # Frame format
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +----------------+---------------------------+
//! | length: u32 BE | payload (length bytes)    |
//! +----------------+---------------------------+
//! payload = [version: u8 = 1][tag: u8][fields…]
//! ```
//!
//! Integers inside the payload are little-endian (`u64` unless noted); edge and vertex
//! lists are a `u32` count followed by that many entries.  Frames longer than
//! [`MAX_FRAME_LEN`] are rejected with [`ServiceError::FrameTooLarge`] before any payload
//! is read, so a corrupt length prefix cannot make either side allocate unboundedly.
//!
//! The encoding is hand-rolled on purpose: the workspace's vendored `serde_json` stand-in
//! is write-only, and the daemon must not grow external dependencies.  Round-trip
//! (`encode` → `decode`) is pinned by unit tests for every variant.

use std::fmt;
use std::io::{self, Read, Write};

use arbcolor::dynamic::{GraphUpdate, RepairStrategy};
use arbcolor_graph::Vertex;

/// Protocol version carried as the first payload byte; bumped on breaking changes.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame payload (16 MiB) — large enough for a snapshot of a
/// million-vertex coloring, small enough to bound a malicious length prefix.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// A request frame, client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Apply a batch of graph updates and repair the coloring.
    Apply(Vec<GraphUpdate>),
    /// Query the current colors of the given vertices.
    QueryColors(Vec<Vertex>),
    /// Fetch the full coloring at an epoch (`None` = the current epoch).  Only the
    /// most recent epochs are retained — see
    /// [`ServiceConfig::snapshot_history`](crate::server::ServiceConfig).
    Snapshot(Option<u64>),
    /// Fetch service statistics.
    Stats,
    /// Run a palette-compaction sweep.
    Compact,
    /// Re-verify the maintained coloring against the current graph.
    Verify,
    /// Ask the daemon to stop accepting connections and exit cleanly.
    Shutdown,
}

/// Aggregate counters reported by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Vertices in the served graph.
    pub n: u64,
    /// Edges in the served graph.
    pub m: u64,
    /// Current epoch (one per successful mutation).
    pub epoch: u64,
    /// Distinct colors currently in use.
    pub colors: u64,
    /// Maximum degree of the current graph.
    pub max_degree: u64,
    /// Apply batches absorbed since startup.
    pub batches: u64,
    /// Edges genuinely added since startup.
    pub new_edges: u64,
    /// Edges genuinely removed since startup.
    pub removed_edges: u64,
    /// Vertices recolored by conflict repair since startup.
    pub repaired: u64,
    /// Compaction sweeps run since startup (explicit and automatic).
    pub compactions: u64,
    /// Color queries served since startup.
    pub queries: u64,
}

/// A response frame, server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Outcome of an [`Request::Apply`] batch.
    Applied {
        /// Epoch after the batch (one per successful mutation).
        epoch: u64,
        /// Edges submitted across the batch's updates.
        submitted_edges: u64,
        /// Edges genuinely added.
        new_edges: u64,
        /// Edges genuinely removed.
        removed_edges: u64,
        /// Conflict-frontier size.
        frontier: u64,
        /// Vertices recolored by conflict repair.
        repaired: u64,
        /// Strategy the repair policy chose.
        strategy: RepairStrategy,
        /// `(colors_before, colors_after, recolored)` when auto-compaction ran.
        compacted: Option<(u64, u64, u64)>,
    },
    /// Colors for the vertices of a [`Request::QueryColors`], in request order.
    Colors(Vec<u64>),
    /// A full coloring at the requested epoch.
    Snapshot {
        /// The epoch the snapshot was taken at.
        epoch: u64,
        /// One color per vertex, indexed by vertex.
        colors: Vec<u64>,
    },
    /// Service statistics.
    Stats(ServiceStats),
    /// Outcome of an explicit [`Request::Compact`] sweep.
    Compacted {
        /// Epoch after the sweep.
        epoch: u64,
        /// Distinct colors before.
        colors_before: u64,
        /// Distinct colors after.
        colors_after: u64,
        /// Vertices whose color changed.
        recolored: u64,
    },
    /// Outcome of a [`Request::Verify`] pass.
    Verified {
        /// Whether the maintained coloring is legal on the current graph.
        legal: bool,
        /// Number of monochromatic edges (0 when legal).
        conflicts: u64,
    },
    /// Acknowledgement of a [`Request::Shutdown`]; the daemon exits after sending it.
    ShuttingDown,
    /// A typed error; the connection stays usable.
    Error(ServiceError),
}

/// Typed errors a request can fail with — every variant crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The frame or payload could not be parsed.
    Malformed {
        /// What the decoder choked on.
        reason: String,
    },
    /// A frame announced a payload longer than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The announced length.
        len: u64,
        /// The enforced bound.
        max: u64,
    },
    /// An edge endpoint was outside `0..n`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: u64,
        /// The served graph's vertex count.
        n: u64,
    },
    /// An edge connected a vertex to itself.
    SelfLoop {
        /// The offending vertex.
        vertex: u64,
    },
    /// The requested snapshot epoch is no longer (or not yet) retained.
    EpochUnavailable {
        /// The requested epoch.
        requested: u64,
        /// Oldest retained epoch.
        oldest: u64,
        /// Newest retained epoch.
        newest: u64,
    },
    /// The request could not acquire the service state within its deadline.
    Timeout {
        /// The deadline that expired, in milliseconds.
        millis: u64,
    },
    /// An internal invariant failed while handling the request.
    Internal {
        /// The underlying error, stringified.
        reason: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            ServiceError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            ServiceError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for a graph on {n} vertices")
            }
            ServiceError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            ServiceError::EpochUnavailable { requested, oldest, newest } => {
                write!(f, "epoch {requested} unavailable (retained: {oldest}..={newest})")
            }
            ServiceError::Timeout { millis } => {
                write!(f, "request timed out after {millis} ms")
            }
            ServiceError::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {}

// ---------------------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the transport's I/O errors; rejects oversized payloads before writing.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            ServiceError::FrameTooLarge { len: payload.len() as u64, max: MAX_FRAME_LEN as u64 },
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.  Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection).
///
/// # Errors
///
/// Propagates the transport's I/O errors (including read timeouts) and rejects frames
/// longer than [`MAX_FRAME_LEN`] without reading their payload.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            while got < 4 {
                let more = r.read(&mut len_buf[got..])?;
                if more == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-length-prefix",
                    ));
                }
                got += more;
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ServiceError::FrameTooLarge { len: len as u64, max: MAX_FRAME_LEN as u64 },
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_edges(buf: &mut Vec<u8>, edges: &[(Vertex, Vertex)]) {
    put_u32(buf, edges.len() as u32);
    for &(u, v) in edges {
        put_u64(buf, u as u64);
        put_u64(buf, v as u64);
    }
}

fn put_colors(buf: &mut Vec<u8>, colors: &[u64]) {
    put_u32(buf, colors.len() as u32);
    for &c in colors {
        put_u64(buf, c);
    }
}

/// Cursor over a received payload with typed, bounds-checked reads.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], ServiceError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| ServiceError::Malformed { reason: format!("truncated {what}") })?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ServiceError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ServiceError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ServiceError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self, what: &str) -> Result<String, ServiceError> {
        let len = self.u32(what)? as usize;
        let bytes = self.bytes(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServiceError::Malformed { reason: format!("non-UTF-8 {what}") })
    }

    /// A `u32` element count, sanity-bounded by the remaining payload so a corrupt count
    /// cannot trigger a huge allocation.
    fn count(&mut self, elem_bytes: usize, what: &str) -> Result<usize, ServiceError> {
        let count = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.at;
        if count.saturating_mul(elem_bytes) > remaining {
            return Err(ServiceError::Malformed {
                reason: format!("{what} count {count} exceeds the remaining payload"),
            });
        }
        Ok(count)
    }

    fn edges(&mut self, what: &str) -> Result<Vec<(Vertex, Vertex)>, ServiceError> {
        let count = self.count(16, what)?;
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let u = self.u64(what)? as Vertex;
            let v = self.u64(what)? as Vertex;
            edges.push((u, v));
        }
        Ok(edges)
    }

    fn colors(&mut self, what: &str) -> Result<Vec<u64>, ServiceError> {
        let count = self.count(8, what)?;
        let mut colors = Vec::with_capacity(count);
        for _ in 0..count {
            colors.push(self.u64(what)?);
        }
        Ok(colors)
    }

    fn finish(self, what: &str) -> Result<(), ServiceError> {
        if self.at != self.buf.len() {
            return Err(ServiceError::Malformed {
                reason: format!("{} trailing bytes after {what}", self.buf.len() - self.at),
            });
        }
        Ok(())
    }
}

fn header(tag: u8) -> Vec<u8> {
    vec![PROTOCOL_VERSION, tag]
}

fn strategy_byte(strategy: RepairStrategy) -> u8 {
    match strategy {
        RepairStrategy::NoConflict => 0,
        RepairStrategy::LocalRepair => 1,
        RepairStrategy::FullRecolor => 2,
    }
}

fn strategy_from(byte: u8) -> Result<RepairStrategy, ServiceError> {
    match byte {
        0 => Ok(RepairStrategy::NoConflict),
        1 => Ok(RepairStrategy::LocalRepair),
        2 => Ok(RepairStrategy::FullRecolor),
        other => Err(ServiceError::Malformed { reason: format!("unknown strategy {other}") }),
    }
}

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Apply(updates) => {
                let mut buf = header(1);
                put_u32(&mut buf, updates.len() as u32);
                for update in updates {
                    buf.push(u8::from(!update.is_insert()));
                    put_edges(&mut buf, update.edges());
                }
                buf
            }
            Request::QueryColors(vertices) => {
                let mut buf = header(2);
                put_u32(&mut buf, vertices.len() as u32);
                for &v in vertices {
                    put_u64(&mut buf, v as u64);
                }
                buf
            }
            Request::Snapshot(epoch) => {
                let mut buf = header(3);
                buf.push(u8::from(epoch.is_some()));
                put_u64(&mut buf, epoch.unwrap_or(0));
                buf
            }
            Request::Stats => header(4),
            Request::Compact => header(5),
            Request::Verify => header(6),
            Request::Shutdown => header(7),
        }
    }

    /// Parses a frame payload into a request.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Malformed`] on version/tag mismatches, truncation,
    /// implausible counts, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut r = Reader::new(payload);
        let version = r.u8("version")?;
        if version != PROTOCOL_VERSION {
            return Err(ServiceError::Malformed {
                reason: format!("protocol version {version}, expected {PROTOCOL_VERSION}"),
            });
        }
        let tag = r.u8("request tag")?;
        let request = match tag {
            1 => {
                let count = r.count(5, "updates")?;
                let mut updates = Vec::with_capacity(count);
                for _ in 0..count {
                    let kind = r.u8("update kind")?;
                    let edges = r.edges("update edges")?;
                    updates.push(match kind {
                        0 => GraphUpdate::InsertEdges(edges),
                        1 => GraphUpdate::RemoveEdges(edges),
                        other => {
                            return Err(ServiceError::Malformed {
                                reason: format!("unknown update kind {other}"),
                            })
                        }
                    });
                }
                Request::Apply(updates)
            }
            2 => {
                let count = r.count(8, "vertices")?;
                let mut vertices = Vec::with_capacity(count);
                for _ in 0..count {
                    vertices.push(r.u64("vertex")? as Vertex);
                }
                Request::QueryColors(vertices)
            }
            3 => {
                let has_epoch = r.u8("epoch flag")? != 0;
                let epoch = r.u64("epoch")?;
                Request::Snapshot(has_epoch.then_some(epoch))
            }
            4 => Request::Stats,
            5 => Request::Compact,
            6 => Request::Verify,
            7 => Request::Shutdown,
            other => {
                return Err(ServiceError::Malformed {
                    reason: format!("unknown request tag {other}"),
                })
            }
        };
        r.finish("request")?;
        Ok(request)
    }
}

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Error(err) => {
                let mut buf = header(0);
                err.encode_into(&mut buf);
                buf
            }
            Response::Applied {
                epoch,
                submitted_edges,
                new_edges,
                removed_edges,
                frontier,
                repaired,
                strategy,
                compacted,
            } => {
                let mut buf = header(1);
                put_u64(&mut buf, *epoch);
                put_u64(&mut buf, *submitted_edges);
                put_u64(&mut buf, *new_edges);
                put_u64(&mut buf, *removed_edges);
                put_u64(&mut buf, *frontier);
                put_u64(&mut buf, *repaired);
                buf.push(strategy_byte(*strategy));
                buf.push(u8::from(compacted.is_some()));
                let (before, after, recolored) = compacted.unwrap_or((0, 0, 0));
                put_u64(&mut buf, before);
                put_u64(&mut buf, after);
                put_u64(&mut buf, recolored);
                buf
            }
            Response::Colors(colors) => {
                let mut buf = header(2);
                put_colors(&mut buf, colors);
                buf
            }
            Response::Snapshot { epoch, colors } => {
                let mut buf = header(3);
                put_u64(&mut buf, *epoch);
                put_colors(&mut buf, colors);
                buf
            }
            Response::Stats(stats) => {
                let mut buf = header(4);
                for x in [
                    stats.n,
                    stats.m,
                    stats.epoch,
                    stats.colors,
                    stats.max_degree,
                    stats.batches,
                    stats.new_edges,
                    stats.removed_edges,
                    stats.repaired,
                    stats.compactions,
                    stats.queries,
                ] {
                    put_u64(&mut buf, x);
                }
                buf
            }
            Response::Compacted { epoch, colors_before, colors_after, recolored } => {
                let mut buf = header(5);
                put_u64(&mut buf, *epoch);
                put_u64(&mut buf, *colors_before);
                put_u64(&mut buf, *colors_after);
                put_u64(&mut buf, *recolored);
                buf
            }
            Response::Verified { legal, conflicts } => {
                let mut buf = header(6);
                buf.push(u8::from(*legal));
                put_u64(&mut buf, *conflicts);
                buf
            }
            Response::ShuttingDown => header(7),
        }
    }

    /// Parses a frame payload into a response.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Malformed`] on version/tag mismatches, truncation,
    /// implausible counts, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut r = Reader::new(payload);
        let version = r.u8("version")?;
        if version != PROTOCOL_VERSION {
            return Err(ServiceError::Malformed {
                reason: format!("protocol version {version}, expected {PROTOCOL_VERSION}"),
            });
        }
        let tag = r.u8("response tag")?;
        let response = match tag {
            0 => Response::Error(ServiceError::decode_from(&mut r)?),
            1 => {
                let epoch = r.u64("epoch")?;
                let submitted_edges = r.u64("submitted_edges")?;
                let new_edges = r.u64("new_edges")?;
                let removed_edges = r.u64("removed_edges")?;
                let frontier = r.u64("frontier")?;
                let repaired = r.u64("repaired")?;
                let strategy = strategy_from(r.u8("strategy")?)?;
                let has_compaction = r.u8("compaction flag")? != 0;
                let before = r.u64("colors_before")?;
                let after = r.u64("colors_after")?;
                let recolored = r.u64("recolored")?;
                Response::Applied {
                    epoch,
                    submitted_edges,
                    new_edges,
                    removed_edges,
                    frontier,
                    repaired,
                    strategy,
                    compacted: has_compaction.then_some((before, after, recolored)),
                }
            }
            2 => Response::Colors(r.colors("colors")?),
            3 => {
                let epoch = r.u64("epoch")?;
                let colors = r.colors("snapshot colors")?;
                Response::Snapshot { epoch, colors }
            }
            4 => {
                let mut take = || r.u64("stats field");
                Response::Stats(ServiceStats {
                    n: take()?,
                    m: take()?,
                    epoch: take()?,
                    colors: take()?,
                    max_degree: take()?,
                    batches: take()?,
                    new_edges: take()?,
                    removed_edges: take()?,
                    repaired: take()?,
                    compactions: take()?,
                    queries: take()?,
                })
            }
            5 => Response::Compacted {
                epoch: r.u64("epoch")?,
                colors_before: r.u64("colors_before")?,
                colors_after: r.u64("colors_after")?,
                recolored: r.u64("recolored")?,
            },
            6 => Response::Verified { legal: r.u8("legal")? != 0, conflicts: r.u64("conflicts")? },
            7 => Response::ShuttingDown,
            other => {
                return Err(ServiceError::Malformed {
                    reason: format!("unknown response tag {other}"),
                })
            }
        };
        r.finish("response")?;
        Ok(response)
    }
}

impl ServiceError {
    fn code(&self) -> u8 {
        match self {
            ServiceError::Malformed { .. } => 1,
            ServiceError::FrameTooLarge { .. } => 2,
            ServiceError::VertexOutOfRange { .. } => 3,
            ServiceError::SelfLoop { .. } => 4,
            ServiceError::EpochUnavailable { .. } => 5,
            ServiceError::Timeout { .. } => 6,
            ServiceError::Internal { .. } => 7,
        }
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(self.code());
        match self {
            ServiceError::Malformed { reason } | ServiceError::Internal { reason } => {
                put_str(buf, reason)
            }
            ServiceError::FrameTooLarge { len, max } => {
                put_u64(buf, *len);
                put_u64(buf, *max);
            }
            ServiceError::VertexOutOfRange { vertex, n } => {
                put_u64(buf, *vertex);
                put_u64(buf, *n);
            }
            ServiceError::SelfLoop { vertex } => put_u64(buf, *vertex),
            ServiceError::EpochUnavailable { requested, oldest, newest } => {
                put_u64(buf, *requested);
                put_u64(buf, *oldest);
                put_u64(buf, *newest);
            }
            ServiceError::Timeout { millis } => put_u64(buf, *millis),
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ServiceError> {
        match r.u8("error code")? {
            1 => Ok(ServiceError::Malformed { reason: r.str("error reason")? }),
            2 => Ok(ServiceError::FrameTooLarge { len: r.u64("len")?, max: r.u64("max")? }),
            3 => Ok(ServiceError::VertexOutOfRange { vertex: r.u64("vertex")?, n: r.u64("n")? }),
            4 => Ok(ServiceError::SelfLoop { vertex: r.u64("vertex")? }),
            5 => Ok(ServiceError::EpochUnavailable {
                requested: r.u64("requested")?,
                oldest: r.u64("oldest")?,
                newest: r.u64("newest")?,
            }),
            6 => Ok(ServiceError::Timeout { millis: r.u64("millis")? }),
            7 => Ok(ServiceError::Internal { reason: r.str("error reason")? }),
            other => Err(ServiceError::Malformed { reason: format!("unknown error code {other}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let decoded = Request::decode(&request.encode()).expect("round trip");
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let decoded = Response::decode(&response.encode()).expect("round trip");
        assert_eq!(decoded, response);
    }

    #[test]
    fn every_request_variant_round_trips() {
        round_trip_request(Request::Apply(vec![
            GraphUpdate::InsertEdges(vec![(0, 1), (7, 3)]),
            GraphUpdate::RemoveEdges(vec![(2, 9)]),
            GraphUpdate::InsertEdges(vec![]),
        ]));
        round_trip_request(Request::QueryColors(vec![0, 5, 17]));
        round_trip_request(Request::Snapshot(None));
        round_trip_request(Request::Snapshot(Some(42)));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Compact);
        round_trip_request(Request::Verify);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn every_response_variant_round_trips() {
        round_trip_response(Response::Applied {
            epoch: 3,
            submitted_edges: 10,
            new_edges: 7,
            removed_edges: 2,
            frontier: 4,
            repaired: 3,
            strategy: RepairStrategy::LocalRepair,
            compacted: Some((12, 5, 30)),
        });
        round_trip_response(Response::Applied {
            epoch: 1,
            submitted_edges: 1,
            new_edges: 0,
            removed_edges: 0,
            frontier: 0,
            repaired: 0,
            strategy: RepairStrategy::NoConflict,
            compacted: None,
        });
        round_trip_response(Response::Colors(vec![0, 3, 3, 1]));
        round_trip_response(Response::Snapshot { epoch: 9, colors: vec![1, 0, 2] });
        round_trip_response(Response::Stats(ServiceStats {
            n: 100,
            m: 250,
            epoch: 17,
            colors: 5,
            max_degree: 9,
            batches: 40,
            new_edges: 200,
            removed_edges: 50,
            repaired: 31,
            compactions: 2,
            queries: 400,
        }));
        round_trip_response(Response::Compacted {
            epoch: 18,
            colors_before: 9,
            colors_after: 4,
            recolored: 55,
        });
        round_trip_response(Response::Verified { legal: true, conflicts: 0 });
        round_trip_response(Response::ShuttingDown);
        for error in [
            ServiceError::Malformed { reason: "bad tag".into() },
            ServiceError::FrameTooLarge { len: 1 << 30, max: MAX_FRAME_LEN as u64 },
            ServiceError::VertexOutOfRange { vertex: 99, n: 10 },
            ServiceError::SelfLoop { vertex: 4 },
            ServiceError::EpochUnavailable { requested: 1, oldest: 5, newest: 9 },
            ServiceError::Timeout { millis: 250 },
            ServiceError::Internal { reason: "invariant".into() },
        ] {
            round_trip_response(Response::Error(error));
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_malformed() {
        let mut payload = Request::Apply(vec![GraphUpdate::InsertEdges(vec![(0, 1)])]).encode();
        payload.truncate(payload.len() - 3);
        assert!(matches!(Request::decode(&payload), Err(ServiceError::Malformed { .. })));
        let mut payload = Request::Stats.encode();
        payload.push(0xFF);
        assert!(matches!(Request::decode(&payload), Err(ServiceError::Malformed { .. })));
        assert!(matches!(
            Request::decode(&[PROTOCOL_VERSION + 1, 4]),
            Err(ServiceError::Malformed { .. })
        ));
    }

    #[test]
    fn implausible_counts_do_not_allocate() {
        // A 4-GiB edge count in a 30-byte payload must be rejected up front.
        let mut payload = header(1);
        put_u32(&mut payload, 1);
        payload.push(0);
        put_u32(&mut payload, u32::MAX);
        assert!(matches!(Request::decode(&payload), Err(ServiceError::Malformed { .. })));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = Request::QueryColors(vec![1, 2, 3]).encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let got = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(got, payload);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after the frame");
    }

    #[test]
    fn oversized_frames_are_rejected_by_the_length_prefix() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }
}
