//! The coloring service: a protocol-agnostic state machine and the TCP daemon around it.
//!
//! [`ColoringService`] owns a [`DynamicColoring`] plus an epoch counter and a bounded
//! history of epoch-stamped coloring snapshots; [`ColoringService::handle`] maps every
//! [`Request`] to a [`Response`] with no I/O at all, which is what the unit and
//! integration tests drive.  [`ServiceServer`] wraps that state machine in a `std::net`
//! TCP accept loop — one thread per connection, a shared `Mutex` around the state with a
//! per-request acquisition deadline (expired deadlines become typed
//! [`ServiceError::Timeout`] replies instead of stalled sockets), and a cooperative
//! shutdown path that unblocks the accept loop with a self-connection.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use arbcolor::dynamic::DynamicColoring;
use arbcolor::CoreError;
use arbcolor_graph::{Graph, GraphError};
use arbcolor_runtime::obs;

use crate::protocol::{read_frame, write_frame, Request, Response, ServiceError, ServiceStats};

/// Tunables of the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// How long a request may wait for the service state before it is answered with
    /// [`ServiceError::Timeout`].
    pub request_timeout: Duration,
    /// How long a connection may sit idle between frames before it is closed.
    pub idle_timeout: Duration,
    /// How many epoch snapshots [`Request::Snapshot`] can reach back through.
    pub snapshot_history: usize,
    /// Whether deletion batches trigger automatic palette compaction (see
    /// [`DynamicColoring::with_auto_compact`]).
    pub auto_compact: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            request_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            snapshot_history: 8,
            auto_compact: false,
        }
    }
}

/// The protocol-agnostic service state machine.
///
/// Owns the dynamic coloring, stamps every successful mutation with a fresh epoch, and
/// retains the last [`ServiceConfig::snapshot_history`] colorings so clients can read
/// consistent snapshots slightly behind the write head.  All I/O lives in
/// [`ServiceServer`]; this type is driven directly in tests and benchmarks.
#[derive(Debug)]
pub struct ColoringService {
    dynamic: DynamicColoring,
    config: ServiceConfig,
    epoch: u64,
    snapshots: VecDeque<(u64, Vec<u64>)>,
    shutdown_requested: bool,
    batches: u64,
    new_edges: u64,
    removed_edges: u64,
    repaired: u64,
    compactions: u64,
    queries: u64,
}

impl ColoringService {
    /// Starts a service over `graph`, computing the initial coloring (epoch 0).
    ///
    /// # Errors
    ///
    /// Propagates any failure of the initial coloring pass.
    pub fn new(graph: Graph, config: ServiceConfig) -> Result<Self, CoreError> {
        let dynamic = DynamicColoring::new(graph)?.with_auto_compact(config.auto_compact);
        let mut service = ColoringService {
            dynamic,
            config,
            epoch: 0,
            snapshots: VecDeque::new(),
            shutdown_requested: false,
            batches: 0,
            new_edges: 0,
            removed_edges: 0,
            repaired: 0,
            compactions: 0,
            queries: 0,
        };
        service.record_snapshot();
        Ok(service)
    }

    /// Starts a service over an edgeless graph on `n` vertices.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction and initial-coloring failures.
    pub fn empty(n: usize, config: ServiceConfig) -> Result<Self, CoreError> {
        let graph = Graph::from_edges(n, Vec::new())?;
        ColoringService::new(graph, config)
    }

    /// The epoch of the most recent successful mutation (0 right after construction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a [`Request::Shutdown`] has been absorbed.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested
    }

    /// Read access to the maintained dynamic coloring.
    pub fn dynamic(&self) -> &DynamicColoring {
        &self.dynamic
    }

    fn record_snapshot(&mut self) {
        let colors = self.dynamic.coloring().colors().to_vec();
        self.snapshots.push_back((self.epoch, colors));
        while self.snapshots.len() > self.config.snapshot_history.max(1) {
            self.snapshots.pop_front();
        }
    }

    fn advance_epoch(&mut self) {
        self.epoch += 1;
        self.record_snapshot();
    }

    /// Handles one request, mutating the state as needed.  Never panics on bad input —
    /// every failure mode is a typed [`Response::Error`].
    pub fn handle(&mut self, request: Request) -> Response {
        obs::incr_counter("service.requests", 1);
        let response = self.dispatch(request);
        if matches!(response, Response::Error(_)) {
            obs::incr_counter("service.errors", 1);
        }
        response
    }

    fn dispatch(&mut self, request: Request) -> Response {
        match request {
            Request::Apply(updates) => match self.dynamic.apply(&updates) {
                Ok(outcome) => {
                    self.batches += 1;
                    self.new_edges += outcome.new_edges as u64;
                    self.removed_edges += outcome.removed_edges as u64;
                    self.repaired += outcome.repaired.len() as u64;
                    if outcome.compaction.is_some() {
                        self.compactions += 1;
                    }
                    self.advance_epoch();
                    Response::Applied {
                        epoch: self.epoch,
                        submitted_edges: outcome.submitted_edges as u64,
                        new_edges: outcome.new_edges as u64,
                        removed_edges: outcome.removed_edges as u64,
                        frontier: outcome.frontier as u64,
                        repaired: outcome.repaired.len() as u64,
                        strategy: outcome.strategy,
                        compacted: outcome.compaction.map(|delta| {
                            (
                                delta.colors_before as u64,
                                delta.colors_after as u64,
                                delta.recolored as u64,
                            )
                        }),
                    }
                }
                Err(err) => Response::Error(core_error_to_service(&err)),
            },
            Request::QueryColors(vertices) => {
                let n = self.dynamic.graph().n();
                let mut colors = Vec::with_capacity(vertices.len());
                for v in vertices {
                    if v >= n {
                        return Response::Error(ServiceError::VertexOutOfRange {
                            vertex: v as u64,
                            n: n as u64,
                        });
                    }
                    colors.push(self.dynamic.coloring().colors()[v]);
                }
                self.queries += colors.len() as u64;
                Response::Colors(colors)
            }
            Request::Snapshot(epoch) => {
                let requested = epoch.unwrap_or(self.epoch);
                match self.snapshots.iter().find(|(e, _)| *e == requested) {
                    Some((epoch, colors)) => {
                        Response::Snapshot { epoch: *epoch, colors: colors.clone() }
                    }
                    None => {
                        let oldest = self.snapshots.front().map_or(0, |(e, _)| *e);
                        let newest = self.snapshots.back().map_or(0, |(e, _)| *e);
                        Response::Error(ServiceError::EpochUnavailable {
                            requested,
                            oldest,
                            newest,
                        })
                    }
                }
            }
            Request::Stats => Response::Stats(ServiceStats {
                n: self.dynamic.graph().n() as u64,
                m: self.dynamic.graph().m() as u64,
                epoch: self.epoch,
                colors: self.dynamic.coloring().distinct_colors() as u64,
                max_degree: self.dynamic.graph().max_degree() as u64,
                batches: self.batches,
                new_edges: self.new_edges,
                removed_edges: self.removed_edges,
                repaired: self.repaired,
                compactions: self.compactions,
                queries: self.queries,
            }),
            Request::Compact => {
                let delta = self.dynamic.compact();
                self.compactions += 1;
                self.advance_epoch();
                Response::Compacted {
                    epoch: self.epoch,
                    colors_before: delta.colors_before as u64,
                    colors_after: delta.colors_after as u64,
                    recolored: delta.recolored as u64,
                }
            }
            Request::Verify => {
                let conflicts = self
                    .dynamic
                    .graph()
                    .edges()
                    .iter()
                    .filter(|&&(u, v)| {
                        self.dynamic.coloring().colors()[u] == self.dynamic.coloring().colors()[v]
                    })
                    .count() as u64;
                Response::Verified { legal: conflicts == 0, conflicts }
            }
            Request::Shutdown => {
                self.shutdown_requested = true;
                Response::ShuttingDown
            }
        }
    }
}

fn core_error_to_service(err: &CoreError) -> ServiceError {
    match err {
        CoreError::Graph(GraphError::VertexOutOfRange { vertex, n }) => {
            ServiceError::VertexOutOfRange { vertex: *vertex as u64, n: *n as u64 }
        }
        CoreError::Graph(GraphError::SelfLoop { vertex }) => {
            ServiceError::SelfLoop { vertex: *vertex as u64 }
        }
        other => ServiceError::Internal { reason: other.to_string() },
    }
}

/// The TCP daemon: an accept loop serving a shared [`ColoringService`].
///
/// One OS thread per connection; all connections funnel through a single `Mutex` around
/// the state machine, so the update stream the service absorbs is totally ordered (which
/// is what makes replayed workloads bit-identical).  A request that cannot take the lock
/// within [`ServiceConfig::request_timeout`] gets a typed timeout reply instead of
/// blocking its connection forever.
#[derive(Debug)]
pub struct ServiceServer {
    listener: TcpListener,
    state: Arc<Mutex<ColoringService>>,
    config: ServiceConfig,
    shutdown: Arc<AtomicBool>,
}

impl ServiceServer {
    /// Binds a listener (use port 0 for an ephemeral port) around `service`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: ColoringService) -> io::Result<Self> {
        let config = service.config;
        Ok(ServiceServer {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(Mutex::new(service)),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `TcpListener::local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until a client sends
    /// [`Request::Shutdown`]; joins every connection thread before returning.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (a shutdown-triggered close is not a failure).
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(err) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(err);
                }
            };
            let state = Arc::clone(&self.state);
            let config = self.config;
            let shutdown = Arc::clone(&self.shutdown);
            workers.push(thread::spawn(move || {
                serve_connection(stream, &state, &config, &shutdown, addr);
            }));
            // Reap finished workers so a long-lived daemon does not accumulate handles.
            let mut live = Vec::with_capacity(workers.len());
            for worker in workers.drain(..) {
                if worker.is_finished() {
                    let _ = worker.join();
                } else {
                    live.push(worker);
                }
            }
            workers = live;
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a handle exposing the bound
    /// address and a join point — the shape in-process tests and examples want.
    ///
    /// # Errors
    ///
    /// Propagates `TcpListener::local_addr` failures.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle { addr, thread })
    }
}

/// Join handle for a server running on a background thread (see [`ServiceServer::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the background server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to exit (i.e. for a client to send [`Request::Shutdown`]).
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O result; a panicked server thread surfaces as
    /// [`io::ErrorKind::Other`].
    pub fn join(self) -> io::Result<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Locks `state` with a deadline; `None` means the deadline expired.
fn lock_with_deadline<'a>(
    state: &'a Mutex<ColoringService>,
    timeout: Duration,
) -> Option<std::sync::MutexGuard<'a, ColoringService>> {
    let deadline = Instant::now() + timeout;
    loop {
        match state.try_lock() {
            Ok(guard) => return Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => return Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    return None;
                }
                thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// A reader that replays one already-consumed byte before the underlying stream — lets
/// the connection loop poll for a frame's first byte in short slices (so it can observe
/// the shutdown flag) and still hand `read_frame` a stream positioned at the frame start.
struct Prefixed<'a> {
    first: Option<u8>,
    inner: &'a mut TcpStream,
}

impl Read for Prefixed<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(byte) = self.first.take() {
            if buf.is_empty() {
                self.first = Some(byte);
                return Ok(0);
            }
            buf[0] = byte;
            return Ok(1);
        }
        self.inner.read(buf)
    }
}

/// Polls for the first byte of the next frame in `slice`-sized steps, so a parked
/// connection notices `shutdown` within one slice instead of one idle timeout.
/// `Ok(None)` = the connection should close (clean EOF, idle timeout, shutdown, or a
/// transport error); `Ok(Some(b))` = frame started.
fn await_frame_start(
    stream: &mut TcpStream,
    config: &ServiceConfig,
    shutdown: &AtomicBool,
) -> Option<u8> {
    let mut byte = [0u8; 1];
    let deadline = Instant::now() + config.idle_timeout;
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => return Some(byte[0]),
            Err(err)
                if matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // The socket's read timeout is the poll slice; between slices we only
                // check the shutdown flag and the connection's idle deadline.
                if shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    state: &Mutex<ColoringService>,
    config: &ServiceConfig,
    shutdown: &AtomicBool,
    listener_addr: SocketAddr,
) {
    let slice = Duration::from_millis(100).min(config.idle_timeout.max(Duration::from_millis(1)));
    let _ = stream.set_nodelay(true);
    loop {
        // Phase 1: wait for the next frame to start, polling in short slices.
        let _ = stream.set_read_timeout(Some(slice));
        let Some(first) = await_frame_start(&mut stream, config, shutdown) else {
            break;
        };
        // Phase 2: the frame has started — read the rest of it under the idle timeout.
        let _ = stream.set_read_timeout(Some(config.idle_timeout));
        let mut reader = Prefixed { first: Some(first), inner: &mut stream };
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // clean close at a frame boundary
            Err(err) => {
                // Surface a typed reply when we still can (an oversized length prefix,
                // say), then drop the connection: the stream is no longer frame-aligned.
                if let Some(service_err) =
                    err.get_ref().and_then(|inner| inner.downcast_ref::<ServiceError>())
                {
                    let reply = Response::Error(service_err.clone());
                    let _ = write_frame(&mut stream, &reply.encode());
                }
                break;
            }
        };
        let reply = match Request::decode(&payload) {
            // A malformed payload inside a well-framed message is recoverable: reply
            // with the typed error and keep the connection open.
            Err(err) => Response::Error(err),
            Ok(request) => match lock_with_deadline(state, config.request_timeout) {
                None => Response::Error(ServiceError::Timeout {
                    millis: config.request_timeout.as_millis() as u64,
                }),
                Some(mut service) => service.handle(request),
            },
        };
        let shutting_down = matches!(reply, Response::ShuttingDown);
        if write_frame(&mut stream, &reply.encode()).is_err() {
            break;
        }
        if shutting_down {
            shutdown.store(true, Ordering::SeqCst);
            // The accept loop is parked in `accept`; poke it awake so it can observe the
            // flag and exit.  The connect target is our own listener, so this cannot
            // escape the process.
            let _ = TcpStream::connect_timeout(&listener_addr, Duration::from_secs(1));
            break;
        }
    }
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor::dynamic::GraphUpdate;
    use arbcolor_graph::Vertex;

    fn service(n: usize) -> ColoringService {
        ColoringService::empty(n, ServiceConfig::default()).expect("empty service")
    }

    #[test]
    fn mutations_advance_epochs_and_snapshots_reach_back() {
        let mut svc = service(6);
        assert_eq!(svc.epoch(), 0);
        let reply =
            svc.handle(Request::Apply(vec![GraphUpdate::InsertEdges(vec![(0, 1), (1, 2)])]));
        match reply {
            Response::Applied { epoch, new_edges, .. } => {
                assert_eq!(epoch, 1);
                assert_eq!(new_edges, 2);
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        svc.handle(Request::Apply(vec![GraphUpdate::InsertEdges(vec![(2, 3)])]));
        // The epoch-0 snapshot (all zeros on an edgeless graph) is still retained.
        match svc.handle(Request::Snapshot(Some(0))) {
            Response::Snapshot { epoch, colors } => {
                assert_eq!(epoch, 0);
                assert_eq!(colors, vec![0; 6]);
            }
            other => panic!("expected Snapshot, got {other:?}"),
        }
        match svc.handle(Request::Snapshot(None)) {
            Response::Snapshot { epoch, colors } => {
                assert_eq!(epoch, 2);
                assert_eq!(colors.len(), 6);
            }
            other => panic!("expected Snapshot, got {other:?}"),
        }
    }

    #[test]
    fn evicted_epochs_report_the_retained_range() {
        let config = ServiceConfig { snapshot_history: 2, ..ServiceConfig::default() };
        let mut svc = ColoringService::empty(4, config).unwrap();
        for edge in [(0, 1), (1, 2), (2, 3), (0, 3)] {
            svc.handle(Request::Apply(vec![GraphUpdate::InsertEdges(vec![edge])]));
        }
        match svc.handle(Request::Snapshot(Some(0))) {
            Response::Error(ServiceError::EpochUnavailable { requested, oldest, newest }) => {
                assert_eq!(requested, 0);
                assert_eq!(newest, 4);
                assert!(oldest > 0 && oldest <= newest);
            }
            other => panic!("expected EpochUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn bad_edges_and_bad_queries_become_typed_errors() {
        let mut svc = service(4);
        match svc.handle(Request::Apply(vec![GraphUpdate::InsertEdges(vec![(0, 9)])])) {
            Response::Error(ServiceError::VertexOutOfRange { vertex: 9, n: 4 }) => {}
            other => panic!("expected VertexOutOfRange, got {other:?}"),
        }
        match svc.handle(Request::Apply(vec![GraphUpdate::InsertEdges(vec![(2, 2)])])) {
            Response::Error(ServiceError::SelfLoop { vertex: 2 }) => {}
            other => panic!("expected SelfLoop, got {other:?}"),
        }
        match svc.handle(Request::QueryColors(vec![0, 11])) {
            Response::Error(ServiceError::VertexOutOfRange { vertex: 11, n: 4 }) => {}
            other => panic!("expected VertexOutOfRange, got {other:?}"),
        }
        // A failed batch leaves the epoch (and therefore the coloring) untouched.
        assert_eq!(svc.epoch(), 0);
    }

    #[test]
    fn verify_compact_stats_and_shutdown_round_out_the_protocol() {
        let mut svc = service(8);
        let clique: Vec<(Vertex, Vertex)> =
            (0..6).flat_map(|u| (u + 1..6).map(move |v| (u, v))).collect();
        svc.handle(Request::Apply(vec![GraphUpdate::InsertEdges(clique.clone())]));
        match svc.handle(Request::Verify) {
            Response::Verified { legal: true, conflicts: 0 } => {}
            other => panic!("expected a legal verification, got {other:?}"),
        }
        // Delete most of the clique, then compact: colors must not increase.
        let doomed: Vec<(Vertex, Vertex)> =
            clique.iter().copied().filter(|&(u, _)| u >= 1).collect();
        svc.handle(Request::Apply(vec![GraphUpdate::RemoveEdges(doomed)]));
        let (before, after) = match svc.handle(Request::Compact) {
            Response::Compacted { colors_before, colors_after, .. } => {
                (colors_before, colors_after)
            }
            other => panic!("expected Compacted, got {other:?}"),
        };
        assert!(after <= before);
        match svc.handle(Request::Stats) {
            Response::Stats(stats) => {
                assert_eq!(stats.n, 8);
                assert_eq!(stats.batches, 2);
                assert_eq!(stats.compactions, 1);
                assert_eq!(stats.colors, after);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        assert!(!svc.shutdown_requested());
        assert!(matches!(svc.handle(Request::Shutdown), Response::ShuttingDown));
        assert!(svc.shutdown_requested());
    }
}
