//! End-to-end session test: a real TCP server, a real client, the full protocol.
//!
//! Spawns the daemon in-process on an ephemeral port and drives one complete session —
//! mutations, queries, snapshot-at-an-old-epoch, epoch eviction, compaction after
//! deletions, raw malformed/oversized frames, verification, and a clean shutdown that
//! actually joins the server thread.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use arbcolor::dynamic::{GraphUpdate, RepairStrategy};
use arbcolor_service::client::{ClientError, ServiceClient};
use arbcolor_service::protocol::{read_frame, write_frame, Request, Response, ServiceError};
use arbcolor_service::server::{ColoringService, ServiceConfig, ServiceServer};
use arbcolor_service::workload::{generate, WorkloadConfig, WorkloadOp};

fn spawn_server(n: usize, config: ServiceConfig) -> arbcolor_service::server::ServerHandle {
    let service = ColoringService::empty(n, config).expect("service starts");
    let server = ServiceServer::bind(("127.0.0.1", 0), service).expect("ephemeral bind");
    server.spawn().expect("server spawns")
}

#[test]
fn a_full_session_over_tcp() {
    let config = ServiceConfig { snapshot_history: 3, ..ServiceConfig::default() };
    let handle = spawn_server(16, config);
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    client.set_reply_timeout(Some(Duration::from_secs(10))).unwrap();

    // Epoch 1: grow a path, no conflicts possible from an empty coloring's perspective.
    let outcome = client
        .apply(vec![GraphUpdate::InsertEdges(vec![(0, 1), (1, 2), (2, 3)])])
        .expect("first batch");
    assert_eq!(outcome.epoch, 1);
    assert_eq!(outcome.new_edges, 3);

    // Epoch 2: a mixed batch — deletions resolve before insertions, last write wins.
    let outcome = client
        .apply(vec![
            GraphUpdate::RemoveEdges(vec![(1, 2)]),
            GraphUpdate::InsertEdges(vec![(0, 2), (3, 4)]),
        ])
        .expect("mixed batch");
    assert_eq!(outcome.epoch, 2);
    assert_eq!(outcome.removed_edges, 1);
    assert_eq!(outcome.new_edges, 2);

    // Colors are served in request order and agree with the full snapshot.
    let colors = client.query_colors(vec![0, 1, 2, 3, 4]).expect("colors");
    let (epoch, snapshot) = client.snapshot(None).expect("current snapshot");
    assert_eq!(epoch, 2);
    assert_eq!(colors.as_slice(), &snapshot[0..5]);

    // The epoch-1 snapshot is still retained and differs from the current one in m.
    let (old_epoch, old_snapshot) = client.snapshot(Some(1)).expect("old snapshot");
    assert_eq!(old_epoch, 1);
    assert_eq!(old_snapshot.len(), snapshot.len());

    // Roll the history window past epoch 1, then watch it report the retained range.
    for edge in [(4, 5), (5, 6), (6, 7)] {
        client.apply(vec![GraphUpdate::InsertEdges(vec![edge])]).expect("filler batch");
    }
    match client.snapshot(Some(1)) {
        Err(ClientError::Service(ServiceError::EpochUnavailable {
            requested: 1,
            oldest,
            newest: 5,
        })) => assert!(oldest > 1),
        other => panic!("expected EpochUnavailable, got {other:?}"),
    }

    // Typed validation errors come back over the wire without killing the connection.
    match client.apply(vec![GraphUpdate::InsertEdges(vec![(0, 99)])]) {
        Err(ClientError::Service(ServiceError::VertexOutOfRange { vertex: 99, n: 16 })) => {}
        other => panic!("expected VertexOutOfRange, got {other:?}"),
    }

    // Deletion slack is reclaimed by an explicit compaction.
    client
        .apply(vec![GraphUpdate::RemoveEdges(vec![(0, 1), (0, 2), (2, 3)])])
        .expect("deletion batch");
    let (_, before, after, _) = client.compact().expect("compact");
    assert!(after <= before);

    let (legal, conflicts) = client.verify().expect("verify");
    assert!(legal);
    assert_eq!(conflicts, 0);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.n, 16);
    assert!(stats.batches >= 6);
    assert!(stats.compactions >= 1);

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("server exits cleanly");
}

#[test]
fn malformed_frames_get_typed_replies_and_the_connection_survives() {
    let handle = spawn_server(8, ServiceConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A well-framed but unparseable payload: typed Malformed reply, connection stays up.
    write_frame(&mut stream, &[0xEE, 0xEE, 0xEE]).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("a reply frame");
    match Response::decode(&payload).expect("reply decodes") {
        Response::Error(ServiceError::Malformed { .. }) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }

    // The same connection still serves real requests afterwards.
    write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("stats reply");
    assert!(matches!(Response::decode(&payload).unwrap(), Response::Stats(_)));

    // An oversized length prefix draws a typed FrameTooLarge reply before the close.
    let mut raw = TcpStream::connect(handle.addr()).expect("second raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw).unwrap().expect("error frame");
    match Response::decode(&payload).expect("reply decodes") {
        Response::Error(ServiceError::FrameTooLarge { .. }) => {}
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    let mut client = ServiceClient::connect(handle.addr()).expect("typed connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn replayed_workloads_are_bit_identical_across_sessions() {
    let config = WorkloadConfig {
        n: 64,
        ops: 60,
        batch_size: 6,
        compact_every: 25,
        ..WorkloadConfig::default()
    };
    let mut fingerprints = Vec::new();
    for _ in 0..2 {
        let handle = spawn_server(config.n, ServiceConfig::default());
        let mut client = ServiceClient::connect(handle.addr()).expect("connect");
        client.set_reply_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut strategies = Vec::new();
        for op in generate(&config) {
            match op {
                WorkloadOp::Apply(updates) => {
                    let outcome = client.apply(updates).expect("apply");
                    strategies.push((
                        outcome.frontier,
                        outcome.repaired,
                        matches!(outcome.strategy, RepairStrategy::FullRecolor),
                    ));
                }
                WorkloadOp::QueryColors(vertices) => {
                    client.query_colors(vertices).expect("query");
                }
                WorkloadOp::Compact => {
                    client.compact().expect("compact");
                }
            }
        }
        let (_, colors) = client.snapshot(None).expect("final snapshot");
        let (legal, _) = client.verify().expect("verify");
        assert!(legal, "replayed coloring must be legal");
        fingerprints.push((colors, strategies));
        client.shutdown().expect("shutdown");
        handle.join().expect("clean exit");
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "the same seeded workload must replay bit-identically"
    );
}

#[test]
fn concurrent_clients_share_one_totally_ordered_service() {
    let handle = spawn_server(32, ServiceConfig::default());
    let addr = handle.addr();
    let writers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                client.set_reply_timeout(Some(Duration::from_secs(10))).unwrap();
                for i in 0..8usize {
                    let u = (w * 8 + i) % 31;
                    client.apply(vec![GraphUpdate::InsertEdges(vec![(u, u + 1)])]).expect("apply");
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer thread");
    }
    let mut client = ServiceClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.batches, 32, "every batch from every client must be absorbed");
    assert_eq!(stats.epoch, 32, "epochs are totally ordered across connections");
    let (legal, _) = client.verify().expect("verify");
    assert!(legal);
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}
