//! The word-level bitset palette engine: [`PaletteSet`] strike sets, the [`ColorPool`]
//! flat color-list arena, and the [`PaletteStats`] reuse counters.
//!
//! Every coloring algorithm in this workspace ultimately runs the same inner loop: a vertex
//! scans its candidate list for the first color not struck by a neighbor.  Before this
//! module that loop was `list.iter().find(|c| !taken.contains(c))` over unsorted `Vec`s —
//! O(deg²) per pick with `taken` growing one entry per received message.  [`PaletteSet`]
//! replaces the `Vec` with a `u64`-word bitmask over a bounded color space:
//!
//! * **strike** is one word OR (idempotent, so duplicate announcements are free),
//! * **first-unstruck** is a trailing-zeros scan of `!word`, 64 colors per step,
//! * **clear** is an epoch bump, mirroring the `Frontier` stamp design of the runtime:
//!   a word is "live" only while its stamp equals the current epoch, so reusing a set
//!   across rounds or vertices costs O(1) and zero allocation.
//!
//! [`ColorPool`] is the companion storage layout: all per-vertex color lists of an
//! instance in one flat array plus an offsets array (the same CSR shape as the graph's
//! neighbor-id table), so building a sub-instance is slice copies instead of per-vertex
//! `Vec` clones, and node programs borrow `&[u64]` slices instead of owning lists.
//!
//! Picks stay bit-identical to the `Vec`-scan path by construction: the first unstruck
//! color of a list is a property of the *set* of struck colors, not of its representation.

/// Internal: the number of bits per storage word.
const WORD_BITS: u64 = 64;

/// Internal: one storage lane — a strike word and its epoch stamp, kept adjacent so a
/// strike or membership probe touches one cache line, not two parallel arrays.
#[derive(Debug, Clone, Copy, Default)]
struct Lane {
    bits: u64,
    stamp: u64,
}

/// Internal: lanes stored inline in the set itself.  Color spaces up to
/// `INLINE_LANES * 64` colors (every greedy palette of a degree-≤127 vertex) never touch
/// the heap, so per-node scratch sets cost zero allocations and strikes stay on the node
/// struct's own cache lines.
const INLINE_LANES: usize = 2;

/// An epoch-stamped bitset of *struck* colors over the bounded space `[0, bound)`.
///
/// Colors outside the bound are silently ignored by [`strike`](PaletteSet::strike) — a
/// color that no candidate list contains can never be picked, so striking it is a no-op
/// by definition.  [`clear`](PaletteSet::clear) retires all strikes in O(1) by bumping
/// the epoch; words are lazily treated as zero when their stamp is stale.
#[derive(Debug, Clone)]
pub struct PaletteSet {
    /// The first [`INLINE_LANES`] words, heap-free.
    inline: [Lane; INLINE_LANES],
    /// Words beyond the inline capacity; empty for small bounds.
    spill: Vec<Lane>,
    /// Number of live words covering `[0, bound)`.
    nwords: usize,
    /// Current epoch; bumped by [`clear`](PaletteSet::clear).
    epoch: u64,
    /// Number of struck colors in the current epoch.
    struck: u64,
    /// Number of distinct words written in the current epoch.
    touched: u64,
    /// One past the largest representable color.
    bound: u64,
}

impl PaletteSet {
    /// An empty strike set over the color space `[0, bound)`.
    pub fn new(bound: u64) -> Self {
        let nwords = bound.div_ceil(WORD_BITS) as usize;
        let spill = if nwords > INLINE_LANES {
            vec![Lane::default(); nwords - INLINE_LANES]
        } else {
            Vec::new()
        };
        PaletteSet {
            inline: [Lane::default(); INLINE_LANES],
            spill,
            nwords,
            epoch: 1,
            struck: 0,
            touched: 0,
            bound,
        }
    }

    /// One past the largest representable color.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Number of struck colors since the last [`clear`](PaletteSet::clear).
    pub fn struck_count(&self) -> u64 {
        self.struck
    }

    /// Retires every strike in O(1) by bumping the epoch; returns the number of words
    /// that held strikes (the "words cleared" figure fed to [`PaletteStats`]).
    pub fn clear(&mut self) -> u64 {
        let cleared = self.touched;
        self.epoch += 1;
        self.struck = 0;
        self.touched = 0;
        cleared
    }

    /// Re-dimensions the set to `[0, bound)`, reusing the spill allocation, and clears it.
    pub fn reset(&mut self, bound: u64) -> u64 {
        let nwords = bound.div_ceil(WORD_BITS) as usize;
        if nwords > INLINE_LANES && nwords - INLINE_LANES > self.spill.len() {
            self.spill.resize(nwords - INLINE_LANES, Lane::default());
        }
        self.nwords = nwords;
        self.bound = bound;
        self.clear()
    }

    /// The lane holding word `w`.
    #[inline]
    fn lane(&self, w: usize) -> Lane {
        if w < INLINE_LANES {
            self.inline[w]
        } else {
            self.spill[w - INLINE_LANES]
        }
    }

    /// The live value of word `w` (zero when its stamp is stale).
    #[inline]
    fn word(&self, w: usize) -> u64 {
        let lane = self.lane(w);
        if lane.stamp == self.epoch {
            lane.bits
        } else {
            0
        }
    }

    /// Strikes `color`.  Returns `true` iff the color is in range and was not already
    /// struck — so callers can maintain live counts without membership pre-checks, and
    /// duplicate announcements (two non-adjacent neighbors adopting the same color)
    /// cost nothing.
    #[inline]
    pub fn strike(&mut self, color: u64) -> bool {
        if color >= self.bound {
            return false;
        }
        let w = (color / WORD_BITS) as usize;
        let bit = 1u64 << (color % WORD_BITS);
        let epoch = self.epoch;
        let lane =
            if w < INLINE_LANES { &mut self.inline[w] } else { &mut self.spill[w - INLINE_LANES] };
        if lane.stamp != epoch {
            lane.stamp = epoch;
            lane.bits = 0;
            self.touched += 1;
        }
        if lane.bits & bit != 0 {
            return false;
        }
        lane.bits |= bit;
        self.struck += 1;
        true
    }

    /// Whether `color` is struck (colors outside the bound are never struck).
    #[inline]
    pub fn is_struck(&self, color: u64) -> bool {
        if color >= self.bound {
            return false;
        }
        let w = (color / WORD_BITS) as usize;
        self.word(w) & (1u64 << (color % WORD_BITS)) != 0
    }

    /// The smallest unstruck color in `[0, bound)`, by trailing-zeros word scan.
    pub fn first_unstruck(&self) -> Option<u64> {
        self.first_unstruck_in_range(0, self.bound)
    }

    /// The smallest unstruck color in `[lo, hi ∧ bound)`: each probed word contributes
    /// `(!struck & mask).trailing_zeros()`, covering 64 colors per step.
    pub fn first_unstruck_in_range(&self, lo: u64, hi: u64) -> Option<u64> {
        let hi = hi.min(self.bound);
        if lo >= hi {
            return None;
        }
        let mut w = (lo / WORD_BITS) as usize;
        let last = ((hi - 1) / WORD_BITS) as usize;
        while w <= last {
            let base = w as u64 * WORD_BITS;
            let mut free = !self.word(w);
            if base < lo {
                free &= u64::MAX << (lo - base);
            }
            if base + WORD_BITS > hi {
                free &= u64::MAX >> (base + WORD_BITS - hi);
            }
            if free != 0 {
                return Some(base + u64::from(free.trailing_zeros()));
            }
            w += 1;
        }
        None
    }

    /// The first unstruck color of `list`, scanned in the list's own (preference) order
    /// with O(1) membership per element.
    pub fn first_unstruck_of(&self, list: &[u64]) -> Option<u64> {
        list.iter().copied().find(|&c| !self.is_struck(c))
    }

    /// Number of struck colors in `[lo, hi ∧ bound)`, by popcount.
    pub fn struck_in_range(&self, lo: u64, hi: u64) -> u64 {
        let hi = hi.min(self.bound);
        if lo >= hi {
            return 0;
        }
        let mut total = 0u64;
        let mut w = (lo / WORD_BITS) as usize;
        let last = ((hi - 1) / WORD_BITS) as usize;
        while w <= last {
            let base = w as u64 * WORD_BITS;
            let mut bits = self.word(w);
            if base < lo {
                bits &= u64::MAX << (lo - base);
            }
            if base + WORD_BITS > hi {
                bits &= u64::MAX >> (base + WORD_BITS - hi);
            }
            total += u64::from(bits.count_ones());
            w += 1;
        }
        total
    }

    /// Number of *unstruck* colors `list` retains (its live intersection with the
    /// complement of the strike set), by O(1) membership per element.
    pub fn intersect_count(&self, list: &[u64]) -> u64 {
        list.iter().filter(|&&c| !self.is_struck(c)).count() as u64
    }

    /// The position of the `k`-th (0-based) unstruck color in `[0, bound)`: a popcount
    /// word scan followed by an in-word bit select.  `None` when fewer than `k + 1`
    /// colors are unstruck.
    ///
    /// This is what keeps randomized draws bit-identical after the representation swap:
    /// drawing index `k` from a compacted survivor list equals selecting the `k`-th
    /// unstruck position of the original list.
    pub fn select_unstruck(&self, mut k: u64) -> Option<u64> {
        for w in 0..self.nwords {
            let base = w as u64 * WORD_BITS;
            let mut free = !self.word(w);
            if base + WORD_BITS > self.bound {
                if base >= self.bound {
                    break;
                }
                free &= u64::MAX >> (base + WORD_BITS - self.bound);
            }
            let in_word = u64::from(free.count_ones());
            if k < in_word {
                let mut bits = free;
                for _ in 0..k {
                    bits &= bits - 1;
                }
                return Some(base + u64::from(bits.trailing_zeros()));
            }
            k -= in_word;
        }
        None
    }
}

/// A CSR-shaped arena of per-vertex color lists: one flat `colors` array plus an
/// `offsets` array, the same layout as the graph's neighbor-id table.
///
/// The pool itself imposes no ordering invariant — `ScheduledListColor` palettes are in
/// preference order, `ColorLists` adds the sorted/deduplicated guarantee at construction.
/// Lists may be empty; sub-instances are built with slice pushes, never per-list `Vec`s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColorPool {
    offsets: Vec<usize>,
    colors: Vec<u64>,
}

impl ColorPool {
    /// An empty pool (zero lists).
    pub fn new() -> Self {
        ColorPool { offsets: vec![0], colors: Vec::new() }
    }

    /// An empty pool with room for `lists` lists and `colors` total colors.
    pub fn with_capacity(lists: usize, colors: usize) -> Self {
        let mut offsets = Vec::with_capacity(lists + 1);
        offsets.push(0);
        ColorPool { offsets, colors: Vec::with_capacity(colors) }
    }

    /// A pool of `n` empty lists.
    pub fn empty_lists(n: usize) -> Self {
        ColorPool { offsets: vec![0; n + 1], colors: Vec::new() }
    }

    /// Appends one list given as a slice.
    pub fn push_slice(&mut self, list: &[u64]) {
        self.colors.extend_from_slice(list);
        self.offsets.push(self.colors.len());
    }

    /// Appends one list drained from an iterator.
    pub fn push_iter(&mut self, list: impl IntoIterator<Item = u64>) {
        self.colors.extend(list);
        self.offsets.push(self.colors.len());
    }

    /// Builds a pool from nested lists (one slice copy per list).
    pub fn from_nested(lists: &[Vec<u64>]) -> Self {
        let total = lists.iter().map(Vec::len).sum();
        let mut pool = ColorPool::with_capacity(lists.len(), total);
        for list in lists {
            pool.push_slice(list);
        }
        pool
    }

    /// Number of lists.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the pool holds no lists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of colors across all lists.
    pub fn total_colors(&self) -> usize {
        self.colors.len()
    }

    /// The `i`-th list as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn list(&self, i: usize) -> &[u64] {
        &self.colors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates over the lists in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.len()).map(move |i| self.list(i))
    }

    /// Sorts and deduplicates the `i`-th list in place (used by `ColorLists` to make its
    /// invariant a construction guarantee without a nested intermediate).
    pub fn sort_dedup_list(&mut self, i: usize) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        debug_assert_eq!(hi, self.colors.len(), "only the last list can be normalized");
        let list = &mut self.colors[lo..hi];
        list.sort_unstable();
        let mut keep = lo;
        for j in lo..hi {
            if j == lo || self.colors[j] != self.colors[keep - 1] {
                self.colors[keep] = self.colors[j];
                keep += 1;
            }
        }
        self.colors.truncate(keep);
        *self.offsets.last_mut().expect("non-empty offsets") = keep;
    }
}

/// Shared, thread-safe reuse counters of the palette engine: picks served, colors
/// struck, and words retired by epoch clears.
///
/// Node programs running on worker threads have no installed span collector, so they
/// accumulate into these relaxed atomics on the shared schedule object; the driver
/// flushes the totals into the metrics registry on the main thread.  Each counter is a
/// sum of per-vertex deterministic contributions, so the totals are independent of
/// thread count and scheduling order.
#[derive(Debug, Default)]
pub struct PaletteStats {
    picks: std::sync::atomic::AtomicU64,
    strikes: std::sync::atomic::AtomicU64,
    words_cleared: std::sync::atomic::AtomicU64,
}

/// A plain-value copy of [`PaletteStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaletteStatsSnapshot {
    /// Number of pick operations answered from a bitset.
    pub picks_served: u64,
    /// Number of colors newly struck (idempotent re-strikes not counted).
    pub colors_struck: u64,
    /// Number of words retired by epoch clears of reused scratch sets.
    pub words_cleared: u64,
}

impl Clone for PaletteStats {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        let fresh = PaletteStats::default();
        fresh.add(snap);
        fresh
    }
}

impl PaletteStats {
    /// Records one served pick together with the strikes that preceded it.
    pub fn record_pick(&self, strikes: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.picks.fetch_add(1, Relaxed);
        self.strikes.fetch_add(strikes, Relaxed);
    }

    /// Records strikes not tied to a single pick (e.g. incremental strike paths).
    pub fn record_strikes(&self, n: u64) {
        self.strikes.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records one pick served without re-counting strikes.
    pub fn record_pick_only(&self) {
        self.picks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records words retired by an epoch clear of a reused scratch set.
    pub fn record_words_cleared(&self, n: u64) {
        self.words_cleared.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Adds a snapshot's totals (used when folding stats upward).
    pub fn add(&self, snap: PaletteStatsSnapshot) {
        use std::sync::atomic::Ordering::Relaxed;
        self.picks.fetch_add(snap.picks_served, Relaxed);
        self.strikes.fetch_add(snap.colors_struck, Relaxed);
        self.words_cleared.fetch_add(snap.words_cleared, Relaxed);
    }

    /// The current totals.
    pub fn snapshot(&self) -> PaletteStatsSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        PaletteStatsSnapshot {
            picks_served: self.picks.load(Relaxed),
            colors_struck: self.strikes.load(Relaxed),
            words_cleared: self.words_cleared.load(Relaxed),
        }
    }

    /// Reads and resets the totals (so a driver can flush once per executor run without
    /// double counting).
    pub fn take(&self) -> PaletteStatsSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        PaletteStatsSnapshot {
            picks_served: self.picks.swap(0, Relaxed),
            colors_struck: self.strikes.swap(0, Relaxed),
            words_cleared: self.words_cleared.swap(0, Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strike_first_unstruck_and_counts() {
        let mut set = PaletteSet::new(130);
        assert_eq!(set.first_unstruck(), Some(0));
        assert!(set.strike(0));
        assert!(set.strike(1));
        assert!(!set.strike(1), "re-strike is a no-op");
        assert!(!set.strike(500), "out-of-bound strikes are ignored");
        assert_eq!(set.struck_count(), 2);
        assert_eq!(set.first_unstruck(), Some(2));
        for c in 0..129 {
            set.strike(c);
        }
        assert_eq!(set.first_unstruck(), Some(129));
        assert!(set.strike(129));
        assert_eq!(set.first_unstruck(), None);
        assert_eq!(set.struck_count(), 130);
    }

    #[test]
    fn range_queries_mask_partial_words() {
        let mut set = PaletteSet::new(200);
        for c in [3u64, 64, 65, 127, 128, 199] {
            set.strike(c);
        }
        assert_eq!(set.first_unstruck_in_range(3, 200), Some(4));
        assert_eq!(set.first_unstruck_in_range(64, 66), None);
        assert_eq!(set.first_unstruck_in_range(64, 70), Some(66));
        assert_eq!(set.struck_in_range(0, 200), 6);
        assert_eq!(set.struck_in_range(64, 128), 3);
        assert_eq!(set.struck_in_range(199, 500), 1);
        assert_eq!(set.first_unstruck_in_range(199, 200), None);
        assert_eq!(set.first_unstruck_in_range(10, 10), None);
    }

    #[test]
    fn epoch_clear_is_cheap_and_counts_touched_words() {
        let mut set = PaletteSet::new(256);
        set.strike(0);
        set.strike(70);
        set.strike(71);
        assert_eq!(set.clear(), 2, "two distinct words were written");
        assert_eq!(set.struck_count(), 0);
        assert_eq!(set.first_unstruck(), Some(0));
        assert!(!set.is_struck(70));
        assert_eq!(set.clear(), 0, "nothing touched since the last clear");
        assert!(set.strike(70), "a color can be struck again in the new epoch");
    }

    #[test]
    fn reset_redimensions_and_reuses_the_allocation() {
        let mut set = PaletteSet::new(10);
        set.strike(5);
        set.reset(300);
        assert_eq!(set.bound(), 300);
        assert!(!set.is_struck(5));
        assert!(set.strike(200));
        assert_eq!(set.first_unstruck_in_range(200, 300), Some(201));
    }

    #[test]
    fn preference_order_scan_matches_vec_filter() {
        let mut set = PaletteSet::new(64);
        set.strike(9);
        let palette = [9u64, 5, 7];
        assert_eq!(set.first_unstruck_of(&palette), Some(5));
        assert_eq!(set.intersect_count(&palette), 2);
        set.strike(5);
        set.strike(7);
        assert_eq!(set.first_unstruck_of(&palette), None);
    }

    #[test]
    fn select_unstruck_is_kth_surviving_position() {
        let mut set = PaletteSet::new(8);
        set.strike(0);
        set.strike(2);
        set.strike(3);
        // Unstruck positions: 1, 4, 5, 6, 7.
        assert_eq!(set.select_unstruck(0), Some(1));
        assert_eq!(set.select_unstruck(1), Some(4));
        assert_eq!(set.select_unstruck(4), Some(7));
        assert_eq!(set.select_unstruck(5), None);
    }

    #[test]
    fn pool_is_csr_shaped_and_allows_empty_lists() {
        let mut pool = ColorPool::new();
        pool.push_slice(&[4, 1, 4]);
        pool.push_iter(0..3);
        pool.push_slice(&[]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.total_colors(), 6);
        assert_eq!(pool.list(0), &[4, 1, 4], "the pool imposes no ordering");
        assert_eq!(pool.list(1), &[0, 1, 2]);
        assert_eq!(pool.list(2), &[] as &[u64]);
        pool.sort_dedup_list(2);
        assert_eq!(pool.iter().count(), 3);
        assert_eq!(ColorPool::empty_lists(4).len(), 4);
        assert_eq!(ColorPool::from_nested(&[vec![2, 1]]).list(0), &[2, 1]);
    }

    #[test]
    fn sort_dedup_normalizes_the_last_list() {
        let mut pool = ColorPool::new();
        pool.push_slice(&[7, 7, 7]);
        pool.sort_dedup_list(0);
        assert_eq!(pool.list(0), &[7]);
        pool.push_slice(&[5, 1, 5, 0, 1]);
        pool.sort_dedup_list(1);
        assert_eq!(pool.list(1), &[0, 1, 5]);
        assert_eq!(pool.total_colors(), 4);
        pool.push_slice(&[9, 3]);
        assert_eq!(pool.list(2), &[9, 3]);
    }

    #[test]
    fn stats_accumulate_and_take_resets() {
        let stats = PaletteStats::default();
        stats.record_pick(3);
        stats.record_strikes(2);
        stats.record_pick_only();
        stats.record_words_cleared(4);
        let snap = stats.snapshot();
        assert_eq!(snap.picks_served, 2);
        assert_eq!(snap.colors_struck, 5);
        assert_eq!(snap.words_cleared, 4);
        let cloned = stats.clone();
        assert_eq!(cloned.snapshot(), snap);
        assert_eq!(stats.take(), snap);
        assert_eq!(stats.snapshot(), PaletteStatsSnapshot::default());
    }

    /// The naive model: a sorted `Vec` of struck colors.
    #[derive(Default)]
    struct Model {
        struck: Vec<u64>,
        bound: u64,
    }

    impl Model {
        fn strike(&mut self, c: u64) -> bool {
            if c >= self.bound || self.struck.contains(&c) {
                return false;
            }
            self.struck.push(c);
            self.struck.sort_unstable();
            true
        }

        fn first_unstruck_in_range(&self, lo: u64, hi: u64) -> Option<u64> {
            (lo..hi.min(self.bound)).find(|c| !self.struck.contains(c))
        }

        fn select_unstruck(&self, k: u64) -> Option<u64> {
            (0..self.bound).filter(|c| !self.struck.contains(c)).nth(k as usize)
        }
    }

    /// One scripted operation of the equivalence property.
    #[derive(Debug, Clone)]
    enum Op {
        Strike(u64),
        Clear,
        FirstInRange(u64, u64),
        StruckInRange(u64, u64),
        Select(u64),
    }

    fn op_strategy(space: u64) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..space * 2).prop_map(Op::Strike),
            Just(Op::Clear),
            (0..space, 0..space + 8).prop_map(|(a, b)| Op::FirstInRange(a, b)),
            (0..space, 0..space + 8).prop_map(|(a, b)| Op::StruckInRange(a, b)),
            (0..space).prop_map(Op::Select),
        ]
    }

    proptest! {
        /// The satellite property: `PaletteSet` behaves exactly like the naive
        /// sorted-`Vec` model under strikes, range scans, counts, selects, and epoch
        /// clears, for bounds that straddle word boundaries.
        #[test]
        fn palette_set_matches_naive_model(
            bound in 1u64..140,
            ops in proptest::collection::vec(op_strategy(140), 1..60),
        ) {
            let mut set = PaletteSet::new(bound);
            let mut model = Model { struck: Vec::new(), bound };
            for op in ops {
                match op {
                    Op::Strike(c) => {
                        prop_assert_eq!(set.strike(c), model.strike(c));
                        prop_assert_eq!(set.is_struck(c), model.struck.contains(&c));
                    }
                    Op::Clear => {
                        set.clear();
                        model.struck.clear();
                    }
                    Op::FirstInRange(a, b) => {
                        let (lo, hi) = (a.min(b), a.max(b));
                        prop_assert_eq!(
                            set.first_unstruck_in_range(lo, hi),
                            model.first_unstruck_in_range(lo, hi)
                        );
                    }
                    Op::StruckInRange(a, b) => {
                        let (lo, hi) = (a.min(b), a.max(b));
                        let expected = model
                            .struck
                            .iter()
                            .filter(|&&c| c >= lo && c < hi.min(bound))
                            .count() as u64;
                        prop_assert_eq!(set.struck_in_range(lo, hi), expected);
                    }
                    Op::Select(k) => {
                        prop_assert_eq!(set.select_unstruck(k), model.select_unstruck(k));
                    }
                }
                prop_assert_eq!(set.struck_count(), model.struck.len() as u64);
                prop_assert_eq!(set.first_unstruck(), model.first_unstruck_in_range(0, bound));
            }
        }
    }
}
