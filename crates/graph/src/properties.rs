//! Structural graph properties used by tests and the experiment harness.

use crate::graph::{Graph, Vertex};
use std::collections::VecDeque;

/// Labels each vertex with the index of its connected component and returns the labels together
/// with the number of components.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.n();
    let mut label = vec![usize::MAX; n];
    let mut components = 0usize;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::from([start]);
        label[start] = components;
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if label[u] == usize::MAX {
                    label[u] = components;
                    queue.push_back(u);
                }
            }
        }
        components += 1;
    }
    (label, components)
}

/// Whether the graph is connected (the empty graph is considered connected).
pub fn is_connected(graph: &Graph) -> bool {
    if graph.n() == 0 {
        return true;
    }
    connected_components(graph).1 == 1
}

/// Whether the graph is a forest (acyclic).
pub fn is_forest(graph: &Graph) -> bool {
    let (_, components) = connected_components(graph);
    // A graph is a forest iff m = n - (number of components).
    graph.m() == graph.n() - components
}

/// Whether the graph is bipartite, and if so one proper 2-coloring (side labels).
pub fn bipartition(graph: &Graph) -> Option<Vec<u8>> {
    let n = graph.n();
    let mut side = vec![u8::MAX; n];
    for start in 0..n {
        if side[start] != u8::MAX {
            continue;
        }
        side[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if side[u] == u8::MAX {
                    side[u] = 1 - side[v];
                    queue.push_back(u);
                } else if side[u] == side[v] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// Eccentricity of a vertex (length of the longest shortest path from it) within its component.
pub fn eccentricity(graph: &Graph, v: Vertex) -> usize {
    let mut dist = vec![usize::MAX; graph.n()];
    dist[v] = 0;
    let mut queue = VecDeque::from([v]);
    let mut max_dist = 0;
    while let Some(x) = queue.pop_front() {
        for &u in graph.neighbors(x) {
            if dist[u] == usize::MAX {
                dist[u] = dist[x] + 1;
                max_dist = max_dist.max(dist[u]);
                queue.push_back(u);
            }
        }
    }
    max_dist
}

/// Diameter of the graph, computed exactly with one BFS per vertex.  Suitable only for the
/// small graphs used in tests; returns 0 for the empty graph and ignores disconnections
/// (it is the maximum eccentricity within components).
pub fn diameter(graph: &Graph) -> usize {
    graph.vertices().map(|v| eccentricity(graph, v)).max().unwrap_or(0)
}

/// Edge density `m / binom(n, 2)`; 0.0 for graphs with fewer than two vertices.
pub fn density(graph: &Graph) -> f64 {
    let n = graph.n();
    if n < 2 {
        return 0.0;
    }
    graph.m() as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
}

/// A summary of a graph's headline statistics, used by the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree.
    pub average_degree: f64,
    /// Degeneracy (arboricity upper bound).
    pub degeneracy: usize,
    /// Nash-Williams density lower bound on arboricity.
    pub arboricity_lower: usize,
    /// Number of connected components.
    pub components: usize,
}

/// Computes a [`GraphSummary`].
pub fn summarize(graph: &Graph) -> GraphSummary {
    let (_, components) = connected_components(graph);
    GraphSummary {
        n: graph.n(),
        m: graph.m(),
        max_degree: graph.max_degree(),
        average_degree: graph.average_degree(),
        degeneracy: crate::degeneracy::degeneracy(graph),
        arboricity_lower: crate::degeneracy::arboricity_lower_bound(graph),
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn components_of_disjoint_paths() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn forest_detection() {
        let tree = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        assert!(is_forest(&tree));
        let cycle = generators::cycle(4).unwrap();
        assert!(!is_forest(&cycle));
        assert!(is_forest(&Graph::empty(3)));
    }

    #[test]
    fn bipartiteness() {
        let even_cycle = generators::cycle(6).unwrap();
        let side = bipartition(&even_cycle).unwrap();
        for &(u, v) in even_cycle.edges() {
            assert_ne!(side[u], side[v]);
        }
        let odd_cycle = generators::cycle(5).unwrap();
        assert!(bipartition(&odd_cycle).is_none());
    }

    #[test]
    fn diameter_of_path() {
        let g = generators::path(7).unwrap();
        assert_eq!(diameter(&g), 6);
        assert_eq!(eccentricity(&g, 3), 3);
    }

    #[test]
    fn density_and_summary() {
        let g = generators::complete(5).unwrap();
        assert!((density(&g) - 1.0).abs() < 1e-12);
        let s = summarize(&g);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.degeneracy, 4);
        assert_eq!(s.components, 1);
        assert_eq!(density(&Graph::empty(1)), 0.0);
    }
}
