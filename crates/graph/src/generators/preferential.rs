//! Preferential-attachment and planar-like sparse generators.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, Vertex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Barabási–Albert preferential attachment: each arriving vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to their degree.
///
/// Every vertex contributes at most `edges_per_vertex` edges "backwards", so the graph is
/// `edges_per_vertex`-degenerate and its arboricity is at most `edges_per_vertex`; the degree
/// distribution is heavy-tailed, so `Δ ≫ a` — a natural workload for Corollary 4.7.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `edges_per_vertex == 0` or
/// `n <= edges_per_vertex`.
pub fn barabasi_albert(n: usize, edges_per_vertex: usize, seed: u64) -> Result<Graph, GraphError> {
    if edges_per_vertex == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "edges_per_vertex must be positive".to_string(),
        });
    }
    if n <= edges_per_vertex {
        return Err(GraphError::InvalidParameter {
            reason: format!("n = {n} must exceed edges_per_vertex = {edges_per_vertex}"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // `targets` holds one entry per edge endpoint, so sampling uniformly from it is
    // degree-proportional sampling.
    let mut targets: Vec<Vertex> = Vec::with_capacity(2 * n * edges_per_vertex);
    // Seed clique-ish core: connect the first edges_per_vertex + 1 vertices in a path so every
    // early vertex has nonzero degree.
    for v in 1..=edges_per_vertex {
        builder.add_edge(v - 1, v)?;
        targets.push(v - 1);
        targets.push(v);
    }
    for v in (edges_per_vertex + 1)..n {
        // A Vec with a linear containment check keeps attachment order deterministic (a
        // HashSet's iteration order would vary between runs and break seed reproducibility).
        let mut chosen: Vec<Vertex> = Vec::with_capacity(edges_per_vertex);
        let mut guard = 0;
        while chosen.len() < edges_per_vertex && guard < 50 * edges_per_vertex {
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            builder.add_edge(t, v)?;
            targets.push(t);
            targets.push(v);
        }
    }
    Ok(builder.build())
}

/// A "planar-like" sparse graph: a random maximal-ish triangulated strip.  Vertices are placed
/// on a path; every vertex additionally connects to the two preceding vertices, producing a
/// 2-tree-like structure with arboricity at most 2 (it is 2-degenerate by construction).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn random_planar_like(
    n: usize,
    extra_chord_probability: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter { reason: "need n >= 1".to_string() });
    }
    if !(0.0..=1.0).contains(&extra_chord_probability) || extra_chord_probability.is_nan() {
        return Err(GraphError::InvalidParameter {
            reason: format!("chord probability {extra_chord_probability} must be in [0, 1]"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v)?;
        if v >= 2 && rng.gen::<f64>() < extra_chord_probability {
            b.add_edge(v - 2, v)?;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneracy;

    #[test]
    fn barabasi_albert_is_m_degenerate() {
        let g = barabasi_albert(300, 3, 17).unwrap();
        assert!(degeneracy::degeneracy(&g) <= 3);
        assert!(g.max_degree() > 6, "heavy tail expected, got Δ = {}", g.max_degree());
        assert!(barabasi_albert(3, 3, 0).is_err());
        assert!(barabasi_albert(10, 0, 0).is_err());
    }

    #[test]
    fn planar_like_is_two_degenerate() {
        let g = random_planar_like(200, 0.8, 3).unwrap();
        assert!(degeneracy::degeneracy(&g) <= 2);
        assert!(g.m() >= 199);
        assert!(random_planar_like(0, 0.5, 1).is_err());
        assert!(random_planar_like(10, 1.5, 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(100, 2, 5).unwrap();
        let b = barabasi_albert(100, 2, 5).unwrap();
        assert_eq!(a, b);
    }
}
