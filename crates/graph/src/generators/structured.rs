//! Deterministic structured graph families.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};

/// A simple path on `n` vertices (`n − 1` edges).
///
/// # Errors
///
/// Never fails for valid `n`; returns the empty graph for `n = 0`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v)?;
    }
    Ok(b.build())
}

/// A cycle on `n` vertices.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("cycle needs n >= 3, got {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n)?;
    }
    Ok(b.build())
}

/// A star with one hub (vertex 0) and `n − 1` leaves.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter { reason: "star needs n >= 1".to_string() });
    }
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v)?;
    }
    Ok(b.build())
}

/// The complete graph `K_n`.
///
/// # Errors
///
/// Never fails; returns the empty graph for `n ∈ {0, 1}`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v)?;
        }
    }
    Ok(b.build())
}

/// The complete bipartite graph `K_{left,right}`; vertices `0..left` form the left side.
///
/// # Errors
///
/// Never fails for valid sizes.
pub fn complete_bipartite(left: usize, right: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(left + right);
    for u in 0..left {
        for v in 0..right {
            b.add_edge(u, left + v)?;
        }
    }
    Ok(b.build())
}

/// A `rows × cols` grid graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("grid dimensions must be positive, got {rows}x{cols}"),
        });
    }
    let index = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(index(r, c), index(r, c + 1))?;
            }
            if r + 1 < rows {
                b.add_edge(index(r, c), index(r + 1, c))?;
            }
        }
    }
    Ok(b.build())
}

/// A `rows × cols` torus (grid with wrap-around edges); every vertex has degree 4 when both
/// dimensions are at least 3.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is < 3.
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidParameter {
            reason: format!("torus dimensions must be >= 3, got {rows}x{cols}"),
        });
    }
    let index = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(index(r, c), index(r, (c + 1) % cols))?;
            b.add_edge(index(r, c), index((r + 1) % rows, c))?;
        }
    }
    Ok(b.build())
}

/// The `d`-dimensional hypercube on `2^d` vertices.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `d > 20` (guarding against absurd sizes).
pub fn hypercube(d: u32) -> Result<Graph, GraphError> {
    if d > 20 {
        return Err(GraphError::InvalidParameter {
            reason: format!("hypercube dimension {d} too large"),
        });
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if v < u {
                b.add_edge(v, u)?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(6).unwrap();
        assert_eq!(p.m(), 5);
        assert!(properties::is_forest(&p));
        let c = cycle(6).unwrap();
        assert_eq!(c.m(), 6);
        assert!(!properties::is_forest(&c));
        assert!(cycle(2).is_err());
        assert_eq!(path(0).unwrap().n(), 0);
    }

    #[test]
    fn star_is_a_tree_with_high_degree_hub() {
        let s = star(10).unwrap();
        assert_eq!(s.max_degree(), 9);
        assert!(properties::is_forest(&s));
        assert!(star(0).is_err());
    }

    #[test]
    fn complete_graphs() {
        let k5 = complete(5).unwrap();
        assert_eq!(k5.m(), 10);
        assert_eq!(k5.max_degree(), 4);
        let kb = complete_bipartite(3, 4).unwrap();
        assert_eq!(kb.m(), 12);
        assert!(properties::bipartition(&kb).is_some());
    }

    #[test]
    fn grid_and_torus_degrees() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert!(grid(0, 4).is_err());

        let t = torus(4, 5).unwrap();
        assert_eq!(t.n(), 20);
        for v in t.vertices() {
            assert_eq!(t.degree(v), 4);
        }
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn hypercube_degrees_equal_dimension() {
        let h = hypercube(4).unwrap();
        assert_eq!(h.n(), 16);
        for v in h.vertices() {
            assert_eq!(h.degree(v), 4);
        }
        assert!(hypercube(25).is_err());
    }
}
