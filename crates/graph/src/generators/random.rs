//! Seeded random graph generators.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, Vertex};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Erdős–Rényi `G(n, p)`: each of the `binom(n, 2)` edges is present independently with
/// probability `p`.
///
/// Runs in `O(n + m)` expected time via Batagelj–Brandes geometric skipping (one RNG draw
/// per *edge*, not per pair), so sparse million-vertex graphs generate in milliseconds —
/// the old per-pair Bernoulli loop was `O(n²)` and made `n = 10⁶` workloads (experiment
/// E18) infeasible.  Still deterministic per seed, though a given seed produces a
/// *different* graph than the per-pair implementation did.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter { reason: format!("p = {p} must be in [0, 1]") });
    }
    let mut rng = rng(seed);
    let mut builder = GraphBuilder::new(n);
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                builder.add_edge(u, v)?;
            }
        }
    } else if p > 0.0 && (1.0 - p).ln() != 0.0 {
        // Walk the pair space {(v, w) : w < v} in lexicographic order, jumping a
        // geometrically distributed number of non-edges between consecutive edges.
        // (When p is below f64 resolution, `ln(1 - p)` rounds to zero and the skip is
        // unbounded; the guard above returns the empty graph, which is where the expected
        // edge count lies for any representable n.)
        let ln_q = (1.0 - p).ln();
        let mut v: usize = 1;
        let mut w: i64 = -1;
        while v < n {
            let r: f64 = rng.gen();
            // (1 - r) is in (0, 1], so the ratio is a non-negative skip; cap it before the
            // cast so extreme draws stay sound — anything at or beyond n(n-1)/2 walks off
            // the end of the pair space either way.
            let skip = ((1.0 - r).ln() / ln_q).min(4.0e18);
            w += 1 + skip as i64;
            while v < n && w >= v as i64 {
                w -= v as i64;
                v += 1;
            }
            if v < n {
                builder.add_edge(v, w as usize)?;
            }
        }
    }
    Ok(builder.build())
}

/// Uniform random graph with exactly `m` edges (or the maximum possible if `m` exceeds it).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2` and `m > 0`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    let max_edges = if n < 2 { 0 } else { n * (n - 1) / 2 };
    if m > 0 && max_edges == 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("cannot place {m} edges in a graph with {n} vertices"),
        });
    }
    let target = m.min(max_edges);
    let mut rng = rng(seed);
    let mut builder = GraphBuilder::new(n);
    let mut chosen = std::collections::HashSet::with_capacity(target);
    while chosen.len() < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            builder.add_edge(key.0, key.1)?;
        }
    }
    Ok(builder.build())
}

/// Random bipartite graph on `left + right` vertices where each cross pair is an edge with
/// probability `p`.  Vertices `0..left` form one side.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
pub fn random_bipartite(left: usize, right: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter { reason: format!("p = {p} must be in [0, 1]") });
    }
    let mut rng = rng(seed);
    let mut builder = GraphBuilder::new(left + right);
    for u in 0..left {
        for v in 0..right {
            if rng.gen::<f64>() < p {
                builder.add_edge(u, left + v)?;
            }
        }
    }
    Ok(builder.build())
}

/// Approximately `d`-regular graph built by the configuration model with rejection of
/// self-loops and parallel edges (so some vertices may end up with degree slightly below `d`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `d >= n`.
pub fn random_regular_like(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if n > 0 && d >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree {d} must be smaller than n = {n}"),
        });
    }
    let mut rng = rng(seed);
    let mut stubs: Vec<Vertex> = Vec::with_capacity(n * d);
    for v in 0..n {
        for _ in 0..d {
            stubs.push(v);
        }
    }
    stubs.shuffle(&mut rng);
    let mut builder = GraphBuilder::new(n);
    let mut i = 0;
    while i + 1 < stubs.len() {
        let (u, v) = (stubs[i], stubs[i + 1]);
        i += 2;
        if u != v {
            builder.add_edge(u, v)?;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        let empty = gnp(20, 0.0, 1).unwrap();
        assert_eq!(empty.m(), 0);
        let full = gnp(20, 1.0, 1).unwrap();
        assert_eq!(full.m(), 20 * 19 / 2);
        assert!(gnp(10, 1.5, 1).is_err());
        assert!(gnp(10, f64::NAN, 1).is_err());
        // p below f64 resolution: ln(1 - p) rounds to 0; must yield the (expected) empty
        // graph, not an out-of-range edge from an unbounded skip.
        let tiny = gnp(100, 1e-17, 0).unwrap();
        assert_eq!(tiny.m(), 0);
        let denormal = gnp(100, f64::MIN_POSITIVE, 0).unwrap();
        assert_eq!(denormal.m(), 0);
    }

    #[test]
    fn gnp_density_tracks_p() {
        // The skip sampler must reproduce the Bernoulli density: expected m = p·n(n-1)/2.
        let n = 4_000usize;
        for (p, seed) in [(0.002f64, 3u64), (0.01, 4)] {
            let g = gnp(n, p, seed).unwrap();
            let expected = p * (n * (n - 1) / 2) as f64;
            let ratio = g.m() as f64 / expected;
            assert!((0.9..1.1).contains(&ratio), "m = {} vs expected {expected}", g.m());
        }
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(60, 0.1, 42).unwrap();
        let b = gnp(60, 0.1, 42).unwrap();
        assert_eq!(a, b);
        let c = gnp(60, 0.1, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = gnm(30, 50, 3).unwrap();
        assert_eq!(g.m(), 50);
        // Requesting more edges than possible clamps.
        let g = gnm(5, 1000, 3).unwrap();
        assert_eq!(g.m(), 10);
        assert!(gnm(1, 5, 0).is_err());
        assert_eq!(gnm(1, 0, 0).unwrap().m(), 0);
    }

    #[test]
    fn bipartite_has_no_side_internal_edges() {
        let g = random_bipartite(10, 15, 0.4, 5).unwrap();
        for &(u, v) in g.edges() {
            let u_left = u < 10;
            let v_left = v < 10;
            assert_ne!(u_left, v_left);
        }
    }

    #[test]
    fn regular_like_respects_degree_bound() {
        let g = random_regular_like(40, 5, 9).unwrap();
        assert!(g.max_degree() <= 5);
        assert!(g.m() > 0);
        assert!(random_regular_like(5, 5, 0).is_err());
    }
}
