//! Graph generators for tests, examples and experiments.
//!
//! All randomized generators take an explicit `seed` and are deterministic for a given seed
//! (they use the ChaCha8 PRNG).  The families were chosen to exercise the regimes the paper
//! cares about:
//!
//! * bounded-arboricity graphs with moderate degree — [`union_of_random_forests`],
//!   [`random_planar_like`], [`barabasi_albert`];
//! * bounded-arboricity graphs with *huge* maximum degree (the Corollary 4.7 regime where
//!   `a ≤ Δ^{1−ν}`) — [`star_forest_union`], [`hub_and_spokes`];
//! * bounded-degree graphs — [`gnp`] with small `p`, [`grid`], [`torus`], [`hypercube`],
//!   [`random_regular_like`];
//! * worst-case dense graphs — [`complete`], [`complete_bipartite`], [`gnm`].

mod preferential;
mod random;
mod structured;
mod trees;

pub use preferential::{barabasi_albert, random_planar_like};
pub use random::{gnm, gnp, random_bipartite, random_regular_like};
pub use structured::{complete, complete_bipartite, cycle, grid, hypercube, path, star, torus};
pub use trees::{
    balanced_tree, caterpillar, hub_and_spokes, random_forest, random_tree, star_forest_union,
    union_of_random_forests,
};

use crate::error::GraphError;

/// One seeded representative per generator family, with shuffled identifiers — **the**
/// canonical fixture for executor-equivalence and routing-invariant suites across the
/// workspace (`tests/message_fabric.rs`, `tests/sharded_executor.rs`,
/// `crates/graph/tests/mirror_ports.rs` all draw from this list, so their coverage cannot
/// silently drift apart).  `n` is clamped up to a size every family accepts; the dense
/// families are capped so property tests stay fast.
///
/// # Panics
///
/// Panics if a generator rejects its parameters (impossible for the clamped sizes).
pub fn seeded_suite(n: usize, seed: u64) -> Vec<(&'static str, crate::graph::Graph)> {
    let n = n.max(12);
    vec![
        ("forests", union_of_random_forests(n, 3, seed).unwrap().with_shuffled_ids(seed + 1)),
        ("gnp", gnp(n, 4.0 / n as f64, seed + 2).unwrap().with_shuffled_ids(seed + 3)),
        ("star-forests", star_forest_union(n, 2, 3, seed + 4).unwrap().with_shuffled_ids(seed + 5)),
        (
            "preferential-attachment",
            barabasi_albert(n, 3, seed + 6).unwrap().with_shuffled_ids(seed + 7),
        ),
        ("random-tree", random_tree(n, seed + 8).unwrap().with_shuffled_ids(seed + 9)),
        ("grid", grid(n / 6 + 2, 6).unwrap().with_shuffled_ids(seed + 10)),
        ("caterpillar", caterpillar(n / 4 + 1, 3).unwrap().with_shuffled_ids(seed + 11)),
        ("cycle", cycle(n).unwrap().with_shuffled_ids(seed + 12)),
        ("complete", complete(n.min(20)).unwrap().with_shuffled_ids(seed + 13)),
        (
            "bipartite",
            random_bipartite(n / 2, n / 2, 0.15, seed + 14).unwrap().with_shuffled_ids(seed + 15),
        ),
    ]
}

/// A named graph family used by the experiment harness to iterate over workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Family {
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Number of vertices.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Union of `k` uniformly random spanning forests: arboricity ≤ `k`.
    ForestUnion {
        /// Number of vertices.
        n: usize,
        /// Number of forests (design arboricity).
        k: usize,
    },
    /// Union of `k` star forests: arboricity ≤ `k`, maximum degree `Θ(n / hubs)`.
    StarForestUnion {
        /// Number of vertices.
        n: usize,
        /// Number of star forests.
        k: usize,
        /// Hubs per star forest.
        hubs: usize,
    },
    /// Two-dimensional grid.
    Grid {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Preferential-attachment graph with `edges_per_vertex` out-edges per arriving vertex.
    PreferentialAttachment {
        /// Number of vertices.
        n: usize,
        /// Edges added per arriving vertex (also an arboricity upper bound).
        edges_per_vertex: usize,
    },
    /// Complete graph.
    Complete {
        /// Number of vertices.
        n: usize,
    },
}

impl Family {
    /// A short machine-friendly name for experiment output.
    pub fn name(&self) -> String {
        match self {
            Family::Gnp { n, p } => format!("gnp_n{n}_p{p}"),
            Family::ForestUnion { n, k } => format!("forests_n{n}_k{k}"),
            Family::StarForestUnion { n, k, hubs } => format!("stars_n{n}_k{k}_h{hubs}"),
            Family::Grid { rows, cols } => format!("grid_{rows}x{cols}"),
            Family::PreferentialAttachment { n, edges_per_vertex } => {
                format!("pa_n{n}_m{edges_per_vertex}")
            }
            Family::Complete { n } => format!("complete_n{n}"),
        }
    }

    /// Instantiates the family with the given seed.
    ///
    /// # Errors
    ///
    /// Propagates generator parameter errors.
    pub fn generate(&self, seed: u64) -> Result<crate::graph::Graph, GraphError> {
        match *self {
            Family::Gnp { n, p } => gnp(n, p, seed),
            Family::ForestUnion { n, k } => union_of_random_forests(n, k, seed),
            Family::StarForestUnion { n, k, hubs } => star_forest_union(n, k, hubs, seed),
            Family::Grid { rows, cols } => grid(rows, cols),
            Family::PreferentialAttachment { n, edges_per_vertex } => {
                barabasi_albert(n, edges_per_vertex, seed)
            }
            Family::Complete { n } => complete(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_are_distinct_and_generation_works() {
        let families = [
            Family::Gnp { n: 50, p: 0.1 },
            Family::ForestUnion { n: 50, k: 3 },
            Family::StarForestUnion { n: 50, k: 2, hubs: 3 },
            Family::Grid { rows: 5, cols: 6 },
            Family::PreferentialAttachment { n: 50, edges_per_vertex: 3 },
            Family::Complete { n: 10 },
        ];
        let mut names: Vec<String> = families.iter().map(Family::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), families.len());
        for f in &families {
            let g = f.generate(7).unwrap();
            assert!(g.n() > 0);
        }
    }
}
