//! Trees, forests and bounded-arboricity unions of forests.
//!
//! `union_of_random_forests(n, k, seed)` is the main workload family for the paper's
//! experiments: its arboricity is at most `k` by construction (the edge set is covered by `k`
//! forests), and the construction certificate is returned implicitly (each forest is a random
//! attachment tree over a random vertex permutation).
//!
//! `star_forest_union` and `hub_and_spokes` produce the Corollary 4.7 regime: arboricity `≤ k`
//! but maximum degree close to `n`, i.e. `a ≪ Δ`.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, Vertex};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A uniformly random recursive tree: vertex `i` attaches to a uniformly random earlier vertex.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter { reason: "tree needs n >= 1".to_string() });
    }
    let mut rng = rng(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        b.add_edge(parent, v)?;
    }
    Ok(b.build())
}

/// A random forest: a random recursive tree in which each non-root vertex is attached with
/// probability `attach_probability` (so roughly `(1 − attach_probability) · n` components).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0` or the probability is outside `[0, 1]`.
pub fn random_forest(n: usize, attach_probability: f64, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter { reason: "forest needs n >= 1".to_string() });
    }
    if !(0.0..=1.0).contains(&attach_probability) || attach_probability.is_nan() {
        return Err(GraphError::InvalidParameter {
            reason: format!("attach probability {attach_probability} must be in [0, 1]"),
        });
    }
    let mut rng = rng(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        if rng.gen::<f64>() < attach_probability {
            let parent = rng.gen_range(0..v);
            b.add_edge(parent, v)?;
        }
    }
    Ok(b.build())
}

/// The union of `k` independent random recursive trees over random vertex permutations.
///
/// Because the edge set is covered by `k` forests, the arboricity is at most `k` (it is
/// usually exactly `k` for moderate `n`).  This is the canonical bounded-arboricity workload
/// of the experiments.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0` or `k == 0`.
pub fn union_of_random_forests(n: usize, k: usize, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 || k == 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("union of forests needs n >= 1 and k >= 1, got n = {n}, k = {k}"),
        });
    }
    let mut rng = rng(seed);
    let mut b = GraphBuilder::new(n);
    for _ in 0..k {
        let mut perm: Vec<Vertex> = (0..n).collect();
        perm.shuffle(&mut rng);
        for i in 1..n {
            let parent = perm[rng.gen_range(0..i)];
            // Parallel edges across forests are merged by the builder, which can only lower
            // the arboricity further.
            b.add_edge(parent, perm[i])?;
        }
    }
    Ok(b.build())
}

/// A balanced `arity`-ary tree with `n` vertices (vertex `v`'s parent is `(v − 1) / arity`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0` or `arity == 0`.
pub fn balanced_tree(n: usize, arity: usize) -> Result<Graph, GraphError> {
    if n == 0 || arity == 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "balanced tree needs n >= 1 and arity >= 1, got n = {n}, arity = {arity}"
            ),
        });
    }
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) / arity, v)?;
    }
    Ok(b.build())
}

/// A caterpillar: a spine path of `spine` vertices, each with `legs` pendant leaves.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Result<Graph, GraphError> {
    if spine == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "caterpillar needs spine >= 1".to_string(),
        });
    }
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_edge(s - 1, s)?;
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l)?;
        }
    }
    Ok(b.build())
}

/// The union of `k` star forests, each with `hubs` hubs chosen at random and every other
/// vertex attached to a random hub.  Arboricity ≤ `k`, maximum degree ≈ `k · n / hubs`.
///
/// This is the Corollary 4.7 regime: `a ≤ Δ^{1−ν}` for suitable parameters, where the paper's
/// algorithm produces an `o(Δ)`-coloring (in fact `O(a^{1+η})` colors) in `O(log a · log n)`
/// time while degree-based algorithms pay in `Δ`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n`, `k` or `hubs` is 0, or `hubs >= n`.
pub fn star_forest_union(n: usize, k: usize, hubs: usize, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 || k == 0 || hubs == 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "star forest union needs positive parameters, got n = {n}, k = {k}, hubs = {hubs}"
            ),
        });
    }
    if hubs >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("hubs = {hubs} must be smaller than n = {n}"),
        });
    }
    let mut rng = rng(seed);
    let mut b = GraphBuilder::new(n);
    for _ in 0..k {
        let mut perm: Vec<Vertex> = (0..n).collect();
        perm.shuffle(&mut rng);
        let (hub_vertices, rest) = perm.split_at(hubs);
        for &v in rest {
            let hub = hub_vertices[rng.gen_range(0..hubs)];
            b.add_edge(hub, v)?;
        }
    }
    Ok(b.build())
}

/// A single "hub-and-spokes" graph: `hubs` hub vertices forming a clique, every other vertex
/// connected to `spokes_per_vertex` distinct hubs.  Arboricity is `O(hubs)`, maximum degree is
/// `Θ(n / 1)` at the hubs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if parameters are degenerate
/// (`hubs == 0`, `hubs >= n`, or `spokes_per_vertex > hubs`).
pub fn hub_and_spokes(
    n: usize,
    hubs: usize,
    spokes_per_vertex: usize,
    seed: u64,
) -> Result<Graph, GraphError> {
    if hubs == 0 || hubs >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("need 0 < hubs < n, got hubs = {hubs}, n = {n}"),
        });
    }
    if spokes_per_vertex > hubs {
        return Err(GraphError::InvalidParameter {
            reason: format!("spokes_per_vertex = {spokes_per_vertex} exceeds hubs = {hubs}"),
        });
    }
    let mut rng = rng(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..hubs {
        for v in (u + 1)..hubs {
            b.add_edge(u, v)?;
        }
    }
    let mut hub_ids: Vec<Vertex> = (0..hubs).collect();
    for v in hubs..n {
        hub_ids.shuffle(&mut rng);
        for &h in hub_ids.iter().take(spokes_per_vertex) {
            b.add_edge(h, v)?;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneracy;
    use crate::properties;

    #[test]
    fn random_tree_is_a_tree() {
        let g = random_tree(80, 4).unwrap();
        assert_eq!(g.m(), 79);
        assert!(properties::is_forest(&g));
        assert!(properties::is_connected(&g));
        assert!(random_tree(0, 1).is_err());
    }

    #[test]
    fn random_forest_is_a_forest() {
        let g = random_forest(100, 0.7, 5).unwrap();
        assert!(properties::is_forest(&g));
        assert!(random_forest(10, 2.0, 5).is_err());
    }

    #[test]
    fn union_of_forests_has_bounded_degeneracy() {
        for k in [1usize, 2, 4, 6] {
            let g = union_of_random_forests(200, k, 13).unwrap();
            assert!(g.m() <= k * 199);
            assert!(degeneracy::degeneracy(&g) <= 2 * k);
        }
        assert!(union_of_random_forests(0, 2, 1).is_err());
        assert!(union_of_random_forests(10, 0, 1).is_err());
    }

    #[test]
    fn balanced_tree_and_caterpillar_are_forests() {
        let t = balanced_tree(40, 3).unwrap();
        assert!(properties::is_forest(&t));
        assert!(properties::is_connected(&t));
        let c = caterpillar(5, 4).unwrap();
        assert_eq!(c.n(), 25);
        assert!(properties::is_forest(&c));
        assert!(balanced_tree(0, 2).is_err());
        assert!(caterpillar(0, 2).is_err());
    }

    #[test]
    fn star_forest_union_has_low_arboricity_and_high_degree() {
        let g = star_forest_union(500, 2, 4, 21).unwrap();
        let d = degeneracy::degeneracy(&g);
        assert!(d <= 4, "degeneracy {d} should stay near the number of star forests");
        assert!(g.max_degree() >= 50, "hubs should have large degree, got {}", g.max_degree());
        assert!(star_forest_union(10, 1, 10, 0).is_err());
    }

    #[test]
    fn hub_and_spokes_shape() {
        let g = hub_and_spokes(200, 5, 3, 8).unwrap();
        assert!(g.max_degree() >= 100);
        assert!(degeneracy::degeneracy(&g) <= 5 + 3);
        assert!(hub_and_spokes(10, 0, 1, 0).is_err());
        assert!(hub_and_spokes(10, 4, 6, 0).is_err());
    }
}
