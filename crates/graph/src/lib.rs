//! Graph substrate for the `arbcolor` project.
//!
//! This crate provides everything the distributed-coloring algorithms and the experiment
//! harness need to know about graphs:
//!
//! * [`Graph`] — a compact, immutable undirected simple graph in CSR (compressed sparse row)
//!   form, with a canonical edge index and per-vertex unique identifiers (the LOCAL model
//!   assumes IDs from `{1, …, n}`).
//! * [`subgraph`] — induced subgraphs with index mappings back to the parent graph, used by
//!   the recursive procedures of the paper (which recurse on color classes).
//! * [`orientation`] — complete and *partial* edge orientations together with their
//!   out-degree, *length* (longest consistently oriented path) and *deficit* parameters, the
//!   central combinatorial objects of Section 3 of the paper, plus the completion operation of
//!   Lemma 3.1 and acyclicity checks.
//! * [`coloring`] — coloring containers and independent validators: legality, defect
//!   (maximum number of same-colored neighbors), and arbdefect verification via witness
//!   orientations (Lemma 2.5 of the paper).
//! * [`degeneracy`] — degeneracy orderings and arboricity estimates (degeneracy `d` satisfies
//!   `a ≤ d ≤ 2a − 1`, and the Nash-Williams density `⌈m/(n−1)⌉` lower-bounds `a`).
//! * [`generators`] — deterministic and seeded-random graph families used by the test-suite
//!   and the experiments (bounded-arboricity unions of forests, star forests with huge `Δ`
//!   but tiny `a`, grids, rings, preferential attachment, …).
//! * [`io`] — streaming parsers and writers for the on-disk formats real datasets ship in
//!   (whitespace edge lists, DIMACS `.col`, METIS), feeding the CSR builder directly with
//!   typed errors for every malformed input.
//! * [`palette`] — the word-level bitset palette engine: epoch-stamped strike sets
//!   ([`PaletteSet`]), the CSR-shaped flat color-list arena ([`ColorPool`]), and the shared
//!   reuse counters ([`PaletteStats`]) every pick path of the coloring algorithms runs on.
//!
//! # Example
//!
//! ```
//! use arbcolor_graph::{generators, degeneracy};
//!
//! # fn main() -> Result<(), arbcolor_graph::GraphError> {
//! let g = generators::union_of_random_forests(200, 3, 7)?;
//! let d = degeneracy::degeneracy(&g);
//! assert!(d <= 2 * 3); // degeneracy is at most 2a - 1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod degeneracy;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod orientation;
pub mod palette;
pub mod properties;
pub mod subgraph;

pub use coloring::{Color, Coloring};
pub use error::GraphError;
pub use graph::{ArcIdx, EdgeIdx, Graph, GraphBuilder, Vertex};
pub use orientation::{EdgeDirection, Orientation};
pub use palette::{ColorPool, PaletteSet, PaletteStats, PaletteStatsSnapshot};
pub use subgraph::{InducedSubgraph, PartitionScratch, VertexMap};
