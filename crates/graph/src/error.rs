//! Error types for the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction, generators and validators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex index was outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; simple graphs have none.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: usize,
    },
    /// The requested edge does not exist in the graph.
    MissingEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// An orientation that was required to be acyclic contains a directed cycle.
    NotAcyclic,
    /// A generator was invoked with parameters that cannot produce a graph.
    InvalidParameter {
        /// Human-readable description of the parameter problem.
        reason: String,
    },
    /// A coloring vector does not have one entry per vertex.
    ColoringSizeMismatch {
        /// Entries in the coloring.
        got: usize,
        /// Vertices in the graph.
        expected: usize,
    },
    /// A text-format graph file (edge list, DIMACS `.col`, METIS) could not be parsed.
    ///
    /// Produced by the streaming parsers in [`crate::io`]; `line` is 1-based so it can be
    /// pasted straight into an editor.
    Parse {
        /// 1-based line number of the offending input line (0 when the problem is not tied
        /// to a specific line, e.g. a truncated file).
        line: usize,
        /// Human-readable description of what was wrong.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::MissingEdge { u, v } => write!(f, "edge ({u}, {v}) not present"),
            GraphError::NotAcyclic => write!(f, "orientation contains a directed cycle"),
            GraphError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            GraphError::ColoringSizeMismatch { got, expected } => {
                write!(f, "coloring has {got} entries but graph has {expected} vertices")
            }
            GraphError::Parse { line, reason } => {
                if *line == 0 {
                    write!(f, "parse error: {reason}")
                } else {
                    write!(f, "parse error on line {line}: {reason}")
                }
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            GraphError::VertexOutOfRange { vertex: 5, n: 3 },
            GraphError::SelfLoop { vertex: 1 },
            GraphError::MissingEdge { u: 0, v: 1 },
            GraphError::NotAcyclic,
            GraphError::InvalidParameter { reason: "p out of range".to_string() },
            GraphError::ColoringSizeMismatch { got: 2, expected: 3 },
            GraphError::Parse { line: 4, reason: "bad header".to_string() },
            GraphError::Parse { line: 0, reason: "truncated file".to_string() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
