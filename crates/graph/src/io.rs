//! Streaming parsers and writers for the on-disk graph formats real datasets ship in.
//!
//! Three text formats cover the bulk of published graph corpora:
//!
//! * **whitespace edge lists** ([`parse_edge_list`]) — one `u v` pair per line, `#`/`%`
//!   comments, optional SNAP-style `# Nodes: N Edges: M` header, 0- or 1-indexed (detected
//!   automatically by default);
//! * **DIMACS `.col`** ([`parse_dimacs_col`]) — the coloring-benchmark format: `c` comments,
//!   one `p edge N M` problem line, `e u v` edge lines, always 1-indexed;
//! * **METIS** ([`parse_metis`]) — header `N M [fmt]`, then line `i` lists the neighbors of
//!   vertex `i` (1-indexed, every edge appearing in both endpoint lines), `%` comments.
//!
//! Every parser reads its input line by line and feeds the surviving edges straight into
//! [`GraphBuilder`] — no intermediate adjacency structure is materialized, so peak memory is
//! one edge list (exactly what the CSR build itself needs).  Malformed input never panics:
//! all failures surface as [`GraphError::Parse`] with a 1-based line number, and endpoint
//! problems reuse the existing typed errors.  Policy knobs ([`ParseOptions`]) decide whether
//! self-loops and duplicate edges found in the wild are dropped (the default — published
//! datasets are full of them) or rejected.
//!
//! Each parser has a matching writer ([`write_edge_list`], [`write_dimacs_col`],
//! [`write_metis`]); `parse(write(g))` reproduces `g` bit-identically up to vertex
//! identifiers (the formats carry structure, not identifiers, so parsed graphs always get
//! the default `1..=n` assignment).
//!
//! ```
//! use arbcolor_graph::io::{parse_edge_list, write_edge_list, ParseOptions};
//! use arbcolor_graph::Graph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
//! let mut buf = Vec::new();
//! write_edge_list(&g, &mut buf)?;
//! let back = parse_edge_list(buf.as_slice(), &ParseOptions::default())?;
//! assert_eq!(back, g);
//! # Ok(())
//! # }
//! ```

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, Vertex};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// The on-disk formats the ingestion layer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// Whitespace-separated edge list (`.edges`, `.txt`, `.el`).
    EdgeList,
    /// DIMACS coloring format (`.col`).
    DimacsCol,
    /// METIS adjacency format (`.metis`, `.graph`).
    Metis,
}

impl GraphFormat {
    /// Guesses the format from a file extension (`.col` → DIMACS, `.metis`/`.graph` →
    /// METIS, `.edges`/`.txt`/`.el` → edge list).
    pub fn from_path(path: &Path) -> Option<GraphFormat> {
        match path.extension()?.to_str()? {
            "col" => Some(GraphFormat::DimacsCol),
            "metis" | "graph" => Some(GraphFormat::Metis),
            "edges" | "txt" | "el" => Some(GraphFormat::EdgeList),
            _ => None,
        }
    }

    /// A short lowercase name for error messages and experiment rows.
    pub fn name(&self) -> &'static str {
        match self {
            GraphFormat::EdgeList => "edge-list",
            GraphFormat::DimacsCol => "dimacs-col",
            GraphFormat::Metis => "metis",
        }
    }
}

/// How edge-list endpoint numbers map to vertex indices.
///
/// DIMACS and METIS are 1-indexed by definition; this knob applies to bare edge lists only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Indexing {
    /// Infer: any endpoint `0` means the file is 0-indexed, otherwise 1-indexed is assumed
    /// (the convention of every published 1-indexed corpus).
    #[default]
    Auto,
    /// Endpoints are vertex indices as-is.
    ZeroBased,
    /// Endpoints are `index + 1`; an endpoint `0` is a typed error.
    OneBased,
}

/// What to do with a self-loop `(v, v)` found in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopPolicy {
    /// Drop it silently (simple graphs have none, but published datasets do).
    #[default]
    Skip,
    /// Fail with [`GraphError::Parse`] naming the line.
    Reject,
}

/// What to do with a duplicate of an edge already read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Merge duplicates (the CSR builder de-duplicates anyway).
    #[default]
    Merge,
    /// Fail with [`GraphError::Parse`] naming the line of the second occurrence.
    Reject,
}

/// Policy knobs shared by all three parsers.
///
/// The default is lenient (auto-detected indexing, self-loops dropped, duplicates merged) —
/// the right posture for ingesting published datasets.  [`ParseOptions::strict`] rejects
/// everything irregular, which the parser test-suite uses to pin the typed error paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseOptions {
    /// Endpoint indexing convention (edge lists only).
    pub indexing: Indexing,
    /// Self-loop handling.
    pub self_loops: LoopPolicy,
    /// Duplicate-edge handling.
    pub duplicates: DuplicatePolicy,
}

impl ParseOptions {
    /// Rejects self-loops and duplicate edges instead of dropping them.
    pub fn strict() -> Self {
        ParseOptions {
            indexing: Indexing::Auto,
            self_loops: LoopPolicy::Reject,
            duplicates: DuplicatePolicy::Reject,
        }
    }

    /// Same options with a fixed indexing convention.
    #[must_use]
    pub fn with_indexing(mut self, indexing: Indexing) -> Self {
        self.indexing = indexing;
        self
    }
}

fn perr(line: usize, reason: impl Into<String>) -> GraphError {
    GraphError::Parse { line, reason: reason.into() }
}

/// Raw (pre-indexing-shift) edges plus the line each came from, accumulated by the
/// streaming scan of every parser before the single shift into [`GraphBuilder`].
#[derive(Debug, Default)]
struct EdgeAccumulator {
    edges: Vec<(u64, u64, usize)>,
    /// Normalized `(min, max)` pairs already seen; allocated only under
    /// [`DuplicatePolicy::Reject`] (shift-invariant, so Auto indexing can stream).
    seen: Option<HashSet<(u64, u64)>>,
    max_endpoint: u64,
    /// First line containing a 0 endpoint — on kept edges *or* dropped self-loops: even a
    /// skipped `0 0` proves a file is not 1-indexed.
    zero_line: Option<usize>,
    /// Whether any endpoint was seen at all (kept edges *and* dropped self-loops).
    saw_endpoint: bool,
}

impl EdgeAccumulator {
    fn new(duplicates: DuplicatePolicy) -> Self {
        EdgeAccumulator {
            seen: match duplicates {
                DuplicatePolicy::Merge => None,
                DuplicatePolicy::Reject => Some(HashSet::new()),
            },
            ..EdgeAccumulator::default()
        }
    }

    /// Records one raw endpoint pair, applying the self-loop and duplicate policies.
    fn push(&mut self, u: u64, v: u64, line: usize, loops: LoopPolicy) -> Result<(), GraphError> {
        // Even an edge that gets dropped (skipped self-loop) is evidence about the file:
        // its endpoints exist and witness the indexing convention, so the bookkeeping must
        // happen before any policy early-out.
        self.max_endpoint = self.max_endpoint.max(u.max(v));
        if u == 0 || v == 0 {
            self.zero_line.get_or_insert(line);
        }
        self.saw_endpoint = true;
        if u == v {
            return match loops {
                LoopPolicy::Skip => Ok(()),
                LoopPolicy::Reject => Err(perr(line, format!("self-loop at vertex {u}"))),
            };
        }
        if let Some(seen) = &mut self.seen {
            if !seen.insert((u.min(v), u.max(v))) {
                return Err(perr(line, format!("duplicate edge ({u}, {v})")));
            }
        }
        self.edges.push((u, v, line));
        Ok(())
    }

    /// Shifts the accumulated endpoints into `0..n` vertex indices and builds the graph.
    ///
    /// `one_based` says how the raw numbers map to indices; `declared_n` is the vertex count
    /// a header announced (if any) — endpoints beyond it are typed errors, and the built
    /// graph keeps isolated trailing vertices the edge set alone could not witness.
    /// Hard cap on the vertex count a parse may imply or declare.  The CSR build allocates
    /// O(n) vectors up front, so an absurd endpoint label (a corrupted file, or sparse ids
    /// far beyond anything this stack can host) must become a typed error *before* the
    /// allocation aborts the process.
    const MAX_VERTICES: usize = 1 << 30;

    fn build(self, one_based: bool, declared_n: Option<usize>) -> Result<Graph, GraphError> {
        if one_based {
            // Checked here (not only per kept edge below) so a 0 endpoint on a *dropped*
            // self-loop still surfaces: the file is provably not 1-indexed either way.
            if let Some(line) = self.zero_line {
                return Err(perr(line, "endpoint 0 in a 1-indexed file"));
            }
        }
        // Checking the raw maximum first also makes the `+ 1` below overflow-safe.
        if self.max_endpoint > Self::MAX_VERTICES as u64 {
            return Err(perr(
                0,
                format!(
                    "endpoint {} exceeds the supported maximum of {} vertices",
                    self.max_endpoint,
                    Self::MAX_VERTICES
                ),
            ));
        }
        let shift = u64::from(one_based);
        let implied_n =
            if self.saw_endpoint { (self.max_endpoint + 1 - shift) as usize } else { 0 };
        let n = declared_n.unwrap_or(implied_n);
        if n > Self::MAX_VERTICES {
            return Err(perr(
                0,
                format!(
                    "declared vertex count {n} exceeds the supported maximum of {}",
                    Self::MAX_VERTICES
                ),
            ));
        }
        let mut builder = GraphBuilder::new(n);
        for (u, v, line) in self.edges {
            // 0 endpoints were already rejected above when one_based, so the shift is safe.
            let (u, v) = ((u - shift) as Vertex, (v - shift) as Vertex);
            if u >= n || v >= n {
                return Err(perr(
                    line,
                    format!("endpoint {} out of range for {n} vertices", u.max(v) + shift as usize),
                ));
            }
            builder.add_edge(u, v).map_err(|e| perr(line, e.to_string()))?;
        }
        Ok(builder.build())
    }
}

/// Splits a data line into whitespace tokens, stripping trailing `#`/`%` comments.
fn data_tokens(line: &str) -> impl Iterator<Item = &str> {
    line.split(['#', '%']).next().unwrap_or("").split_whitespace()
}

fn parse_endpoint(token: &str, line: usize) -> Result<u64, GraphError> {
    token.parse::<u64>().map_err(|_| perr(line, format!("expected a vertex number, got {token:?}")))
}

/// Parses a whitespace edge list: one `u v` pair per line (extra columns, e.g. weights, are
/// ignored), blank lines and `#`/`%` comments skipped.
///
/// A SNAP-style comment `# Nodes: N ...` declares the vertex count, which both pins
/// isolated trailing vertices and turns out-of-range endpoints into typed errors.  Without
/// it, `n` is implied by the largest endpoint.  Indexing follows
/// [`ParseOptions::indexing`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines, out-of-range endpoints, `0` endpoints
/// in 1-indexed mode, and (under [`ParseOptions::strict`]) self-loops or duplicates.
pub fn parse_edge_list<R: BufRead>(reader: R, options: &ParseOptions) -> Result<Graph, GraphError> {
    let mut acc = EdgeAccumulator::new(options.duplicates);
    let mut declared_n: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| perr(lineno, format!("read error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.starts_with(['#', '%']) {
            // SNAP headers look like `# Nodes: 34 Edges: 78`.
            let mut tokens = trimmed.trim_start_matches(['#', '%']).split_whitespace();
            while let Some(token) = tokens.next() {
                if token.eq_ignore_ascii_case("nodes:") {
                    if let Some(n) = tokens.next().and_then(|t| t.parse::<usize>().ok()) {
                        declared_n = Some(n);
                    }
                    break;
                }
            }
            continue;
        }
        let mut tokens = data_tokens(trimmed);
        let Some(first) = tokens.next() else { continue };
        let Some(second) = tokens.next() else {
            return Err(perr(lineno, format!("expected `u v`, got a single token {first:?}")));
        };
        acc.push(
            parse_endpoint(first, lineno)?,
            parse_endpoint(second, lineno)?,
            lineno,
            options.self_loops,
        )?;
    }
    let one_based = match options.indexing {
        Indexing::ZeroBased => false,
        Indexing::OneBased => true,
        // Auto: a 0 endpoint proves 0-indexing; otherwise the 1-indexed convention applies.
        Indexing::Auto => acc.zero_line.is_none() && acc.saw_endpoint,
    };
    acc.build(one_based, declared_n)
}

/// Parses the DIMACS coloring format (`.col`): `c` comment lines, one `p edge N M` problem
/// line, then `e u v` edge lines with 1-indexed endpoints.
///
/// `p col N M` is accepted as a synonym seen in the wild.  The declared edge count `M` is
/// not enforced (published instances routinely list each edge twice); the declared `N` is —
/// endpoints beyond it are typed errors.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for a missing/duplicate/malformed problem line, unknown
/// line types, out-of-range or `0` endpoints, and (under [`ParseOptions::strict`])
/// self-loops or duplicates.
pub fn parse_dimacs_col<R: BufRead>(
    reader: R,
    options: &ParseOptions,
) -> Result<Graph, GraphError> {
    let mut acc = EdgeAccumulator::new(options.duplicates);
    let mut declared_n: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| perr(lineno, format!("read error: {e}")))?;
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            None | Some("c") => continue,
            Some("p") => {
                if declared_n.is_some() {
                    return Err(perr(lineno, "second `p` line (only one is allowed)"));
                }
                match tokens.next() {
                    Some("edge" | "edges" | "col") => {}
                    other => {
                        return Err(perr(
                            lineno,
                            format!("expected `p edge N M`, got problem type {other:?}"),
                        ))
                    }
                }
                let n = tokens
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| perr(lineno, "`p` line is missing a numeric vertex count"))?;
                let _m = tokens
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| perr(lineno, "`p` line is missing a numeric edge count"))?;
                declared_n = Some(n);
            }
            Some("e") => {
                if declared_n.is_none() {
                    return Err(perr(lineno, "`e` line before the `p` problem line"));
                }
                let (Some(u), Some(v)) = (tokens.next(), tokens.next()) else {
                    return Err(perr(lineno, "`e` line needs two endpoints"));
                };
                acc.push(
                    parse_endpoint(u, lineno)?,
                    parse_endpoint(v, lineno)?,
                    lineno,
                    options.self_loops,
                )?;
            }
            Some(other) => {
                return Err(perr(lineno, format!("unknown DIMACS line type {other:?}")));
            }
        }
    }
    let Some(n) = declared_n else {
        return Err(perr(0, "missing `p edge N M` problem line"));
    };
    acc.build(true, Some(n))
}

/// Parses the METIS adjacency format: a header `N M [fmt]`, then `N` data lines where line
/// `i` lists the (1-indexed) neighbors of vertex `i`; `%` comment lines are skipped.
///
/// Only unweighted graphs (`fmt` absent or `0`/`00`/`000`) are supported.  Every edge is
/// expected in both endpoint lines (duplicates merge under the default policy); the header's
/// `M` must match the number of distinct undirected edges actually read — a mismatch is the
/// classic symptom of a malformed or truncated file.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for a malformed header, weighted `fmt` codes, a wrong
/// number of data lines, an edge-count mismatch, out-of-range or `0` endpoints, and (under
/// [`ParseOptions::strict`]) self-loops or duplicates.
pub fn parse_metis<R: BufRead>(reader: R, options: &ParseOptions) -> Result<Graph, GraphError> {
    // Every undirected edge legitimately appears twice in METIS (once per endpoint line),
    // so the format-agnostic duplicate rejection would flag well-formed files.  Strictness
    // here means: no *directed* pair `(v, neighbor)` may repeat.
    let mut acc = EdgeAccumulator::new(DuplicatePolicy::Merge);
    let mut seen_directed: Option<HashSet<(u64, u64)>> = match options.duplicates {
        DuplicatePolicy::Merge => None,
        DuplicatePolicy::Reject => Some(HashSet::new()),
    };
    let mut header: Option<(usize, usize)> = None;
    let mut vertex = 0u64; // 1-indexed vertex of the next data line
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| perr(lineno, format!("read error: {e}")))?;
        if line.trim_start().starts_with('%') {
            continue;
        }
        let tokens: Vec<&str> = data_tokens(&line).collect();
        let Some((n, _m)) = header else {
            // First non-comment line is the header: `N M [fmt [ncon]]`.
            if tokens.is_empty() {
                continue;
            }
            if tokens.len() < 2 || tokens.len() > 4 {
                return Err(perr(
                    lineno,
                    format!("METIS header needs `N M [fmt]`, got {tokens:?}"),
                ));
            }
            let n = tokens[0].parse::<usize>().map_err(|_| {
                perr(lineno, format!("METIS vertex count {:?} is not a number", tokens[0]))
            })?;
            let m = tokens[1].parse::<usize>().map_err(|_| {
                perr(lineno, format!("METIS edge count {:?} is not a number", tokens[1]))
            })?;
            if let Some(fmt) = tokens.get(2) {
                if fmt.chars().any(|c| c != '0') {
                    return Err(perr(
                        lineno,
                        format!("METIS fmt {fmt:?} requests weights, which are not supported"),
                    ));
                }
            }
            header = Some((n, m));
            continue;
        };
        vertex += 1;
        if vertex as usize > n {
            return Err(perr(lineno, format!("more than the declared {n} vertex lines")));
        }
        for token in tokens {
            let neighbor = parse_endpoint(token, lineno)?;
            if let Some(seen) = &mut seen_directed {
                if neighbor != vertex && !seen.insert((vertex, neighbor)) {
                    return Err(perr(
                        lineno,
                        format!("duplicate neighbor {neighbor} in the list of vertex {vertex}"),
                    ));
                }
            }
            acc.push(vertex, neighbor, lineno, options.self_loops)?;
        }
    }
    let Some((n, m)) = header else {
        return Err(perr(0, "missing METIS header line"));
    };
    if (vertex as usize) < n {
        return Err(perr(0, format!("file ends after {vertex} of {n} declared vertex lines")));
    }
    let graph = acc.build(true, Some(n))?;
    if graph.m() != m {
        return Err(perr(
            1,
            format!("header declares {m} edges but the file contains {} distinct edges", graph.m()),
        ));
    }
    Ok(graph)
}

/// Reads a graph from `path`, picking the parser by file extension (see
/// [`GraphFormat::from_path`]) and using default (lenient) options.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for unknown extensions, unreadable files, and any parser
/// failure.
pub fn read_graph(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    let path = path.as_ref();
    let format = GraphFormat::from_path(path)
        .ok_or_else(|| perr(0, format!("cannot infer a graph format from path {path:?}")))?;
    read_graph_as(path, format, &ParseOptions::default())
}

/// Reads a graph from `path` with an explicit format and options.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for unreadable files and any parser failure.
pub fn read_graph_as(
    path: impl AsRef<Path>,
    format: GraphFormat,
    options: &ParseOptions,
) -> Result<Graph, GraphError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| perr(0, format!("cannot open {}: {e}", path.display())))?;
    let reader = BufReader::new(file);
    match format {
        GraphFormat::EdgeList => parse_edge_list(reader, options),
        GraphFormat::DimacsCol => parse_dimacs_col(reader, options),
        GraphFormat::Metis => parse_metis(reader, options),
    }
}

/// Writes `graph` as a 1-indexed whitespace edge list with a SNAP-style header comment, the
/// exact shape [`parse_edge_list`] round-trips (including isolated trailing vertices).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_edge_list<W: Write>(graph: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# Nodes: {} Edges: {}", graph.n(), graph.m())?;
    for &(u, v) in graph.edges() {
        writeln!(out, "{} {}", u + 1, v + 1)?;
    }
    Ok(())
}

/// Writes `graph` in DIMACS `.col` format (`p edge N M` plus one `e u v` line per edge).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_dimacs_col<W: Write>(graph: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "p edge {} {}", graph.n(), graph.m())?;
    for &(u, v) in graph.edges() {
        writeln!(out, "e {} {}", u + 1, v + 1)?;
    }
    Ok(())
}

/// Writes `graph` in METIS adjacency format (header, then one neighbor line per vertex;
/// isolated vertices produce empty lines, so `n` survives the round-trip).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_metis<W: Write>(graph: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{} {}", graph.n(), graph.m())?;
    for v in graph.vertices() {
        let line =
            graph.neighbors(v).iter().map(|u| (u + 1).to_string()).collect::<Vec<_>>().join(" ");
        writeln!(out, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_auto_detects_zero_indexing() {
        let g = parse_edge_list("0 1\n1 2\n".as_bytes(), &ParseOptions::default()).unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn edge_list_auto_assumes_one_indexing_without_a_zero() {
        let g = parse_edge_list("1 2\n2 3\n".as_bytes(), &ParseOptions::default()).unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn edge_list_honors_snap_header_and_comments() {
        let text = "# Nodes: 5 Edges: 2\n% another comment\n1 2\n4 5  # trailing comment\n";
        let g = parse_edge_list(text.as_bytes(), &ParseOptions::default()).unwrap();
        assert_eq!((g.n(), g.m()), (5, 2));
        assert!(g.has_edge(3, 4));
    }

    #[test]
    fn dimacs_parses_problem_and_edge_lines() {
        let text = "c a comment\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n";
        let g = parse_dimacs_col(text.as_bytes(), &ParseOptions::default()).unwrap();
        assert_eq!((g.n(), g.m()), (4, 3));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn metis_parses_adjacency_lines() {
        // Triangle plus a pendant: 4 vertices, 4 edges.
        let text = "% comment\n4 4\n2 3\n1 3\n1 2 4\n3\n";
        let g = parse_metis(text.as_bytes(), &ParseOptions::default()).unwrap();
        assert_eq!((g.n(), g.m()), (4, 4));
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
    }

    #[test]
    fn lenient_options_drop_loops_and_merge_duplicates() {
        let g = parse_edge_list("1 1\n1 2\n2 1\n".as_bytes(), &ParseOptions::default()).unwrap();
        assert_eq!((g.n(), g.m()), (2, 1));
    }

    #[test]
    fn format_is_inferred_from_extensions() {
        assert_eq!(GraphFormat::from_path(Path::new("a/b.col")), Some(GraphFormat::DimacsCol));
        assert_eq!(GraphFormat::from_path(Path::new("x.metis")), Some(GraphFormat::Metis));
        assert_eq!(GraphFormat::from_path(Path::new("x.graph")), Some(GraphFormat::Metis));
        assert_eq!(GraphFormat::from_path(Path::new("x.edges")), Some(GraphFormat::EdgeList));
        assert_eq!(GraphFormat::from_path(Path::new("x.unknown")), None);
        assert_eq!(GraphFormat::from_path(Path::new("noext")), None);
    }

    #[test]
    fn writers_produce_parseable_output() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_dimacs_col(&g, &mut buf).unwrap();
        assert_eq!(parse_dimacs_col(buf.as_slice(), &ParseOptions::default()).unwrap(), g);
        buf.clear();
        write_metis(&g, &mut buf).unwrap();
        assert_eq!(parse_metis(buf.as_slice(), &ParseOptions::default()).unwrap(), g);
        buf.clear();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(parse_edge_list(buf.as_slice(), &ParseOptions::default()).unwrap(), g);
    }
}
