//! Induced subgraphs with mappings back to the parent graph.
//!
//! The recursive procedures of the paper (Procedure Legal-Coloring, Algorithm 2) repeatedly
//! recurse on the subgraphs induced by color classes.  [`InducedSubgraph`] materializes such a
//! subgraph as a standalone [`Graph`] (so all algorithms can run on it unchanged) together with
//! a [`VertexMap`] translating between parent and child vertex indices.  Identifiers are
//! inherited from the parent so the ID space stays `{1, …, n}` of the *original* graph, exactly
//! as in the paper (recursion does not re-assign identifiers).

use crate::graph::{Graph, GraphBuilder, Vertex};

/// Bidirectional mapping between parent-graph vertices and subgraph vertices.
///
/// Memory is O(part size) when the parent vertices are in ascending order (the
/// [`InducedSubgraph::partition`] output always is — child order follows parent order, so
/// `to_parent` itself is the lookup structure and parent→child queries binary-search it);
/// otherwise an offset-based dense window spanning only `[min parent, max parent]` is kept.
#[derive(Debug, Clone)]
pub struct VertexMap {
    /// `to_parent[child_vertex] = parent_vertex`.
    to_parent: Vec<Vertex>,
    /// How parent→child queries are answered (derived from `to_parent`).
    lookup: ChildLookup,
}

/// Parent→child lookup strategy of a [`VertexMap`].
#[derive(Debug, Clone)]
enum ChildLookup {
    /// `to_parent` is strictly ascending: `to_child(v)` is a binary search over it, and the
    /// map owns no memory beyond `to_parent` itself.
    Sorted,
    /// Arbitrary child order: dense table over the parent-vertex window starting at
    /// `offset`, so memory is O(max − min + 1) rather than O(parent n).
    Dense {
        /// Smallest parent vertex of the part (the window start).
        offset: Vertex,
        /// `table[v - offset] = Some(child)` for included parent vertices `v`.
        table: Vec<Option<Vertex>>,
    },
}

/// The mapping is fully determined by `to_parent`; the lookup strategy is an implementation
/// detail, so equality ignores it.
impl PartialEq for VertexMap {
    fn eq(&self, other: &Self) -> bool {
        self.to_parent == other.to_parent
    }
}

impl Eq for VertexMap {}

impl VertexMap {
    /// Builds the map from parent vertices listed in child-index order (duplicates must have
    /// been removed by the caller).  Picks the zero-overhead sorted representation whenever
    /// the input is ascending.
    fn from_ordered(to_parent: Vec<Vertex>) -> Self {
        let sorted = to_parent.windows(2).all(|w| w[0] < w[1]);
        let lookup = if sorted {
            ChildLookup::Sorted
        } else {
            let offset = to_parent.iter().copied().min().unwrap_or(0);
            let span = to_parent.iter().copied().max().map_or(0, |max| max - offset + 1);
            let mut table = vec![None; span];
            for (child, &v) in to_parent.iter().enumerate() {
                table[v - offset] = Some(child);
            }
            ChildLookup::Dense { offset, table }
        };
        VertexMap { to_parent, lookup }
    }
    /// The parent vertex corresponding to subgraph vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the subgraph.
    pub fn to_parent(&self, v: Vertex) -> Vertex {
        self.to_parent[v]
    }

    /// The subgraph vertex corresponding to parent vertex `v`, if it is included.
    ///
    /// O(log part size) in the sorted representation, O(1) in the dense one.
    pub fn to_child(&self, v: Vertex) -> Option<Vertex> {
        match &self.lookup {
            ChildLookup::Sorted => self.to_parent.binary_search(&v).ok(),
            ChildLookup::Dense { offset, table } => {
                v.checked_sub(*offset).and_then(|i| table.get(i)).copied().flatten()
            }
        }
    }

    /// Number of vertices in the subgraph.
    pub fn len(&self) -> usize {
        self.to_parent.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.to_parent.is_empty()
    }

    /// The parent vertices of the subgraph, in child-index order.
    pub fn parent_vertices(&self) -> &[Vertex] {
        &self.to_parent
    }

    /// Lifts a per-child-vertex vector into a per-parent-vertex assignment, writing
    /// `target[parent_of(v)] = values[v]` for every subgraph vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the subgraph size or `target.len()` from the
    /// parent size implied by the map.
    pub fn scatter<T: Clone>(&self, values: &[T], target: &mut [T]) {
        assert_eq!(values.len(), self.to_parent.len(), "values must be per-child-vertex");
        for (child, value) in values.iter().enumerate() {
            target[self.to_parent[child]] = value.clone();
        }
    }
}

/// An induced subgraph: a standalone [`Graph`] plus the [`VertexMap`] back to its parent.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The materialized subgraph.
    pub graph: Graph,
    /// Mapping between subgraph vertices and parent vertices.
    pub map: VertexMap,
}

impl InducedSubgraph {
    /// Builds the subgraph of `parent` induced by `vertices`.
    ///
    /// Duplicate vertices in the input are ignored; the child vertices are numbered in the
    /// order of first appearance.  Identifiers are copied from the parent.
    ///
    /// # Panics
    ///
    /// Panics if any vertex is out of range for `parent`.
    pub fn new(parent: &Graph, vertices: &[Vertex]) -> Self {
        let mut to_child: Vec<Option<Vertex>> = vec![None; parent.n()];
        let mut to_parent: Vec<Vertex> = Vec::with_capacity(vertices.len());
        for &v in vertices {
            assert!(v < parent.n(), "vertex {v} out of range for parent graph");
            if to_child[v].is_none() {
                to_child[v] = Some(to_parent.len());
                to_parent.push(v);
            }
        }

        let mut builder = GraphBuilder::new(to_parent.len());
        for (child_u, &parent_u) in to_parent.iter().enumerate() {
            for &parent_v in parent.neighbors(parent_u) {
                if let Some(child_v) = to_child[parent_v] {
                    if child_u < child_v {
                        builder
                            .add_edge(child_u, child_v)
                            .expect("endpoints are valid by construction");
                    }
                }
            }
        }
        let mut graph = builder.build();
        // Inherit identifiers from the parent graph.
        let ids: Vec<u64> = to_parent.iter().map(|&p| parent.id(p)).collect();
        graph = graph_with_ids(graph, ids);

        // `to_child` was construction scratch; the returned map re-derives a compact lookup.
        InducedSubgraph { graph, map: VertexMap::from_ordered(to_parent) }
    }

    /// Partitions `parent` into the subgraphs induced by each part of `partition`.
    ///
    /// `partition[v]` is the part index of parent vertex `v`; part indices must be `< parts`.
    /// Returns one [`InducedSubgraph`] per part (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if `partition.len() != parent.n()` or a part index is out of range.
    pub fn partition(parent: &Graph, partition: &[usize], parts: usize) -> Vec<InducedSubgraph> {
        Self::partition_with(parent, partition, parts, &mut PartitionScratch::default())
    }

    /// [`InducedSubgraph::partition`] with caller-owned scratch buffers.
    ///
    /// Unlike calling [`InducedSubgraph::new`] once per part — which allocates and walks a
    /// fresh parent-sized lookup table for every part — the *construction* here runs over
    /// **one** shared parent-to-child table in `O(n + m)`, and recursive drivers (Procedure
    /// Legal-Coloring refines its decomposition every phase) can reuse `scratch` across
    /// calls so the table and the per-part vertex lists are allocated once.  The returned
    /// [`VertexMap`]s are compact too: each part's vertices are ascending, so the map stores
    /// nothing beyond its `to_parent` list and the *output* is `O(n + m)` overall rather
    /// than `O(parts · n)` for scattered parts.
    ///
    /// # Panics
    ///
    /// Panics if `partition.len() != parent.n()` or a part index is out of range.
    pub fn partition_with(
        parent: &Graph,
        partition: &[usize],
        parts: usize,
        scratch: &mut PartitionScratch,
    ) -> Vec<InducedSubgraph> {
        assert_eq!(partition.len(), parent.n(), "partition must have one entry per vertex");
        let PartitionScratch { groups, to_child } = scratch;
        if groups.len() < parts {
            groups.resize_with(parts, Vec::new);
        }
        for group in groups.iter_mut() {
            group.clear();
        }
        for (v, &part) in partition.iter().enumerate() {
            assert!(part < parts, "part index {part} out of range (parts = {parts})");
            groups[part].push(v);
        }
        // The parts are disjoint, so one shared table maps every parent vertex to its child
        // index within its own part.
        to_child.clear();
        to_child.resize(parent.n(), None);
        for group in groups.iter() {
            for (child, &v) in group.iter().enumerate() {
                to_child[v] = Some(child);
            }
        }

        groups[..parts]
            .iter()
            .map(|group| {
                let mut builder = GraphBuilder::new(group.len());
                for (child_u, &parent_u) in group.iter().enumerate() {
                    let part = partition[parent_u];
                    for &parent_v in parent.neighbors(parent_u) {
                        if partition[parent_v] == part {
                            let child_v = to_child[parent_v].expect("vertex of the same part");
                            if child_u < child_v {
                                builder
                                    .add_edge(child_u, child_v)
                                    .expect("endpoints are valid by construction");
                            }
                        }
                    }
                }
                let ids: Vec<u64> = group.iter().map(|&p| parent.id(p)).collect();
                let graph = builder.build().with_ids_internal(ids);
                // Groups are collected in ascending vertex order, so the map always lands in
                // the sorted representation: O(part size) output, no per-part table at all.
                InducedSubgraph { graph, map: VertexMap::from_ordered(group.clone()) }
            })
            .collect()
    }
}

/// Reusable buffers for [`InducedSubgraph::partition_with`]: the per-part vertex lists and
/// the shared parent-to-child index table survive across calls, so repeated decompositions
/// of the same parent graph stop churning the allocator.
#[derive(Debug, Default)]
pub struct PartitionScratch {
    /// Recycled per-part vertex lists.
    groups: Vec<Vec<Vertex>>,
    /// Shared parent-to-child index table (valid for the duration of one call).
    to_child: Vec<Option<Vertex>>,
}

/// Replaces the identifiers of `graph` (used to inherit parent IDs).
fn graph_with_ids(graph: Graph, ids: Vec<u64>) -> Graph {
    // Serialize-free identifier override: rebuild through serde-compatible clone.
    // `Graph` keeps its fields private, so we go through a small helper on the parent type.
    graph.with_ids_internal(ids)
}

impl Graph {
    /// Crate-internal helper replacing the identifier vector (used by induced subgraphs to
    /// inherit parent identifiers).
    pub(crate) fn with_ids_internal(mut self, ids: Vec<u64>) -> Graph {
        assert_eq!(ids.len(), self.n(), "one identifier per vertex");
        self.set_ids(ids);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[0, 1, 3]);
        assert_eq!(sub.graph.n(), 3);
        // Only edge (0,1) survives; (1,2),(2,3),(3,4) all touch excluded vertices.
        assert_eq!(sub.graph.m(), 1);
        let u = sub.map.to_child(0).unwrap();
        let v = sub.map.to_child(1).unwrap();
        assert!(sub.graph.has_edge(u, v));
        assert_eq!(sub.map.to_child(2), None);
    }

    #[test]
    fn identifiers_are_inherited() {
        let g = path5().with_shuffled_ids(3);
        let sub = InducedSubgraph::new(&g, &[4, 2]);
        assert_eq!(sub.graph.id(0), g.id(4));
        assert_eq!(sub.graph.id(1), g.id(2));
    }

    #[test]
    fn duplicates_are_ignored() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[1, 1, 2, 2]);
        assert_eq!(sub.graph.n(), 2);
        assert_eq!(sub.graph.m(), 1);
    }

    #[test]
    fn partition_covers_all_vertices() {
        let g = path5();
        let parts = InducedSubgraph::partition(&g, &[0, 1, 0, 1, 0], 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].graph.n(), 3);
        assert_eq!(parts[1].graph.n(), 2);
        let total_edges: usize = parts.iter().map(|p| p.graph.m()).sum();
        // Path 0-1-2-3-4 split alternately has 0 internal edges in each part.
        assert_eq!(total_edges, 0);
    }

    #[test]
    fn scatter_round_trips() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[3, 0]);
        let values = vec![10u64, 20u64];
        let mut target = vec![0u64; g.n()];
        sub.map.scatter(&values, &mut target);
        assert_eq!(target, vec![20, 0, 0, 10, 0]);
    }

    #[test]
    fn partition_with_scratch_matches_per_part_construction() {
        let g = crate::generators::gnp(60, 0.1, 5).unwrap().with_shuffled_ids(6);
        let partition: Vec<usize> = (0..g.n()).map(|v| (v * 7 + 3) % 4).collect();
        let mut scratch = PartitionScratch::default();
        // Reuse the same scratch across repeated partitions (the Legal-Coloring pattern).
        for parts_round in 0..3 {
            let parts = 4 + parts_round; // extra empty parts must come out empty
            let fast = InducedSubgraph::partition_with(&g, &partition, parts, &mut scratch);
            assert_eq!(fast.len(), parts);
            for (part, sub) in fast.iter().enumerate() {
                let group: Vec<Vertex> = (0..g.n()).filter(|&v| partition[v] == part).collect();
                let slow = InducedSubgraph::new(&g, &group);
                assert_eq!(sub.graph, slow.graph);
                assert_eq!(sub.map.parent_vertices(), slow.map.parent_vertices());
                for v in 0..g.n() {
                    assert_eq!(sub.map.to_child(v), slow.map.to_child(v));
                }
            }
        }
    }

    #[test]
    fn compact_lookup_agrees_between_sorted_and_dense_representations() {
        let g = crate::generators::gnp(40, 0.15, 3).unwrap();
        // Unsorted input → dense window; sorted input → binary search.  Both must answer
        // every to_child query identically.
        let scattered: Vec<Vertex> = vec![31, 7, 19, 2, 25];
        let mut ascending = scattered.clone();
        ascending.sort_unstable();
        let dense = InducedSubgraph::new(&g, &scattered);
        let sorted = InducedSubgraph::new(&g, &ascending);
        for v in 0..g.n() + 5 {
            assert_eq!(dense.map.to_child(v).is_some(), sorted.map.to_child(v).is_some(), "{v}");
            if let Some(child) = dense.map.to_child(v) {
                assert_eq!(dense.map.to_parent(child), v);
                assert_eq!(sorted.map.to_parent(sorted.map.to_child(v).unwrap()), v);
            }
        }
        // The dense window starts at the smallest parent vertex, not at 0.
        assert_eq!(dense.map.to_child(0), None);
        assert_eq!(dense.map.to_child(2), Some(3));
    }

    #[test]
    fn vertex_map_accessors() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[2, 4]);
        assert_eq!(sub.map.len(), 2);
        assert!(!sub.map.is_empty());
        assert_eq!(sub.map.parent_vertices(), &[2, 4]);
        assert_eq!(sub.map.to_parent(1), 4);
    }
}
