//! Degeneracy orderings and arboricity estimates.
//!
//! The *degeneracy* `d` of a graph is the smallest value such that every subgraph has a vertex
//! of degree at most `d`.  It sandwiches the arboricity `a`: `a ≤ d ≤ 2a − 1`.  The
//! Nash-Williams theorem states `a = max_H ⌈m_H / (n_H − 1)⌉` over subgraphs `H` with at least
//! two vertices, so `⌈m/(n−1)⌉` of any subgraph is a lower bound.  These cheap estimates are
//! what the experiment harness reports alongside the generator's design arboricity.

use crate::graph::{Graph, Vertex};

/// The result of a degeneracy (core) decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegeneracyOrdering {
    /// The degeneracy of the graph.
    pub degeneracy: usize,
    /// Vertices in removal order (each vertex had degree ≤ `degeneracy` among later vertices
    /// when removed).
    pub order: Vec<Vertex>,
    /// `core_number[v]` is the largest `k` such that `v` belongs to the `k`-core.
    pub core_numbers: Vec<usize>,
    /// `rank[v]` is the position of `v` in `order`.
    pub rank: Vec<usize>,
}

/// Computes a degeneracy ordering with the standard bucket-queue algorithm in `O(n + m)`.
pub fn degeneracy_ordering(graph: &Graph) -> DegeneracyOrdering {
    let n = graph.n();
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Buckets of vertices by current degree.
    let mut buckets: Vec<Vec<Vertex>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }

    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut core_numbers = vec![0usize; n];
    let mut degeneracy = 0usize;
    let mut current = 0usize;

    for _ in 0..n {
        // Find the smallest non-empty bucket at or below/above `current`.
        current = current.saturating_sub(1);
        loop {
            while current <= max_deg && buckets[current].is_empty() {
                current += 1;
            }
            if current > max_deg {
                break;
            }
            // The bucket may contain stale entries (vertices whose degree has decreased or
            // that were already removed); validate lazily.
            let v = buckets[current].pop().expect("bucket checked non-empty");
            if removed[v] || degree[v] != current {
                continue;
            }
            removed[v] = true;
            degeneracy = degeneracy.max(current);
            core_numbers[v] = degeneracy;
            order.push(v);
            for &u in graph.neighbors(v) {
                if !removed[u] {
                    degree[u] -= 1;
                    buckets[degree[u]].push(u);
                    if degree[u] < current {
                        current = degree[u];
                    }
                }
            }
            break;
        }
    }

    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v] = i;
    }
    DegeneracyOrdering { degeneracy, order, core_numbers, rank }
}

/// The degeneracy of `graph` (0 for edgeless graphs).
pub fn degeneracy(graph: &Graph) -> usize {
    degeneracy_ordering(graph).degeneracy
}

/// A lower bound on the arboricity: the Nash-Williams density `⌈m / (n − 1)⌉` of the whole
/// graph (taken over each connected component would be tighter; this is the cheap global
/// bound, clamped to 0 for graphs with fewer than 2 vertices or no edges).
pub fn arboricity_lower_bound(graph: &Graph) -> usize {
    if graph.n() < 2 || graph.m() == 0 {
        return 0;
    }
    let m = graph.m();
    let n = graph.n();
    m.div_ceil(n - 1)
}

/// An upper bound on the arboricity: the degeneracy (every `d`-degenerate graph decomposes
/// into `d` forests by orienting edges along a degeneracy ordering and splitting out-edges).
pub fn arboricity_upper_bound(graph: &Graph) -> usize {
    degeneracy(graph)
}

/// A convenience summary of the arboricity estimates of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArboricityEstimate {
    /// Nash-Williams density lower bound.
    pub lower: usize,
    /// Degeneracy upper bound.
    pub upper: usize,
}

/// Computes both arboricity bounds at once.
pub fn arboricity_estimate(graph: &Graph) -> ArboricityEstimate {
    ArboricityEstimate {
        lower: arboricity_lower_bound(graph),
        upper: arboricity_upper_bound(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        assert_eq!(degeneracy(&g), 1);
        assert_eq!(arboricity_lower_bound(&g), 1);
        assert_eq!(arboricity_upper_bound(&g), 1);
    }

    #[test]
    fn degeneracy_of_complete_graph() {
        let g = generators::complete(6).unwrap();
        assert_eq!(degeneracy(&g), 5);
        // Nash-Williams: ceil(15 / 5) = 3 — exactly the arboricity of K6.
        assert_eq!(arboricity_lower_bound(&g), 3);
    }

    #[test]
    fn degeneracy_of_cycle_is_two() {
        let g = generators::cycle(8).unwrap();
        assert_eq!(degeneracy(&g), 2);
        let est = arboricity_estimate(&g);
        assert_eq!(est.lower, 2); // ceil(8/7) = 2
        assert_eq!(est.upper, 2);
    }

    #[test]
    fn ordering_is_a_permutation_and_rank_consistent() {
        let g = generators::grid(4, 5).unwrap();
        let ord = degeneracy_ordering(&g);
        let mut sorted = ord.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.n()).collect::<Vec<_>>());
        for (i, &v) in ord.order.iter().enumerate() {
            assert_eq!(ord.rank[v], i);
        }
        assert_eq!(ord.degeneracy, 2);
    }

    #[test]
    fn ordering_property_every_vertex_has_few_later_neighbors() {
        let g = generators::gnp(120, 0.08, 99).unwrap();
        let ord = degeneracy_ordering(&g);
        for (i, &v) in ord.order.iter().enumerate() {
            let later_neighbors = g.neighbors(v).iter().filter(|&&u| ord.rank[u] > i).count();
            assert!(
                later_neighbors <= ord.degeneracy,
                "vertex {v} has {later_neighbors} later neighbors but degeneracy is {}",
                ord.degeneracy
            );
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        assert_eq!(degeneracy(&Graph::empty(0)), 0);
        assert_eq!(degeneracy(&Graph::empty(10)), 0);
        assert_eq!(arboricity_lower_bound(&Graph::empty(10)), 0);
        assert_eq!(arboricity_lower_bound(&Graph::empty(1)), 0);
    }

    #[test]
    fn union_of_forests_has_degeneracy_at_most_2k() {
        for k in 1..=4 {
            let g = generators::union_of_random_forests(150, k, 11).unwrap();
            let d = degeneracy(&g);
            assert!(d <= 2 * k, "k = {k}, degeneracy = {d}");
            assert!(arboricity_lower_bound(&g) <= k);
        }
    }
}
