//! Complete and partial edge orientations.
//!
//! Orientations are the central combinatorial objects of Section 3 of the paper.  For an
//! orientation `σ` of (a subset of) the edges of a graph:
//!
//! * the **out-degree** of a vertex is the number of incident edges oriented away from it
//!   (its *parents* in the paper's terminology are the heads of those edges);
//! * the **deficit** of a vertex is the number of incident edges left unoriented by `σ`;
//! * the **length** `len(σ)` is the number of edges on the longest path all of whose edges are
//!   oriented consistently.
//!
//! Lemma 2.5 of the paper: if a graph admits an acyclic complete orientation with out-degree
//! `k` then its arboricity is at most `k`.  [`Orientation::complete_acyclically`] implements
//! Lemma 3.1 (any acyclic partial orientation extends to an acyclic complete one).

use crate::error::GraphError;
use crate::graph::{EdgeIdx, Graph, Vertex};
use serde::{Deserialize, Serialize};

/// Direction of a single edge under an orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeDirection {
    /// The edge is not oriented (contributes to the deficit of both endpoints).
    Unoriented,
    /// Oriented from the smaller endpoint towards the larger endpoint of the canonical pair.
    TowardSecond,
    /// Oriented from the larger endpoint towards the smaller endpoint of the canonical pair.
    TowardFirst,
}

/// A (partial) orientation of the edges of a specific [`Graph`].
///
/// The orientation stores one [`EdgeDirection`] per canonical edge index of the graph it was
/// created for; it does not hold a reference to the graph, so the same graph value must be
/// passed to the query methods.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Orientation {
    directions: Vec<EdgeDirection>,
}

impl Orientation {
    /// An orientation of `graph` with every edge unoriented.
    pub fn unoriented(graph: &Graph) -> Self {
        Orientation { directions: vec![EdgeDirection::Unoriented; graph.m()] }
    }

    /// Number of edges covered by this orientation (equals `graph.m()`).
    pub fn len_edges(&self) -> usize {
        self.directions.len()
    }

    /// Orients the edge `{u, v}` of `graph` towards `v` (so `v` becomes a *parent* of `u`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingEdge`] if `{u, v}` is not an edge of `graph`.
    pub fn orient_towards(
        &mut self,
        graph: &Graph,
        u: Vertex,
        v: Vertex,
    ) -> Result<(), GraphError> {
        let e = graph.edge_between(u, v).ok_or(GraphError::MissingEdge { u, v })?;
        let (a, _b) = graph.endpoints(e);
        self.directions[e] =
            if v == a { EdgeDirection::TowardFirst } else { EdgeDirection::TowardSecond };
        Ok(())
    }

    /// Removes the orientation of the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingEdge`] if `{u, v}` is not an edge of `graph`.
    pub fn unorient(&mut self, graph: &Graph, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        let e = graph.edge_between(u, v).ok_or(GraphError::MissingEdge { u, v })?;
        self.directions[e] = EdgeDirection::Unoriented;
        Ok(())
    }

    /// The direction stored for canonical edge `e`.
    pub fn direction(&self, e: EdgeIdx) -> EdgeDirection {
        self.directions[e]
    }

    /// Whether edge `e` is oriented.
    pub fn is_oriented(&self, e: EdgeIdx) -> bool {
        self.directions[e] != EdgeDirection::Unoriented
    }

    /// The head of edge `e` (the endpoint the edge points to), if oriented.
    pub fn head(&self, graph: &Graph, e: EdgeIdx) -> Option<Vertex> {
        let (a, b) = graph.endpoints(e);
        match self.directions[e] {
            EdgeDirection::Unoriented => None,
            EdgeDirection::TowardFirst => Some(a),
            EdgeDirection::TowardSecond => Some(b),
        }
    }

    /// The tail of edge `e` (the endpoint the edge points away from), if oriented.
    pub fn tail(&self, graph: &Graph, e: EdgeIdx) -> Option<Vertex> {
        let (a, b) = graph.endpoints(e);
        match self.directions[e] {
            EdgeDirection::Unoriented => None,
            EdgeDirection::TowardFirst => Some(b),
            EdgeDirection::TowardSecond => Some(a),
        }
    }

    /// Iterates over the *parents* of `v`: neighbors reached by edges oriented away from `v`.
    ///
    /// Allocation-free variant of [`Orientation::parents`] for hot per-vertex loops.
    pub fn parents_iter<'a>(
        &'a self,
        graph: &'a Graph,
        v: Vertex,
    ) -> impl Iterator<Item = Vertex> + 'a {
        graph
            .neighbors(v)
            .iter()
            .zip(graph.incident_edges(v))
            .filter_map(move |(&u, &e)| (self.head(graph, e) == Some(u)).then_some(u))
    }

    /// Iterates over the *children* of `v`: neighbors whose edges are oriented towards `v`.
    ///
    /// Allocation-free variant of [`Orientation::children`] for hot per-vertex loops.
    pub fn children_iter<'a>(
        &'a self,
        graph: &'a Graph,
        v: Vertex,
    ) -> impl Iterator<Item = Vertex> + 'a {
        graph
            .neighbors(v)
            .iter()
            .zip(graph.incident_edges(v))
            .filter_map(move |(&u, &e)| (self.head(graph, e) == Some(v)).then_some(u))
    }

    /// Iterates over the *ports* of `v`'s parents (positions in `v`'s adjacency list whose
    /// edges are oriented away from `v`) — the form node programs need to match inbox
    /// messages against, without allocating a vertex list first.
    pub fn parent_ports<'a>(
        &'a self,
        graph: &'a Graph,
        v: Vertex,
    ) -> impl Iterator<Item = usize> + 'a {
        graph
            .neighbors(v)
            .iter()
            .zip(graph.incident_edges(v))
            .enumerate()
            .filter_map(move |(port, (&u, &e))| (self.head(graph, e) == Some(u)).then_some(port))
    }

    /// The *parents* of `v`, materialized (see [`Orientation::parents_iter`]).
    pub fn parents(&self, graph: &Graph, v: Vertex) -> Vec<Vertex> {
        self.parents_iter(graph, v).collect()
    }

    /// The *children* of `v`, materialized (see [`Orientation::children_iter`]).
    pub fn children(&self, graph: &Graph, v: Vertex) -> Vec<Vertex> {
        self.children_iter(graph, v).collect()
    }

    /// Out-degree of vertex `v` (number of parents).
    pub fn out_degree(&self, graph: &Graph, v: Vertex) -> usize {
        self.parents_iter(graph, v).count()
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self, graph: &Graph) -> usize {
        graph.vertices().map(|v| self.out_degree(graph, v)).max().unwrap_or(0)
    }

    /// Deficit of vertex `v`: the number of unoriented edges incident to `v`.
    pub fn deficit(&self, graph: &Graph, v: Vertex) -> usize {
        graph.incident_edges(v).iter().filter(|&&e| !self.is_oriented(e)).count()
    }

    /// Maximum deficit over all vertices.
    pub fn max_deficit(&self, graph: &Graph) -> usize {
        graph.vertices().map(|v| self.deficit(graph, v)).max().unwrap_or(0)
    }

    /// Number of unoriented edges.
    pub fn unoriented_count(&self) -> usize {
        self.directions.iter().filter(|&&d| d == EdgeDirection::Unoriented).count()
    }

    /// Whether the oriented part of the orientation is acyclic.
    pub fn is_acyclic(&self, graph: &Graph) -> bool {
        self.topological_order(graph).is_some()
    }

    /// A topological order of the vertices with respect to the oriented edges, if the oriented
    /// part is acyclic.  Edges point from earlier to later vertices in the returned order
    /// (i.e., parents appear *after* their children... more precisely, every oriented edge
    /// `u → v` has `u` before `v`).
    pub fn topological_order(&self, graph: &Graph) -> Option<Vec<Vertex>> {
        let n = graph.n();
        // in_count[v] = number of oriented edges pointing *to* v.
        let mut in_count = vec![0usize; n];
        for e in 0..graph.m() {
            if let Some(h) = self.head(graph, e) {
                in_count[h] += 1;
            }
        }
        let mut queue: Vec<Vertex> = (0..n).filter(|&v| in_count[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut qi = 0;
        while qi < queue.len() {
            let v = queue[qi];
            qi += 1;
            order.push(v);
            for (&u, &e) in graph.neighbors(v).iter().zip(graph.incident_edges(v)) {
                // Edge v -> u (u is a parent of v): consuming v lowers u's in-count? No:
                // we must follow edges *out of* v, i.e. edges whose tail is v and head is u.
                if self.tail(graph, e) == Some(v) && self.head(graph, e) == Some(u) {
                    in_count[u] -= 1;
                    if in_count[u] == 0 {
                        queue.push(u);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// The *length* of each vertex: `len(v)` is the number of edges on the longest directed
    /// path starting at `v` and following oriented edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAcyclic`] if the oriented part contains a directed cycle.
    pub fn vertex_lengths(&self, graph: &Graph) -> Result<Vec<usize>, GraphError> {
        let order = self.topological_order(graph).ok_or(GraphError::NotAcyclic)?;
        let mut len = vec![0usize; graph.n()];
        // Process vertices in reverse topological order so all out-neighbors are finalized.
        for &v in order.iter().rev() {
            let mut best = 0usize;
            for (&u, &e) in graph.neighbors(v).iter().zip(graph.incident_edges(v)) {
                if self.tail(graph, e) == Some(v) {
                    best = best.max(len[u] + 1);
                }
            }
            len[v] = best;
        }
        Ok(len)
    }

    /// The length `len(σ)` of the orientation: the maximum vertex length.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAcyclic`] if the oriented part contains a directed cycle.
    pub fn length(&self, graph: &Graph) -> Result<usize, GraphError> {
        Ok(self.vertex_lengths(graph)?.into_iter().max().unwrap_or(0))
    }

    /// One longest directed path (as a vertex sequence), useful for the Figure 1 experiment.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAcyclic`] if the oriented part contains a directed cycle.
    pub fn longest_path(&self, graph: &Graph) -> Result<Vec<Vertex>, GraphError> {
        let len = self.vertex_lengths(graph)?;
        let Some(start) = graph.vertices().max_by_key(|&v| len[v]) else {
            return Ok(Vec::new());
        };
        let mut path = vec![start];
        let mut current = start;
        while len[current] > 0 {
            let next = graph
                .neighbors(current)
                .iter()
                .zip(graph.incident_edges(current))
                .filter(|&(_, &e)| self.tail(graph, e) == Some(current))
                .map(|(&u, _)| u)
                .max_by_key(|&u| len[u] + 1)
                .expect("len > 0 implies an outgoing edge");
            path.push(next);
            current = next;
        }
        Ok(path)
    }

    /// Implements Lemma 3.1: extends an acyclic partial orientation to a complete acyclic
    /// orientation by orienting every unoriented edge towards the endpoint that appears later
    /// in a topological sort of the oriented part.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAcyclic`] if the oriented part already contains a cycle.
    pub fn complete_acyclically(&self, graph: &Graph) -> Result<Orientation, GraphError> {
        let order = self.topological_order(graph).ok_or(GraphError::NotAcyclic)?;
        let mut position = vec![0usize; graph.n()];
        for (i, &v) in order.iter().enumerate() {
            position[v] = i;
        }
        let mut completed = self.clone();
        for e in 0..graph.m() {
            if !completed.is_oriented(e) {
                let (a, b) = graph.endpoints(e);
                completed.directions[e] = if position[a] < position[b] {
                    EdgeDirection::TowardSecond
                } else {
                    EdgeDirection::TowardFirst
                };
            }
        }
        debug_assert!(completed.is_acyclic(graph));
        Ok(completed)
    }

    /// Builds a complete acyclic orientation from a total order of the vertices: every edge is
    /// oriented from the earlier vertex towards the later vertex of `rank`.
    ///
    /// `rank[v]` must be distinct per vertex for the result to be acyclic.
    pub fn from_ranking(graph: &Graph, rank: &[usize]) -> Orientation {
        assert_eq!(rank.len(), graph.n(), "one rank per vertex");
        let mut o = Orientation::unoriented(graph);
        for e in 0..graph.m() {
            let (a, b) = graph.endpoints(e);
            o.directions[e] = if rank[a] < rank[b] {
                EdgeDirection::TowardSecond
            } else {
                EdgeDirection::TowardFirst
            };
        }
        o
    }

    /// Restricts this orientation to an induced subgraph: edge directions are copied for every
    /// edge whose endpoints are both in the subgraph.
    ///
    /// `map_to_parent[child_v]` gives the parent vertex of child vertex `child_v`.
    pub fn restrict_to(
        &self,
        parent: &Graph,
        child: &Graph,
        map_to_parent: &[Vertex],
    ) -> Orientation {
        let mut o = Orientation::unoriented(child);
        for e in 0..child.m() {
            let (ca, cb) = child.endpoints(e);
            let (pa, pb) = (map_to_parent[ca], map_to_parent[cb]);
            if let Some(pe) = parent.edge_between(pa, pb) {
                if let Some(head) = self.head(parent, pe) {
                    let child_head = if head == pa { ca } else { cb };
                    let (first, _second) = child.endpoints(e);
                    o.directions[e] = if child_head == first {
                        EdgeDirection::TowardFirst
                    } else {
                        EdgeDirection::TowardSecond
                    };
                }
            }
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn orient_and_query() {
        let g = path4();
        let mut o = Orientation::unoriented(&g);
        o.orient_towards(&g, 0, 1).unwrap();
        o.orient_towards(&g, 2, 1).unwrap();
        assert_eq!(o.parents(&g, 0), vec![1]);
        assert_eq!(o.parents(&g, 2), vec![1]);
        assert_eq!(o.children(&g, 1).len(), 2);
        assert_eq!(o.out_degree(&g, 1), 0);
        assert_eq!(o.max_out_degree(&g), 1);
        assert_eq!(o.deficit(&g, 2), 1); // edge (2,3) unoriented
        assert_eq!(o.max_deficit(&g), 1);
        assert_eq!(o.unoriented_count(), 1);
    }

    #[test]
    fn iterator_variants_agree_with_the_materialized_queries() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (1, 3)]).unwrap();
        let o = Orientation::from_ranking(&g, &[2, 0, 3, 1]);
        for v in g.vertices() {
            assert_eq!(o.parents_iter(&g, v).collect::<Vec<_>>(), o.parents(&g, v));
            assert_eq!(o.children_iter(&g, v).collect::<Vec<_>>(), o.children(&g, v));
            assert_eq!(o.parents_iter(&g, v).count(), o.out_degree(&g, v));
            // Ports resolve back to exactly the parent vertices, in adjacency order.
            let via_ports: Vec<_> =
                o.parent_ports(&g, v).map(|port| g.neighbors(v)[port]).collect();
            assert_eq!(via_ports, o.parents(&g, v));
        }
    }

    #[test]
    fn missing_edge_is_an_error() {
        let g = path4();
        let mut o = Orientation::unoriented(&g);
        assert_eq!(o.orient_towards(&g, 0, 3).unwrap_err(), GraphError::MissingEdge { u: 0, v: 3 });
    }

    #[test]
    fn length_of_directed_path() {
        let g = path4();
        let mut o = Orientation::unoriented(&g);
        // 0 -> 1 -> 2 -> 3
        o.orient_towards(&g, 0, 1).unwrap();
        o.orient_towards(&g, 1, 2).unwrap();
        o.orient_towards(&g, 2, 3).unwrap();
        assert!(o.is_acyclic(&g));
        assert_eq!(o.length(&g).unwrap(), 3);
        let lens = o.vertex_lengths(&g).unwrap();
        assert_eq!(lens, vec![3, 2, 1, 0]);
        assert_eq!(o.longest_path(&g).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_is_detected() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut o = Orientation::unoriented(&g);
        o.orient_towards(&g, 0, 1).unwrap();
        o.orient_towards(&g, 1, 2).unwrap();
        o.orient_towards(&g, 2, 0).unwrap();
        assert!(!o.is_acyclic(&g));
        assert_eq!(o.length(&g).unwrap_err(), GraphError::NotAcyclic);
        assert_eq!(o.complete_acyclically(&g).unwrap_err(), GraphError::NotAcyclic);
    }

    #[test]
    fn completion_preserves_existing_directions_and_is_acyclic() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]).unwrap();
        let mut o = Orientation::unoriented(&g);
        o.orient_towards(&g, 0, 1).unwrap();
        o.orient_towards(&g, 3, 1).unwrap();
        let complete = o.complete_acyclically(&g).unwrap();
        assert_eq!(complete.unoriented_count(), 0);
        assert!(complete.is_acyclic(&g));
        // Pre-existing directions are untouched.
        let e01 = g.edge_between(0, 1).unwrap();
        assert_eq!(complete.head(&g, e01), Some(1));
        let e13 = g.edge_between(1, 3).unwrap();
        assert_eq!(complete.head(&g, e13), Some(1));
    }

    #[test]
    fn from_ranking_orients_every_edge_acyclically() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let o = Orientation::from_ranking(&g, &[3, 2, 1, 0]);
        assert_eq!(o.unoriented_count(), 0);
        assert!(o.is_acyclic(&g));
        // Vertex 3 has the smallest rank, so every incident edge points away from... towards
        // higher rank means towards 0-side; check out-degree of vertex 3 is 0 or 2 consistent:
        // rank[3]=0 < others, so edges orient from 3 towards the other endpoint? No: edges go
        // from earlier (smaller rank) towards later (larger rank); 3 has rank 0 so its edges
        // leave 3.
        assert_eq!(o.out_degree(&g, 3), 2);
    }

    #[test]
    fn unorient_restores_deficit() {
        let g = path4();
        let mut o = Orientation::unoriented(&g);
        o.orient_towards(&g, 0, 1).unwrap();
        assert_eq!(o.deficit(&g, 0), 0);
        o.unorient(&g, 0, 1).unwrap();
        assert_eq!(o.deficit(&g, 0), 1);
    }

    #[test]
    fn restrict_to_subgraph_copies_directions() {
        use crate::subgraph::InducedSubgraph;
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let o = Orientation::from_ranking(&g, &[0, 1, 2, 3]);
        let sub = InducedSubgraph::new(&g, &[1, 2, 3]);
        let restricted = o.restrict_to(&g, &sub.graph, sub.map.parent_vertices());
        assert!(restricted.is_acyclic(&sub.graph));
        // Parent edges (1,2) and (2,3) survive; both oriented towards the later vertex.
        assert_eq!(restricted.unoriented_count(), 0);
        assert_eq!(sub.graph.m(), 2);
        let c1 = sub.map.to_child(1).unwrap();
        let c2 = sub.map.to_child(2).unwrap();
        let e = sub.graph.edge_between(c1, c2).unwrap();
        assert_eq!(restricted.head(&sub.graph, e), Some(c2));
    }
}
