//! Coloring containers and independent validators.
//!
//! The algorithms in this project produce three kinds of colorings:
//!
//! * **legal colorings** — no edge is monochromatic;
//! * **`m`-defective colorings** — every vertex has at most `m` neighbors of its own color
//!   (each color class induces a subgraph of maximum degree ≤ `m`);
//! * **`r`-arbdefective colorings** (Definition 2.1 of the paper) — every color class induces
//!   a subgraph of *arboricity* ≤ `r`.
//!
//! Arboricity is expensive to compute exactly, so arbdefect is verified two ways: via a
//! *witness* acyclic orientation of each color class with out-degree ≤ `r` (sufficient by
//! Lemma 2.5), and via the class degeneracy (a necessary condition, since degeneracy ≤ 2a − 1).

use crate::degeneracy;
use crate::error::GraphError;
use crate::graph::{Graph, Vertex};
use crate::orientation::Orientation;
use crate::subgraph::InducedSubgraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The color assigned to a vertex.  Colors are arbitrary `u64` values; algorithms that care
/// about palette size report the number of *distinct* colors.
pub type Color = u64;

/// A total assignment of colors to the vertices of a specific [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    colors: Vec<Color>,
}

impl Coloring {
    /// Creates a coloring from one color per vertex.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ColoringSizeMismatch`] if the vector length differs from the
    /// number of vertices of `graph`.
    pub fn new(graph: &Graph, colors: Vec<Color>) -> Result<Self, GraphError> {
        if colors.len() != graph.n() {
            return Err(GraphError::ColoringSizeMismatch {
                got: colors.len(),
                expected: graph.n(),
            });
        }
        Ok(Coloring { colors })
    }

    /// A coloring assigning every vertex the same color `0`.
    pub fn constant(graph: &Graph) -> Self {
        Coloring { colors: vec![0; graph.n()] }
    }

    /// The trivial legal coloring that colors every vertex by its unique identifier.
    pub fn from_ids(graph: &Graph) -> Self {
        Coloring { colors: graph.ids().to_vec() }
    }

    /// The color of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn color(&self, v: Vertex) -> Color {
        self.colors[v]
    }

    /// All colors, indexed by vertex.
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// Sets the color of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set(&mut self, v: Vertex, c: Color) {
        self.colors[v] = c;
    }

    /// Number of distinct colors used.
    pub fn distinct_colors(&self) -> usize {
        let mut seen: Vec<Color> = self.colors.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// The largest color value used (0 for the empty graph).
    pub fn max_color(&self) -> Color {
        self.colors.iter().copied().max().unwrap_or(0)
    }

    /// Whether no edge of `graph` is monochromatic.
    pub fn is_legal(&self, graph: &Graph) -> bool {
        graph.edges().iter().all(|&(u, v)| self.colors[u] != self.colors[v])
    }

    /// The monochromatic edges of `graph` under this coloring (empty iff legal).
    pub fn conflicts(&self, graph: &Graph) -> Vec<(Vertex, Vertex)> {
        graph.edges().iter().copied().filter(|&(u, v)| self.colors[u] == self.colors[v]).collect()
    }

    /// The defect of vertex `v`: the number of neighbors sharing `v`'s color.
    pub fn vertex_defect(&self, graph: &Graph, v: Vertex) -> usize {
        graph.neighbors(v).iter().filter(|&&u| self.colors[u] == self.colors[v]).count()
    }

    /// The defect of the coloring: the maximum vertex defect.  A coloring is legal iff its
    /// defect is 0.
    pub fn defect(&self, graph: &Graph) -> usize {
        graph.vertices().map(|v| self.vertex_defect(graph, v)).max().unwrap_or(0)
    }

    /// Groups vertices by color.  The returned map is keyed by color value.
    pub fn classes(&self) -> HashMap<Color, Vec<Vertex>> {
        let mut classes: HashMap<Color, Vec<Vertex>> = HashMap::new();
        for (v, &c) in self.colors.iter().enumerate() {
            classes.entry(c).or_default().push(v);
        }
        classes
    }

    /// Materializes the subgraph induced by each color class, keyed by color value.
    pub fn class_subgraphs(&self, graph: &Graph) -> HashMap<Color, InducedSubgraph> {
        self.classes().into_iter().map(|(c, vs)| (c, InducedSubgraph::new(graph, &vs))).collect()
    }

    /// The maximum degeneracy over all color-class subgraphs.
    ///
    /// If the coloring is `r`-arbdefective then every class has arboricity ≤ `r`, hence
    /// degeneracy ≤ `2r − 1`; this is the *necessary-condition* check used by tests that do
    /// not have access to a witness orientation.
    pub fn max_class_degeneracy(&self, graph: &Graph) -> usize {
        self.class_subgraphs(graph)
            .values()
            .map(|sub| degeneracy::degeneracy(&sub.graph))
            .max()
            .unwrap_or(0)
    }

    /// Verifies an arbdefect bound using witness orientations: for each color class the
    /// witness must be a complete acyclic orientation of the class subgraph with out-degree at
    /// most `r` (Lemma 2.5 then gives arboricity ≤ `r`).
    ///
    /// Returns the per-class maximum out-degree actually observed.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NotAcyclic`] if a witness contains a directed cycle.
    /// * [`GraphError::InvalidParameter`] if a witness leaves an edge unoriented, a class is
    ///   missing a witness, or the observed out-degree exceeds `r`.
    pub fn verify_arbdefect_witness(
        &self,
        graph: &Graph,
        witnesses: &HashMap<Color, Orientation>,
        r: usize,
    ) -> Result<usize, GraphError> {
        let mut worst = 0usize;
        for (color, sub) in self.class_subgraphs(graph) {
            if sub.graph.m() == 0 {
                continue;
            }
            let witness = witnesses.get(&color).ok_or_else(|| GraphError::InvalidParameter {
                reason: format!("no witness orientation for color class {color}"),
            })?;
            if witness.unoriented_count() > 0 {
                return Err(GraphError::InvalidParameter {
                    reason: format!("witness for color {color} leaves edges unoriented"),
                });
            }
            if !witness.is_acyclic(&sub.graph) {
                return Err(GraphError::NotAcyclic);
            }
            let out = witness.max_out_degree(&sub.graph);
            if out > r {
                return Err(GraphError::InvalidParameter {
                    reason: format!("witness for color {color} has out-degree {out} > {r}"),
                });
            }
            worst = worst.max(out);
        }
        Ok(worst)
    }

    /// Renumbers the colors to `0..k` (preserving equality classes) and returns the new
    /// coloring together with `k`, the number of distinct colors.
    #[must_use]
    pub fn normalized(&self) -> (Coloring, usize) {
        let mut distinct: Vec<Color> = self.colors.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let index: HashMap<Color, Color> =
            distinct.iter().enumerate().map(|(i, &c)| (c, i as Color)).collect();
        let colors = self.colors.iter().map(|c| index[c]).collect();
        (Coloring { colors }, distinct.len())
    }

    /// Combines a partition coloring and per-class colorings into a single coloring with
    /// disjoint palettes: vertex `v` in class `i` with inner color `ψ_i(v)` receives
    /// `i · palette_size + ψ_i(v)`, mirroring the `ϕ(v) = (i − 1)·γ + ψ_i(v)` construction in
    /// Section 4 of the paper.
    ///
    /// `class_colorings` maps each class color to the coloring of that class subgraph (indexed
    /// by *child* vertices of the corresponding [`InducedSubgraph`]).
    ///
    /// # Panics
    ///
    /// Panics if a class has no entry in `class_colorings` or if an inner color is
    /// ≥ `palette_size`.
    pub fn combine_with_palettes(
        graph: &Graph,
        partition: &Coloring,
        class_colorings: &HashMap<Color, (InducedSubgraph, Coloring)>,
        palette_size: u64,
    ) -> Coloring {
        let mut colors = vec![0 as Color; graph.n()];
        // Assign a dense index to each class color so palettes pack tightly.
        let mut class_ids: Vec<Color> = class_colorings.keys().copied().collect();
        class_ids.sort_unstable();
        for (slot, class_color) in class_ids.iter().enumerate() {
            let (sub, inner) = &class_colorings[class_color];
            for child in 0..sub.graph.n() {
                let inner_color = inner.color(child);
                assert!(
                    inner_color < palette_size,
                    "inner color {inner_color} exceeds palette size {palette_size}"
                );
                colors[sub.map.to_parent(child)] = slot as u64 * palette_size + inner_color;
            }
        }
        let _ = partition;
        Coloring { colors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn square() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn legality_and_conflicts() {
        let g = square();
        let legal = Coloring::new(&g, vec![0, 1, 0, 1]).unwrap();
        assert!(legal.is_legal(&g));
        assert!(legal.conflicts(&g).is_empty());
        assert_eq!(legal.defect(&g), 0);

        let bad = Coloring::new(&g, vec![0, 0, 1, 1]).unwrap();
        assert!(!bad.is_legal(&g));
        assert_eq!(bad.conflicts(&g), vec![(0, 1), (2, 3)]);
        assert_eq!(bad.defect(&g), 1);
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let g = square();
        assert!(matches!(
            Coloring::new(&g, vec![0, 1]),
            Err(GraphError::ColoringSizeMismatch { got: 2, expected: 4 })
        ));
    }

    #[test]
    fn id_coloring_is_legal() {
        let g = square().with_shuffled_ids(9);
        let c = Coloring::from_ids(&g);
        assert!(c.is_legal(&g));
        assert_eq!(c.distinct_colors(), 4);
    }

    #[test]
    fn defect_counts_same_colored_neighbors() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let c = Coloring::new(&g, vec![7, 7, 7, 1]).unwrap();
        assert_eq!(c.vertex_defect(&g, 0), 2);
        assert_eq!(c.vertex_defect(&g, 3), 0);
        assert_eq!(c.defect(&g), 2);
    }

    #[test]
    fn classes_partition_vertices() {
        let g = square();
        let c = Coloring::new(&g, vec![5, 5, 9, 9]).unwrap();
        let classes = c.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[&5], vec![0, 1]);
        assert_eq!(classes[&9], vec![2, 3]);
        let subs = c.class_subgraphs(&g);
        assert_eq!(subs[&5].graph.m(), 1);
    }

    #[test]
    fn normalization_preserves_classes() {
        let g = square();
        let c = Coloring::new(&g, vec![100, 7, 100, 7]).unwrap();
        let (norm, k) = c.normalized();
        assert_eq!(k, 2);
        assert!(norm.max_color() <= 1);
        assert_eq!(norm.color(0), norm.color(2));
        assert_ne!(norm.color(0), norm.color(1));
        assert!(norm.is_legal(&g));
    }

    #[test]
    fn witness_verification_accepts_valid_witness() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        // One single class: the whole square, arboricity 1? No: a 4-cycle has arboricity 1?
        // A cycle has m = n, so Nash-Williams gives ceil(4/3) = 2... actually 4/(4-1) < 2 so
        // the bound is 2; a cycle decomposes into 2 forests (it is not a forest itself).
        let c = Coloring::constant(&g);
        let classes = c.class_subgraphs(&g);
        let (_, sub) = classes.iter().next().unwrap();
        // Orient the cycle acyclically with out-degree <= 2 using the identity ranking.
        let witness = Orientation::from_ranking(&sub.graph, &[0, 1, 2, 3]);
        let mut witnesses = HashMap::new();
        witnesses.insert(0u64, witness);
        let out = c.verify_arbdefect_witness(&g, &witnesses, 2).unwrap();
        assert!(out <= 2);
        // With r = 0 the same witness must be rejected.
        assert!(c.verify_arbdefect_witness(&g, &witnesses, 0).is_err());
    }

    #[test]
    fn witness_verification_requires_all_classes() {
        let g = square();
        let c = Coloring::new(&g, vec![0, 0, 1, 1]).unwrap();
        let witnesses = HashMap::new();
        // Classes {0,1} and {2,3} each contain one edge, so a witness is required.
        assert!(c.verify_arbdefect_witness(&g, &witnesses, 1).is_err());
    }

    #[test]
    fn combine_with_palettes_uses_disjoint_ranges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let partition = Coloring::new(&g, vec![0, 0, 1, 1]).unwrap();
        let mut class_colorings = HashMap::new();
        for (color, sub) in partition.class_subgraphs(&g) {
            let inner = Coloring::new(&sub.graph, (0..sub.graph.n() as u64).collect()).unwrap();
            class_colorings.insert(color, (sub, inner));
        }
        let combined = Coloring::combine_with_palettes(&g, &partition, &class_colorings, 10);
        assert!(combined.is_legal(&g));
        // Vertices of class 0 land in palette [0, 10), class 1 in [10, 20).
        assert!(combined.color(0) < 10);
        assert!(combined.color(2) >= 10);
    }

    #[test]
    fn max_class_degeneracy_of_legal_coloring_is_zero() {
        let g = square();
        let c = Coloring::new(&g, vec![0, 1, 0, 1]).unwrap();
        assert_eq!(c.max_class_degeneracy(&g), 0);
    }
}
