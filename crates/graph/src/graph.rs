//! Compact undirected simple graphs in CSR form.
//!
//! [`Graph`] is immutable once built; construction goes through [`GraphBuilder`], which
//! de-duplicates parallel edges and rejects self-loops.  Every undirected edge has a canonical
//! index ([`EdgeIdx`]) into an edge list with endpoints ordered `u < v`; orientations and other
//! per-edge annotations are stored against that index.

use crate::error::GraphError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A vertex index in `0..n`.
///
/// Vertex *indices* are simulator-internal; the LOCAL-model *identifier* of a vertex (a unique
/// number in `{1, …, n}`) is available through [`Graph::id`].
pub type Vertex = usize;

/// Canonical index of an undirected edge (position in [`Graph::edges`]).
pub type EdgeIdx = usize;

/// An immutable undirected simple graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    /// CSR offsets: neighbors of `v` live in `adjacency[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists (each undirected edge appears twice).
    adjacency: Vec<Vertex>,
    /// For each CSR arc position, the canonical edge index it belongs to.
    arc_edge: Vec<EdgeIdx>,
    /// Canonical edge list with endpoints ordered `u < v`.
    edges: Vec<(Vertex, Vertex)>,
    /// Unique LOCAL-model identifiers, a permutation of `1..=n`.
    ids: Vec<u64>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an iterator of undirected edges.
    ///
    /// Parallel edges are merged; self-loops are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or [`GraphError::SelfLoop`] if an edge is
    /// invalid.
    ///
    /// # Examples
    ///
    /// ```
    /// use arbcolor_graph::Graph;
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// assert_eq!(g.n(), 4);
    /// assert_eq!(g.m(), 3);
    /// # Ok::<(), arbcolor_graph::GraphError>(())
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (Vertex, Vertex)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: Vertex) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree `Δ` of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The neighbors of `v`, in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The canonical edge indices of the edges incident to `v`, aligned with
    /// [`Graph::neighbors`] (port order).
    pub fn incident_edges(&self, v: Vertex) -> &[EdgeIdx] {
        &self.arc_edge[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The canonical edge list; every entry satisfies `u < v`.
    pub fn edges(&self) -> &[(Vertex, Vertex)] {
        &self.edges
    }

    /// The endpoints of edge `e` (ordered `u < v`).
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    pub fn endpoints(&self, e: EdgeIdx) -> (Vertex, Vertex) {
        self.edges[e]
    }

    /// Looks up the canonical index of the edge `{u, v}`, if present.
    pub fn edge_between(&self, u: Vertex, v: Vertex) -> Option<EdgeIdx> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).iter().position(|&w| w == b).map(|port| self.incident_edges(a)[port])
    }

    /// Whether `{u, v}` is an edge of the graph.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The unique LOCAL-model identifier of `v` (a value in `1..=n`).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn id(&self, v: Vertex) -> u64 {
        self.ids[v]
    }

    /// All vertex identifiers, indexed by vertex.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Returns a copy of the graph whose identifiers are a pseudo-random permutation of
    /// `1..=n` derived from `seed`.
    ///
    /// Identifier-sensitive algorithms (Linial-style colorings) should be exercised on graphs
    /// with shuffled identifiers so tests do not silently rely on `id(v) = v + 1`.
    #[must_use]
    pub fn with_shuffled_ids(&self, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ids: Vec<u64> = (1..=self.n as u64).collect();
        ids.shuffle(&mut rng);
        let mut g = self.clone();
        g.ids = ids;
        g
    }

    /// Iterates over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.n
    }

    /// Sum of degrees divided by `n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n as f64
        }
    }

    /// The port (position in `neighbors(v)`) at which `u` appears, if `{u, v}` is an edge.
    pub fn port_of(&self, v: Vertex, u: Vertex) -> Option<usize> {
        self.neighbors(v).iter().position(|&w| w == u)
    }

    /// Replaces the identifier vector (crate-internal; used by induced subgraphs to inherit
    /// the identifiers of their parent graph).
    pub(crate) fn set_ids(&mut self, ids: Vec<u64>) {
        debug_assert_eq!(ids.len(), self.n);
        self.ids = ids;
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use arbcolor_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(1, 0)?; // duplicate, merged
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// # Ok::<(), arbcolor_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices with no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of vertices the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range or if `u == v`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<&mut Self, GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        Ok(self)
    }

    /// Adds every edge in the iterator.
    ///
    /// # Errors
    ///
    /// Returns the first invalid edge's error; edges added before the failure are kept.
    pub fn add_edges<I>(&mut self, edges: I) -> Result<&mut Self, GraphError>
    where
        I: IntoIterator<Item = (Vertex, Vertex)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(self)
    }

    /// Finalizes the builder into an immutable [`Graph`], de-duplicating parallel edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let edges = self.edges;
        let n = self.n;

        let mut degrees = vec![0usize; n];
        for &(u, v) in &edges {
            degrees[u] += 1;
            degrees[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degrees[v];
        }
        let mut adjacency = vec![0 as Vertex; offsets[n]];
        let mut arc_edge = vec![0 as EdgeIdx; offsets[n]];
        let mut cursor = offsets.clone();
        for (e, &(u, v)) in edges.iter().enumerate() {
            adjacency[cursor[u]] = v;
            arc_edge[cursor[u]] = e;
            cursor[u] += 1;
            adjacency[cursor[v]] = u;
            arc_edge[cursor[v]] = e;
            cursor[v] += 1;
        }

        Graph { n, offsets, adjacency, arc_edge, edges, ids: (1..=n as u64).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn builds_csr_correctly() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
        let mut nbrs: Vec<_> = g.neighbors(1).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![0, 2]);
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(3, [(0, 7)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 7, n: 3 });
    }

    #[test]
    fn edge_lookup_and_ports() {
        let g = triangle();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!Graph::from_edges(3, [(0, 1)]).unwrap().has_edge(1, 2));
        let e = g.edge_between(2, 1).unwrap();
        assert_eq!(g.endpoints(e), (1, 2));
        let port = g.port_of(2, 0).unwrap();
        assert_eq!(g.neighbors(2)[port], 0);
    }

    #[test]
    fn incident_edges_align_with_neighbors() {
        let g = triangle();
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            let inc = g.incident_edges(v);
            assert_eq!(nbrs.len(), inc.len());
            for (i, &u) in nbrs.iter().enumerate() {
                let (a, b) = g.endpoints(inc[i]);
                assert!((a == v && b == u) || (a == u && b == v));
            }
        }
    }

    #[test]
    fn default_ids_are_one_based() {
        let g = triangle();
        assert_eq!(g.ids(), &[1, 2, 3]);
        assert_eq!(g.id(2), 3);
    }

    #[test]
    fn shuffled_ids_are_a_permutation() {
        let g = triangle().with_shuffled_ids(42);
        let mut ids = g.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        let g0 = Graph::empty(0);
        assert_eq!(g0.max_degree(), 0);
        assert_eq!(g0.average_degree(), 0.0);
    }

    #[test]
    fn average_degree_of_triangle() {
        let g = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }
}
