//! Compact undirected simple graphs in CSR form.
//!
//! [`Graph`] is immutable once built; construction goes through [`GraphBuilder`], which
//! de-duplicates parallel edges and rejects self-loops.  Every undirected edge has a canonical
//! index ([`EdgeIdx`]) into an edge list with endpoints ordered `u < v`; orientations and other
//! per-edge annotations are stored against that index.

use crate::error::GraphError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A vertex index in `0..n`.
///
/// Vertex *indices* are simulator-internal; the LOCAL-model *identifier* of a vertex (a unique
/// number in `{1, …, n}`) is available through [`Graph::id`].
pub type Vertex = usize;

/// Canonical index of an undirected edge (position in [`Graph::edges`]).
pub type EdgeIdx = usize;

/// Index of a directed *arc*: a position in the concatenated adjacency lists.  Every
/// undirected edge `{u, v}` contributes two arcs, `u → v` and `v → u`; the arc `v → u` at
/// port `p` of `v` has index `arc_range(v).start + p`.
pub type ArcIdx = usize;

/// An immutable undirected simple graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    /// CSR offsets: neighbors of `v` live in `adjacency[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists (each undirected edge appears twice).  Each per-vertex
    /// list is strictly ascending — `build` places arcs from the sorted edge list, so for a
    /// vertex `w` the neighbors `u < w` arrive (in `u` order) before the neighbors `x > w`
    /// (in `x` order).  [`Graph::port_of`] and the message fabric rely on this invariant.
    adjacency: Vec<Vertex>,
    /// For each CSR arc position, the canonical edge index it belongs to.
    arc_edge: Vec<EdgeIdx>,
    /// For each arc position `a = (v → u)`, the position of the mirror arc `u → v`.  Turns
    /// message routing (`sender port` → `receiver port`) into a single array read; an
    /// involution without fixed points (`mirror_arc[mirror_arc[a]] == a`).
    mirror_arc: Vec<ArcIdx>,
    /// Canonical edge list with endpoints ordered `u < v`.
    edges: Vec<(Vertex, Vertex)>,
    /// Unique LOCAL-model identifiers, a permutation of `1..=n`.
    ids: Vec<u64>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an iterator of undirected edges.
    ///
    /// Parallel edges are merged; self-loops are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or [`GraphError::SelfLoop`] if an edge is
    /// invalid.
    ///
    /// # Examples
    ///
    /// ```
    /// use arbcolor_graph::Graph;
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// assert_eq!(g.n(), 4);
    /// assert_eq!(g.m(), 3);
    /// # Ok::<(), arbcolor_graph::GraphError>(())
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (Vertex, Vertex)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: Vertex) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree `Δ` of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The neighbors of `v`, in port order (strictly ascending vertex index).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Total number of arcs (`2m`): the length of the concatenated adjacency lists.
    pub fn num_arcs(&self) -> usize {
        self.adjacency.len()
    }

    /// The arc indices owned by `v`: port `p` of `v` is arc `arc_range(v).start + p`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn arc_range(&self, v: Vertex) -> std::ops::Range<ArcIdx> {
        self.offsets[v]..self.offsets[v + 1]
    }

    /// The arc indices owned by a contiguous vertex range (used by sharded executors to size
    /// per-shard arc buffers; empty ranges yield empty spans).
    ///
    /// # Panics
    ///
    /// Panics if `vertices.end > n`.
    pub fn arc_span(&self, vertices: std::ops::Range<Vertex>) -> std::ops::Range<ArcIdx> {
        assert!(vertices.end <= self.n, "vertex range out of bounds");
        if vertices.start >= vertices.end {
            let at = self.offsets[vertices.start.min(self.n)];
            at..at
        } else {
            self.offsets[vertices.start]..self.offsets[vertices.end]
        }
    }

    /// The head (target vertex) of arc `a`: `arc_target(arc_range(v).start + p)` is the
    /// neighbor at port `p` of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= num_arcs()`.
    pub fn arc_target(&self, a: ArcIdx) -> Vertex {
        self.adjacency[a]
    }

    /// The full mirror-arc table: `mirror_arcs()[a]` is the arc position of the reverse of
    /// arc `a`.  Hot loops index this slice directly; for one-off lookups prefer
    /// [`Graph::mirror_port`].
    pub fn mirror_arcs(&self) -> &[ArcIdx] {
        &self.mirror_arc
    }

    /// O(1) reverse-port lookup: the port at which `v` appears in the adjacency list of its
    /// neighbor at `port`.  If `u = neighbors(v)[port]`, then
    /// `neighbors(u)[mirror_port(v, port)] == v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` or `port >= degree(v)`.
    pub fn mirror_port(&self, v: Vertex, port: usize) -> usize {
        let arc = self.offsets[v] + port;
        assert!(arc < self.offsets[v + 1], "port {port} out of range for vertex {v}");
        self.mirror_arc[arc] - self.offsets[self.adjacency[arc]]
    }

    /// The canonical edge indices of the edges incident to `v`, aligned with
    /// [`Graph::neighbors`] (port order).
    pub fn incident_edges(&self, v: Vertex) -> &[EdgeIdx] {
        &self.arc_edge[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The canonical edge list; every entry satisfies `u < v`.
    pub fn edges(&self) -> &[(Vertex, Vertex)] {
        &self.edges
    }

    /// The endpoints of edge `e` (ordered `u < v`).
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    pub fn endpoints(&self, e: EdgeIdx) -> (Vertex, Vertex) {
        self.edges[e]
    }

    /// Looks up the canonical index of the edge `{u, v}`, if present.
    pub fn edge_between(&self, u: Vertex, v: Vertex) -> Option<EdgeIdx> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.port_of(a, b).map(|port| self.incident_edges(a)[port])
    }

    /// Whether `{u, v}` is an edge of the graph.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The unique LOCAL-model identifier of `v` (a value in `1..=n`).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn id(&self, v: Vertex) -> u64 {
        self.ids[v]
    }

    /// All vertex identifiers, indexed by vertex.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Returns a copy of the graph whose identifiers are a pseudo-random permutation of
    /// `1..=n` derived from `seed`.
    ///
    /// Identifier-sensitive algorithms (Linial-style colorings) should be exercised on graphs
    /// with shuffled identifiers so tests do not silently rely on `id(v) = v + 1`.
    #[must_use]
    pub fn with_shuffled_ids(&self, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ids: Vec<u64> = (1..=self.n as u64).collect();
        ids.shuffle(&mut rng);
        let mut g = self.clone();
        g.ids = ids;
        g
    }

    /// Returns a copy of the graph carrying the given identifier vector, which must be a
    /// permutation of `1..=n`.
    ///
    /// The dynamic-graph driver uses this to preserve LOCAL-model identifiers across CSR
    /// rebuilds: a vertex keeps its identity when edges are inserted around it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `ids` is not a permutation of `1..=n`.
    pub fn with_vertex_ids(&self, ids: Vec<u64>) -> Result<Self, GraphError> {
        if ids.len() != self.n {
            return Err(GraphError::InvalidParameter {
                reason: format!("got {} identifiers for {} vertices", ids.len(), self.n),
            });
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        if sorted.iter().enumerate().any(|(i, &id)| id != i as u64 + 1) {
            return Err(GraphError::InvalidParameter {
                reason: format!("identifiers are not a permutation of 1..={}", self.n),
            });
        }
        let mut g = self.clone();
        g.ids = ids;
        Ok(g)
    }

    /// Iterates over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.n
    }

    /// Sum of degrees divided by `n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n as f64
        }
    }

    /// The port (position in `neighbors(v)`) at which `u` appears, if `{u, v}` is an edge.
    ///
    /// O(log deg(v)): adjacency lists are strictly ascending (see [`Graph::neighbors`]), so
    /// this is a binary search.  Message *routing* should not use this at all — when the
    /// sender-side port is known, [`Graph::mirror_port`] answers in O(1).
    pub fn port_of(&self, v: Vertex, u: Vertex) -> Option<usize> {
        if v >= self.n {
            return None;
        }
        self.neighbors(v).binary_search(&u).ok()
    }

    /// Replaces the identifier vector (crate-internal; used by induced subgraphs to inherit
    /// the identifiers of their parent graph).
    pub(crate) fn set_ids(&mut self, ids: Vec<u64>) {
        debug_assert_eq!(ids.len(), self.n);
        self.ids = ids;
    }

    /// Assembles the CSR arrays from a canonical edge list that is already sorted,
    /// de-duplicated, validated, and ordered `u < v` per edge.  Both [`GraphBuilder::build`]
    /// and [`Graph::patched`] funnel through here, which is what makes a patched graph
    /// bit-identical to a from-scratch rebuild over the same edge set.
    fn from_sorted_edges(n: usize, edges: Vec<(Vertex, Vertex)>) -> Graph {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]) && edges.iter().all(|&(u, v)| u < v && v < n),
            "from_sorted_edges requires a sorted, de-duplicated, canonical edge list"
        );
        let mut degrees = vec![0usize; n];
        for &(u, v) in &edges {
            degrees[u] += 1;
            degrees[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degrees[v];
        }
        let mut adjacency = vec![0 as Vertex; offsets[n]];
        let mut arc_edge = vec![0 as EdgeIdx; offsets[n]];
        let mut mirror_arc = vec![0 as ArcIdx; offsets[n]];
        let mut cursor = offsets.clone();
        for (e, &(u, v)) in edges.iter().enumerate() {
            // Both arc positions of edge e are known right here, so the mirror table costs
            // nothing extra to build.
            let (au, av) = (cursor[u], cursor[v]);
            adjacency[au] = v;
            arc_edge[au] = e;
            mirror_arc[au] = av;
            cursor[u] += 1;
            adjacency[av] = u;
            arc_edge[av] = e;
            mirror_arc[av] = au;
            cursor[v] += 1;
        }
        debug_assert!(
            (0..n).all(|v| adjacency[offsets[v]..offsets[v + 1]].windows(2).all(|w| w[0] < w[1])),
            "adjacency lists must be strictly ascending"
        );

        Graph { n, offsets, adjacency, arc_edge, mirror_arc, edges, ids: (1..=n as u64).collect() }
    }

    /// Returns a copy of the graph with `insert` edges added and `remove` edges taken out,
    /// preserving the vertex identifiers without re-validation.
    ///
    /// This is the incremental update path for small batches: the existing canonical edge
    /// list is already sorted, so the patch sorts only the batch and merges in
    /// O(n + m + b log b) — a full [`GraphBuilder`] rebuild re-sorts all `m + b` edges and
    /// re-checks the identifier permutation on top.  The result is **bit-identical** to a
    /// from-scratch rebuild over the same final edge set (both paths assemble the CSR from
    /// the same sorted list), so callers may switch freely between the two.
    ///
    /// Semantics: removals are applied first, then insertions.  Removing an absent edge and
    /// inserting a present one are no-ops; an edge named in both lists ends up present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or [`GraphError::SelfLoop`] if any edge in
    /// either list is invalid; the graph is untouched on error.
    ///
    /// # Examples
    ///
    /// ```
    /// use arbcolor_graph::Graph;
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
    /// let h = g.patched(&[(0, 3)], &[(1, 2)])?;
    /// assert_eq!(h.m(), 3);
    /// assert!(h.has_edge(0, 3) && !h.has_edge(1, 2));
    /// # Ok::<(), arbcolor_graph::GraphError>(())
    /// ```
    pub fn patched(
        &self,
        insert: &[(Vertex, Vertex)],
        remove: &[(Vertex, Vertex)],
    ) -> Result<Graph, GraphError> {
        let canon = |&(u, v): &(Vertex, Vertex)| -> Result<(Vertex, Vertex), GraphError> {
            if u >= self.n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
            }
            if v >= self.n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            Ok(if u < v { (u, v) } else { (v, u) })
        };
        let mut ins = insert.iter().map(canon).collect::<Result<Vec<_>, _>>()?;
        ins.sort_unstable();
        ins.dedup();
        let mut rem = remove.iter().map(canon).collect::<Result<Vec<_>, _>>()?;
        rem.sort_unstable();
        rem.dedup();

        // Merge the two sorted streams; the (sorted) removal set filters old edges only, so
        // "remove then insert" falls out of the case analysis.
        let mut edges = Vec::with_capacity(self.edges.len() + ins.len());
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        while i < self.edges.len() || j < ins.len() {
            let old = self.edges.get(i).copied();
            let add = ins.get(j).copied();
            let take_old = match (old, add) {
                (Some(o), Some(x)) => o <= x,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_old {
                let o = old.expect("take_old implies an old edge remains");
                i += 1;
                if add == Some(o) {
                    // Inserting a present edge: keep it (even if also named in `remove`).
                    j += 1;
                    edges.push(o);
                    continue;
                }
                while k < rem.len() && rem[k] < o {
                    k += 1;
                }
                if k < rem.len() && rem[k] == o {
                    continue; // removed
                }
                edges.push(o);
            } else {
                edges.push(add.expect("!take_old implies an insert edge remains"));
                j += 1;
            }
        }

        let mut g = Graph::from_sorted_edges(self.n, edges);
        g.ids = self.ids.clone();
        Ok(g)
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use arbcolor_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(1, 0)?; // duplicate, merged
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// # Ok::<(), arbcolor_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices with no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of vertices the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range or if `u == v`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<&mut Self, GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        Ok(self)
    }

    /// Adds every edge in the iterator.
    ///
    /// # Errors
    ///
    /// Returns the first invalid edge's error; edges added before the failure are kept.
    pub fn add_edges<I>(&mut self, edges: I) -> Result<&mut Self, GraphError>
    where
        I: IntoIterator<Item = (Vertex, Vertex)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(self)
    }

    /// Finalizes the builder into an immutable [`Graph`], de-duplicating parallel edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_sorted_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn builds_csr_correctly() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
        let mut nbrs: Vec<_> = g.neighbors(1).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![0, 2]);
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(3, [(0, 7)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 7, n: 3 });
    }

    #[test]
    fn edge_lookup_and_ports() {
        let g = triangle();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!Graph::from_edges(3, [(0, 1)]).unwrap().has_edge(1, 2));
        let e = g.edge_between(2, 1).unwrap();
        assert_eq!(g.endpoints(e), (1, 2));
        let port = g.port_of(2, 0).unwrap();
        assert_eq!(g.neighbors(2)[port], 0);
    }

    #[test]
    fn incident_edges_align_with_neighbors() {
        let g = triangle();
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            let inc = g.incident_edges(v);
            assert_eq!(nbrs.len(), inc.len());
            for (i, &u) in nbrs.iter().enumerate() {
                let (a, b) = g.endpoints(inc[i]);
                assert!((a == v && b == u) || (a == u && b == v));
            }
        }
    }

    #[test]
    fn mirror_arcs_are_a_fixed_point_free_involution() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 5), (3, 4), (1, 4)]).unwrap();
        assert_eq!(g.num_arcs(), 2 * g.m());
        assert_eq!(g.mirror_arcs().len(), g.num_arcs());
        for a in 0..g.num_arcs() {
            let b = g.mirror_arcs()[a];
            assert_ne!(a, b, "an arc is never its own mirror");
            assert_eq!(g.mirror_arcs()[b], a, "mirror must be an involution");
        }
    }

    #[test]
    fn mirror_port_round_trips_through_both_endpoints() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        for v in g.vertices() {
            for (port, &u) in g.neighbors(v).iter().enumerate() {
                let back = g.mirror_port(v, port);
                assert_eq!(g.neighbors(u)[back], v);
                assert_eq!(g.mirror_port(u, back), port);
                assert_eq!(g.port_of(u, v), Some(back));
                assert_eq!(g.arc_target(g.arc_range(v).start + port), u);
            }
        }
    }

    #[test]
    fn arc_span_matches_concatenated_ranges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        assert_eq!(g.arc_span(0..g.n()), 0..g.num_arcs());
        assert_eq!(g.arc_span(1..3).start, g.arc_range(1).start);
        assert_eq!(g.arc_span(1..3).end, g.arc_range(2).end);
        assert!(g.arc_span(2..2).is_empty());
        assert!(g.arc_span(5..5).is_empty());
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let g = Graph::from_edges(7, [(3, 1), (3, 5), (0, 3), (3, 6), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4, 5, 6]);
        assert_eq!(g.port_of(3, 4), Some(3));
        assert_eq!(g.port_of(3, 3), None);
        assert_eq!(g.port_of(9, 0), None);
    }

    #[test]
    fn default_ids_are_one_based() {
        let g = triangle();
        assert_eq!(g.ids(), &[1, 2, 3]);
        assert_eq!(g.id(2), 3);
    }

    #[test]
    fn shuffled_ids_are_a_permutation() {
        let g = triangle().with_shuffled_ids(42);
        let mut ids = g.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        let g0 = Graph::empty(0);
        assert_eq!(g0.max_degree(), 0);
        assert_eq!(g0.average_degree(), 0.0);
    }

    #[test]
    fn average_degree_of_triangle() {
        let g = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }
}
