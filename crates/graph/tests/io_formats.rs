//! Error-path and round-trip suite for the `arbcolor_graph::io` parsers.
//!
//! Two families of guarantees are pinned here:
//!
//! * **typed errors, never panics** — every malformed-input class the parsers document
//!   (broken headers, out-of-range endpoints, self-loops, duplicates, 0-vs-1 indexing
//!   ambiguity, truncation) returns [`GraphError::Parse`] with a usable line number;
//! * **round-trips** — `parse(write(g))` reproduces `g` bit-identically (structure and
//!   vertex count, with the default identifier assignment) for every generator family, in
//!   all three formats.

use arbcolor_graph::generators::seeded_suite;
use arbcolor_graph::io::{
    parse_dimacs_col, parse_edge_list, parse_metis, write_dimacs_col, write_edge_list, write_metis,
    Indexing, ParseOptions,
};
use arbcolor_graph::GraphError;
use proptest::prelude::*;

fn assert_parse_error(result: Result<arbcolor_graph::Graph, GraphError>, needle: &str) {
    match result {
        Err(GraphError::Parse { reason, .. }) => {
            assert!(reason.contains(needle), "error {reason:?} does not mention {needle:?}")
        }
        Err(other) => panic!("expected a Parse error mentioning {needle:?}, got {other}"),
        Ok(g) => {
            panic!("expected a Parse error mentioning {needle:?}, got a graph with n={}", g.n())
        }
    }
}

// ---------------------------------------------------------------------------
// Edge lists
// ---------------------------------------------------------------------------

#[test]
fn edge_list_rejects_malformed_lines() {
    let opts = ParseOptions::default();
    assert_parse_error(parse_edge_list("1 two\n".as_bytes(), &opts), "vertex number");
    assert_parse_error(parse_edge_list("17\n".as_bytes(), &opts), "single token");
}

#[test]
fn edge_list_rejects_out_of_range_endpoints_against_a_declared_count() {
    let text = "# Nodes: 3 Edges: 1\n1 9\n";
    assert_parse_error(parse_edge_list(text.as_bytes(), &ParseOptions::default()), "out of range");
}

#[test]
fn absurd_endpoints_are_typed_errors_not_allocation_aborts() {
    let opts = ParseOptions::default();
    // A corrupted label implying an ~10^16-vertex CSR must error, not abort the process.
    assert_parse_error(parse_edge_list("1 10000000000000000\n".as_bytes(), &opts), "maximum");
    // u64::MAX must not overflow the implied-n arithmetic (debug builds would panic).
    assert_parse_error(parse_edge_list("1 18446744073709551615\n".as_bytes(), &opts), "maximum");
    // An absurd declared header is caught the same way, in every format.
    assert_parse_error(parse_dimacs_col("p edge 99999999999 0\n".as_bytes(), &opts), "maximum");
}

#[test]
fn edge_list_zero_endpoint_in_forced_one_based_mode_is_the_ambiguity_error() {
    // The file says 0 but the caller insisted on 1-based indexing: typed error, not an
    // underflow or a silently shifted graph.
    let opts = ParseOptions::default().with_indexing(Indexing::OneBased);
    assert_parse_error(parse_edge_list("0 1\n".as_bytes(), &opts), "1-indexed");
    // Even when the only 0 endpoint sits on a self-loop the lenient policy would drop:
    // the file is provably not 1-indexed, so forcing OneBased is still a typed error.
    assert_parse_error(parse_edge_list("0 0\n1 2\n".as_bytes(), &opts), "1-indexed");
}

#[test]
fn edge_list_forced_zero_based_keeps_raw_indices() {
    let opts = ParseOptions::default().with_indexing(Indexing::ZeroBased);
    let g = parse_edge_list("1 2\n".as_bytes(), &opts).unwrap();
    assert_eq!(g.n(), 3);
    assert!(g.has_edge(1, 2));
}

#[test]
fn dropped_self_loops_still_witness_indexing_and_vertex_count() {
    let opts = ParseOptions::default();
    // The skipped loop at vertex 0 proves the file is 0-indexed: (1, 2) must stay (1, 2).
    let g = parse_edge_list("0 0\n1 2\n".as_bytes(), &opts).unwrap();
    assert_eq!((g.n(), g.m()), (3, 1));
    assert!(g.has_edge(1, 2));
    // The skipped loop at vertex 5 proves vertex 5 exists (1-indexed here): n = 5, not 2.
    let g = parse_edge_list("5 5\n1 2\n".as_bytes(), &opts).unwrap();
    assert_eq!((g.n(), g.m()), (5, 1));
    assert!(g.has_edge(0, 1));
    // A file holding only a dropped self-loop still has its vertex.
    let g = parse_edge_list("1 1\n".as_bytes(), &opts).unwrap();
    assert_eq!((g.n(), g.m()), (1, 0));
}

#[test]
fn strict_mode_rejects_self_loops_and_duplicates_with_line_numbers() {
    let strict = ParseOptions::strict();
    match parse_edge_list("1 2\n3 3\n".as_bytes(), &strict) {
        Err(GraphError::Parse { line, reason }) => {
            assert_eq!(line, 2);
            assert!(reason.contains("self-loop"));
        }
        other => panic!("expected a self-loop error, got {other:?}"),
    }
    match parse_edge_list("1 2\n2 3\n2 1\n".as_bytes(), &strict) {
        Err(GraphError::Parse { line, reason }) => {
            assert_eq!(line, 3);
            assert!(reason.contains("duplicate"));
        }
        other => panic!("expected a duplicate error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// DIMACS .col
// ---------------------------------------------------------------------------

#[test]
fn dimacs_requires_a_problem_line() {
    let opts = ParseOptions::default();
    assert_parse_error(parse_dimacs_col("c only comments\n".as_bytes(), &opts), "problem line");
    assert_parse_error(parse_dimacs_col("e 1 2\np edge 3 1\n".as_bytes(), &opts), "before");
    assert_parse_error(
        parse_dimacs_col("p edge 3 1\np edge 3 1\ne 1 2\n".as_bytes(), &opts),
        "second",
    );
}

#[test]
fn dimacs_rejects_malformed_headers_and_unknown_lines() {
    let opts = ParseOptions::default();
    assert_parse_error(parse_dimacs_col("p edge three 4\n".as_bytes(), &opts), "vertex count");
    assert_parse_error(parse_dimacs_col("p edge 3\n".as_bytes(), &opts), "edge count");
    assert_parse_error(parse_dimacs_col("p matrix 3 3\n".as_bytes(), &opts), "problem type");
    assert_parse_error(parse_dimacs_col("p edge 3 1\nq 1 2\n".as_bytes(), &opts), "unknown");
    assert_parse_error(parse_dimacs_col("p edge 3 1\ne 1\n".as_bytes(), &opts), "two endpoints");
}

#[test]
fn dimacs_rejects_out_of_range_and_zero_endpoints() {
    let opts = ParseOptions::default();
    assert_parse_error(parse_dimacs_col("p edge 3 1\ne 1 7\n".as_bytes(), &opts), "out of range");
    assert_parse_error(parse_dimacs_col("p edge 3 1\ne 0 2\n".as_bytes(), &opts), "1-indexed");
}

#[test]
fn dimacs_strict_mode_rejects_duplicates() {
    let text = "p edge 3 2\ne 1 2\ne 2 1\n";
    assert_parse_error(parse_dimacs_col(text.as_bytes(), &ParseOptions::strict()), "duplicate");
    // Lenient mode merges them instead.
    let g = parse_dimacs_col(text.as_bytes(), &ParseOptions::default()).unwrap();
    assert_eq!(g.m(), 1);
}

// ---------------------------------------------------------------------------
// METIS
// ---------------------------------------------------------------------------

#[test]
fn metis_rejects_malformed_headers() {
    let opts = ParseOptions::default();
    assert_parse_error(parse_metis("".as_bytes(), &opts), "missing METIS header");
    assert_parse_error(parse_metis("3\n".as_bytes(), &opts), "METIS header");
    assert_parse_error(parse_metis("x 2\n1\n2\n".as_bytes(), &opts), "not a number");
    assert_parse_error(parse_metis("2 1 011\n2\n1\n".as_bytes(), &opts), "weights");
    assert_parse_error(parse_metis("2 1 0 1 9\n2\n1\n".as_bytes(), &opts), "METIS header");
}

#[test]
fn metis_rejects_wrong_line_counts_and_edge_counts() {
    let opts = ParseOptions::default();
    // Truncated: 3 declared vertices, 2 data lines.
    assert_parse_error(parse_metis("3 2\n2 3\n1\n".as_bytes(), &opts), "file ends");
    // Too many data lines.
    assert_parse_error(parse_metis("2 1\n2\n1\n1\n".as_bytes(), &opts), "more than");
    // Header m disagrees with the adjacency content.
    assert_parse_error(parse_metis("3 5\n2 3\n1 3\n1 2\n".as_bytes(), &opts), "declares 5 edges");
}

#[test]
fn metis_rejects_out_of_range_and_zero_neighbors() {
    let opts = ParseOptions::default();
    assert_parse_error(parse_metis("2 1\n2 9\n1\n".as_bytes(), &opts), "out of range");
    assert_parse_error(parse_metis("2 1\n0\n1\n".as_bytes(), &opts), "1-indexed");
}

#[test]
fn metis_strict_mode_rejects_self_loops_and_directed_duplicates() {
    // Vertex 1 lists itself.
    let text = "2 2\n1 2\n1 2\n";
    assert_parse_error(parse_metis(text.as_bytes(), &ParseOptions::strict()), "self-loop");
    // Vertex 1 lists vertex 2 twice (the mirror listing in line 2's data is fine — every
    // METIS edge legitimately appears once per endpoint line).
    let text = "2 1\n2 2\n1\n";
    assert_parse_error(parse_metis(text.as_bytes(), &ParseOptions::strict()), "duplicate neighbor");
}

// ---------------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `write → parse` reproduces every generator-family graph bit-identically in all
    /// three formats.  The formats carry structure but not identifiers, so the comparison
    /// target is the generated graph re-equipped with the default `1..=n` assignment.
    #[test]
    fn write_then_parse_round_trips_the_generator_suite(
        n in 12usize..70,
        seed in 0u64..1_000,
    ) {
        let opts = ParseOptions::default();
        for (family, g) in seeded_suite(n, seed) {
            let ids = (1..=g.n() as u64).collect::<Vec<_>>();
            let g = g.with_vertex_ids(ids).expect("default ids are a permutation");
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            prop_assert_eq!(&parse_edge_list(buf.as_slice(), &opts).unwrap(), &g,
                "edge-list round-trip on {}", family);
            buf.clear();
            write_dimacs_col(&g, &mut buf).unwrap();
            prop_assert_eq!(&parse_dimacs_col(buf.as_slice(), &opts).unwrap(), &g,
                "dimacs round-trip on {}", family);
            buf.clear();
            write_metis(&g, &mut buf).unwrap();
            prop_assert_eq!(&parse_metis(buf.as_slice(), &opts).unwrap(), &g,
                "metis round-trip on {}", family);
        }
    }

    /// Strict parsing accepts every written graph too: our writers never emit self-loops
    /// or duplicates, so the strict error paths stay quiet on well-formed input.
    #[test]
    fn strict_parsing_accepts_writer_output(
        n in 12usize..40,
        seed in 0u64..1_000,
    ) {
        let strict = ParseOptions::strict();
        for (family, g) in seeded_suite(n, seed) {
            let mut buf = Vec::new();
            write_metis(&g, &mut buf).unwrap();
            prop_assert!(parse_metis(buf.as_slice(), &strict).is_ok(),
                "strict metis rejected writer output on {}", family);
        }
    }
}
