//! Property suite for the arc-indexed routing tables.
//!
//! The message fabric's O(1) routing rests on three graph-layer invariants, pinned here
//! against brute-force recomputation across the full generator suite:
//!
//! * `mirror_arc` is a fixed-point-free involution pairing the two arcs of every edge;
//! * `mirror_port(v, p)` agrees with the linear-scan definition of `port_of` (the
//!   pre-mirror delivery path) at every port of every vertex;
//! * adjacency lists are strictly ascending, so the binary-search `port_of` agrees with a
//!   linear scan for *arbitrary* (member and non-member) query pairs.

use arbcolor_graph::generators::seeded_suite as generator_suite;
use arbcolor_graph::Graph;
use proptest::prelude::*;

/// The pre-mirror definition: position of `u` in `neighbors(v)` by linear scan.
fn port_by_scan(g: &Graph, v: usize, u: usize) -> Option<usize> {
    g.neighbors(v).iter().position(|&w| w == u)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mirror_tables_agree_with_linear_scans_on_the_generator_suite(
        n in 12usize..80,
        seed in 0u64..1_000,
    ) {
        for (family, g) in generator_suite(n, seed) {
            prop_assert_eq!(g.num_arcs(), 2 * g.m(), "arc count on {}", family);
            let mirror = g.mirror_arcs();
            for v in g.vertices() {
                let arcs = g.arc_range(v);
                prop_assert_eq!(arcs.len(), g.degree(v), "arc range on {}", family);
                for (port, &u) in g.neighbors(v).iter().enumerate() {
                    let arc = arcs.start + port;
                    // The mirror arc is the reverse arc: it lives in u's range, targets v,
                    // and mirrors back.
                    let back = mirror[arc];
                    prop_assert!(g.arc_range(u).contains(&back), "mirror range on {}", family);
                    prop_assert_eq!(g.arc_target(back), v, "mirror target on {}", family);
                    prop_assert_eq!(mirror[back], arc, "involution on {}", family);
                    // mirror_port == the old linear-scan port_of, both ways.
                    let mp = g.mirror_port(v, port);
                    prop_assert_eq!(Some(mp), port_by_scan(&g, u, v), "mirror_port on {}", family);
                    prop_assert_eq!(g.mirror_port(u, mp), port, "mirror round-trip on {}", family);
                }
            }
        }
    }

    #[test]
    fn binary_search_port_of_agrees_with_linear_scan(
        n in 12usize..60,
        seed in 0u64..1_000,
        probe in (0usize..60, 0usize..60),
    ) {
        for (family, g) in generator_suite(n, seed) {
            // Sortedness is what licenses the binary search.
            for v in g.vertices() {
                prop_assert!(
                    g.neighbors(v).windows(2).all(|w| w[0] < w[1]),
                    "adjacency of {} not strictly ascending on {}", v, family
                );
            }
            // Arbitrary probe pair (possibly a non-edge, possibly out of range).
            let (a, b) = probe;
            if a < g.n() {
                prop_assert_eq!(g.port_of(a, b), port_by_scan(&g, a, b), "probe on {}", family);
            }
            // Every real edge, both directions.
            for &(u, v) in g.edges() {
                prop_assert_eq!(g.port_of(u, v), port_by_scan(&g, u, v), "edge on {}", family);
                prop_assert_eq!(g.port_of(v, u), port_by_scan(&g, v, u), "edge rev on {}", family);
            }
        }
    }
}
