//! Property suite for the incremental CSR patch path.
//!
//! `Graph::patched` promises to be **bit-identical** to throwing every surviving edge at a
//! fresh `GraphBuilder` and re-attaching the identifiers — same CSR arrays, same canonical
//! edge order, same mirror-arc table.  The dynamic-coloring driver and the serving layer
//! both lean on that equivalence, so it is pinned here across the full generator suite
//! with randomized insert/remove batches (including overlapping, duplicated, and no-op
//! edges).

use arbcolor_graph::generators::seeded_suite as generator_suite;
use arbcolor_graph::{Graph, GraphBuilder, GraphError, Vertex};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The oracle: apply the same removals-then-insertions to a fresh builder.
fn rebuilt(g: &Graph, insert: &[(Vertex, Vertex)], remove: &[(Vertex, Vertex)]) -> Graph {
    let canon = |&(u, v): &(Vertex, Vertex)| if u < v { (u, v) } else { (v, u) };
    let removed: Vec<(Vertex, Vertex)> = remove.iter().map(canon).collect();
    let inserted: Vec<(Vertex, Vertex)> = insert.iter().map(canon).collect();
    let mut builder = GraphBuilder::new(g.n());
    builder
        .add_edges(
            g.edges().iter().filter(|e| !removed.contains(e) || inserted.contains(e)).copied(),
        )
        .unwrap();
    builder.add_edges(insert.iter().copied()).unwrap();
    builder.build().with_vertex_ids(g.ids().to_vec()).unwrap()
}

type EdgeList = Vec<(Vertex, Vertex)>;

fn random_batch(
    rng: &mut ChaCha8Rng,
    g: &Graph,
    inserts: usize,
    removes: usize,
) -> (EdgeList, EdgeList) {
    let n = g.n();
    let mut insert = Vec::new();
    for _ in 0..inserts {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            // Deliberately unordered and possibly already present or duplicated.
            insert.push((u, v));
        }
    }
    let mut remove = Vec::new();
    for _ in 0..removes {
        if !g.edges().is_empty() && rng.gen_bool(0.8) {
            let (u, v) = g.edges()[rng.gen_range(0..g.m())];
            remove.push(if rng.gen_bool(0.5) { (v, u) } else { (u, v) });
        } else {
            // Absent-edge removals must be no-ops.
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                remove.push((u, v));
            }
        }
    }
    (insert, remove)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn patched_graphs_match_full_rebuilds_on_the_generator_suite(
        n in 8usize..60,
        seed in 0u64..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9);
        for (family, g) in generator_suite(n, seed) {
            let g = g.with_shuffled_ids(seed);
            let (insert, remove) = random_batch(&mut rng, &g, n / 2, n / 3);
            let patched = g.patched(&insert, &remove).unwrap();
            let oracle = rebuilt(&g, &insert, &remove);
            prop_assert_eq!(&patched, &oracle, "patched != rebuilt on {}", family);
            prop_assert_eq!(patched.ids(), g.ids(), "ids drifted on {}", family);
        }
    }
}

#[test]
fn patched_applies_removals_before_insertions() {
    let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    // (1, 2) is both removed and (re-)inserted: insert wins.
    let h = g.patched(&[(2, 1), (0, 3)], &[(1, 2), (2, 3), (0, 3)]).unwrap();
    assert_eq!(h.edges(), &[(0, 1), (0, 3), (1, 2)]);
}

#[test]
fn patched_is_a_no_op_for_empty_batches() {
    let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap().with_shuffled_ids(7);
    let h = g.patched(&[], &[]).unwrap();
    assert_eq!(h, g);
}

#[test]
fn patched_surfaces_typed_errors_from_both_lists() {
    let g = Graph::from_edges(3, [(0, 1)]).unwrap();
    assert_eq!(
        g.patched(&[(0, 9)], &[]).unwrap_err(),
        GraphError::VertexOutOfRange { vertex: 9, n: 3 }
    );
    assert_eq!(g.patched(&[], &[(2, 2)]).unwrap_err(), GraphError::SelfLoop { vertex: 2 });
}

#[test]
fn patched_can_empty_and_refill_a_graph() {
    let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
    let empty = g.patched(&[], g.edges()).unwrap();
    assert_eq!(empty.m(), 0);
    assert_eq!(empty.num_arcs(), 0);
    let refilled = empty.patched(g.edges(), &[]).unwrap();
    assert_eq!(refilled, g);
}
