//! A uniform interface over all coloring algorithms — the §1.2 comparison baselines plus the
//! two headline algorithms — used by the experiment harness to build its comparison tables.

use arbcolor::ghaffari_kuhn::ghaffari_kuhn_coloring;
use arbcolor::hkmt::hkmt_coloring;
use arbcolor::legal_coloring::sparse_delta_plus_one;
use arbcolor_decompose::arb_linear::arboricity_linear_coloring;
use arbcolor_decompose::delta_linear::delta_plus_one_coloring;
use arbcolor_graph::{degeneracy, Coloring, Graph};
use arbcolor_runtime::RoundReport;

/// The outcome of running one baseline on one graph.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Short name of the algorithm.
    pub name: String,
    /// The coloring it produced.
    pub coloring: Coloring,
    /// Number of distinct colors.
    pub colors: usize,
    /// Simulated LOCAL cost (zero for centralized references).
    pub report: RoundReport,
    /// Whether the algorithm is deterministic.
    pub deterministic: bool,
}

/// A coloring baseline that can be tabulated by the harness.
pub trait ColoringBaseline {
    /// Short display name.
    fn name(&self) -> &'static str;

    /// Runs the baseline on `graph`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable error when the baseline cannot run on this graph.
    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String>;
}

/// Centralized greedy (quality reference, zero rounds reported).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBaseline;

impl ColoringBaseline for GreedyBaseline {
    fn name(&self) -> &'static str {
        "greedy-centralized"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let coloring = crate::greedy::degeneracy_greedy(graph);
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: coloring.distinct_colors(),
            coloring,
            report: RoundReport::zero(),
            deterministic: true,
        })
    }
}

/// Randomized trial coloring (`Δ+1` colors, `O(log n)` rounds w.h.p.).
#[derive(Debug, Clone, Copy)]
pub struct RandomizedBaseline {
    /// PRNG seed.
    pub seed: u64,
}

impl ColoringBaseline for RandomizedBaseline {
    fn name(&self) -> &'static str {
        "randomized-delta-plus-one"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let out = crate::randomized::randomized_coloring(graph, self.seed);
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: out.coloring.distinct_colors(),
            coloring: out.coloring,
            report: out.report,
            deterministic: false,
        })
    }
}

/// Linial `O(Δ²)` colors in `O(log* n)` rounds (no reduction) — the deterministic
/// polylogarithmic-time state of the art before this paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinialBaseline;

impl ColoringBaseline for LinialBaseline {
    fn name(&self) -> &'static str {
        "linial-delta-squared"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let out = arbcolor_decompose::linial::linial_coloring(graph).map_err(|e| e.to_string())?;
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: out.colors_used,
            coloring: out.coloring,
            report: out.report,
            deterministic: true,
        })
    }
}

/// Kuhn–Wattenhofer `(Δ+1)`-coloring.
#[derive(Debug, Clone, Copy, Default)]
pub struct KwBaseline;

impl ColoringBaseline for KwBaseline {
    fn name(&self) -> &'static str {
        "kuhn-wattenhofer"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let out = crate::kw::kw_coloring(graph).map_err(|e| e.to_string())?;
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: out.coloring.distinct_colors(),
            coloring: out.coloring,
            report: out.report,
            deterministic: true,
        })
    }
}

/// Degree-linear `(Δ+1)`-coloring (BE'09 / Kuhn'09 style).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaLinearBaseline;

impl ColoringBaseline for DeltaLinearBaseline {
    fn name(&self) -> &'static str {
        "delta-linear"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let out = delta_plus_one_coloring(graph).map_err(|e| e.to_string())?;
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: out.coloring.distinct_colors(),
            coloring: out.coloring,
            report: out.report,
            deterministic: true,
        })
    }
}

/// Arboricity-linear `O(a)`-coloring (BE'08) — the prior state of the art for
/// arboricity-parameterized coloring.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArboricityLinearBaseline;

impl ColoringBaseline for ArboricityLinearBaseline {
    fn name(&self) -> &'static str {
        "be08-arboricity-linear"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let a = degeneracy::degeneracy(graph).max(1);
        let out = arboricity_linear_coloring(graph, a, 1.0).map_err(|e| e.to_string())?;
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: out.coloring.distinct_colors(),
            coloring: out.coloring,
            report: out.report,
            deterministic: true,
        })
    }
}

/// Barenboim–Elkin (PODC 2010), the repository's first headline algorithm, through its
/// `(Δ+1)`-coloring statement (Corollary 4.7): arboricity-parameterized,
/// `O(log a · log n)` rounds, at most `Δ + 1` colors whenever `a ≪ Δ`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BarenboimElkinHeadline;

impl ColoringBaseline for BarenboimElkinHeadline {
    fn name(&self) -> &'static str {
        "barenboim_elkin"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let a = degeneracy::degeneracy(graph).max(1);
        let run = sparse_delta_plus_one(graph, a, 0.5, 1.0).map_err(|e| e.to_string())?;
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: run.colors_used,
            coloring: run.coloring,
            report: run.report,
            deterministic: true,
        })
    }
}

/// Ghaffari–Kuhn (arXiv:2011.04511), the repository's second headline algorithm:
/// degree-parameterized `(deg+1)`-list coloring, `O(log² Δ · log n)` rounds, always at most
/// `Δ + 1` colors.
#[derive(Debug, Clone, Copy, Default)]
pub struct GhaffariKuhnHeadline;

impl ColoringBaseline for GhaffariKuhnHeadline {
    fn name(&self) -> &'static str {
        "ghaffari_kuhn"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let run = ghaffari_kuhn_coloring(graph).map_err(|e| e.to_string())?;
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: run.colors_used,
            coloring: run.coloring,
            report: run.report,
            deterministic: true,
        })
    }
}

/// Halldórsson–Kuhn–Maus–Tonoyan (arXiv:2012.14169), the repository's third headline
/// algorithm and its first randomized one: seeded multi-trial `(deg+1)`-list coloring whose
/// messages stay at `O(log n)` bits — built for head-to-heads under CONGEST accounting.
/// Reproducible (bit-identical across executors) for a fixed seed, but not deterministic
/// as an algorithm.
#[derive(Debug, Clone, Copy)]
pub struct HkmtHeadline {
    /// PRNG seed; per-vertex generators are derived from it.
    pub seed: u64,
}

impl ColoringBaseline for HkmtHeadline {
    fn name(&self) -> &'static str {
        "hkmt_random"
    }

    fn run(&self, graph: &Graph) -> Result<BaselineOutcome, String> {
        let run = hkmt_coloring(graph, self.seed).map_err(|e| e.to_string())?;
        Ok(BaselineOutcome {
            name: self.name().to_string(),
            colors: run.colors_used,
            coloring: run.coloring,
            report: run.report,
            deterministic: false,
        })
    }
}

/// The two headline algorithms, in publication order — every head-to-head experiment runs
/// exactly this list so both contenders see the same seeded graphs.
pub fn headline_algorithms() -> Vec<Box<dyn ColoringBaseline>> {
    vec![Box::new(BarenboimElkinHeadline), Box::new(GhaffariKuhnHeadline)]
}

/// All three headliners — the two deterministic ones plus the randomized CONGEST headliner —
/// for bandwidth head-to-heads (experiment E22 and the `congest_headliners` example).
pub fn congest_headliners(seed: u64) -> Vec<Box<dyn ColoringBaseline>> {
    vec![
        Box::new(BarenboimElkinHeadline),
        Box::new(GhaffariKuhnHeadline),
        Box::new(HkmtHeadline { seed }),
    ]
}

/// All baselines, in the order the §1.2 comparison table lists them.
pub fn standard_baselines(seed: u64) -> Vec<Box<dyn ColoringBaseline>> {
    vec![
        Box::new(GreedyBaseline),
        Box::new(RandomizedBaseline { seed }),
        Box::new(LinialBaseline),
        Box::new(KwBaseline),
        Box::new(DeltaLinearBaseline),
        Box::new(ArboricityLinearBaseline),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn all_standard_baselines_produce_legal_colorings() {
        let g = generators::union_of_random_forests(150, 3, 5).unwrap().with_shuffled_ids(2);
        for baseline in standard_baselines(7) {
            let outcome =
                baseline.run(&g).unwrap_or_else(|e| panic!("{} failed: {e}", baseline.name()));
            assert!(outcome.coloring.is_legal(&g), "{} produced an illegal coloring", outcome.name);
            assert!(outcome.colors >= 2);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = standard_baselines(1)
            .iter()
            .chain(congest_headliners(1).iter())
            .map(|b| b.name())
            .collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[test]
    fn headline_algorithms_color_legally_within_delta_plus_one() {
        let g = generators::star_forest_union(300, 2, 4, 9).unwrap().with_shuffled_ids(3);
        let headliners = headline_algorithms();
        assert_eq!(headliners.len(), 2);
        for algorithm in headliners {
            let outcome =
                algorithm.run(&g).unwrap_or_else(|e| panic!("{} failed: {e}", algorithm.name()));
            assert!(outcome.coloring.is_legal(&g), "{} is illegal", outcome.name);
            assert!(
                outcome.colors <= g.max_degree() + 1,
                "{} used {} colors but Δ + 1 = {}",
                outcome.name,
                outcome.colors,
                g.max_degree() + 1
            );
            assert!(outcome.deterministic);
        }
    }
}
