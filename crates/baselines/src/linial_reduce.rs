//! Linial's `O(Δ²)`-coloring followed by the folklore one-class-per-round reduction:
//! a deterministic `(Δ+1)`-coloring in `O(Δ² + log* n)` rounds.
//!
//! This is the "fast but quadratic palette" end of the deterministic spectrum that the paper's
//! Section 1 discusses: Linial's coloring itself is the `O(Δ²)`-colors state of the art for
//! `O(log* n)`-time algorithms, and reducing it to `Δ + 1` colors costs `Θ(Δ²)` extra rounds.

use arbcolor_decompose::error::DecomposeError;
use arbcolor_decompose::linial::linial_coloring;
use arbcolor_decompose::reduction::greedy_reduce;
use arbcolor_graph::{Coloring, Graph};
use arbcolor_runtime::RoundReport;

/// Result of [`linial_then_reduce`].
#[derive(Debug, Clone)]
pub struct LinialReduce {
    /// The Linial coloring (kept for the experiment tables).
    pub linial_colors: usize,
    /// The final `(Δ+1)`-coloring.
    pub coloring: Coloring,
    /// Total cost (Linial plus reduction).
    pub report: RoundReport,
}

/// Runs Linial's algorithm and reduces the palette to `Δ + 1`.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn linial_then_reduce(graph: &Graph) -> Result<LinialReduce, DecomposeError> {
    let linial = linial_coloring(graph)?;
    let linial_colors = linial.colors_used;
    let reduced = greedy_reduce(graph, &linial.coloring, graph.max_degree() as u64 + 1)?;
    Ok(LinialReduce {
        linial_colors,
        coloring: reduced.coloring,
        report: linial.report.then(reduced.report),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn reduces_to_delta_plus_one() {
        let g = generators::gnp(150, 0.06, 2).unwrap().with_shuffled_ids(3);
        let out = linial_then_reduce(&g).unwrap();
        assert!(out.coloring.is_legal(&g));
        assert!(out.coloring.distinct_colors() <= g.max_degree() + 1);
        assert!(out.linial_colors >= out.coloring.distinct_colors());
    }

    #[test]
    fn reduction_cost_scales_with_palette_not_n() {
        let g = generators::grid(25, 25).unwrap().with_shuffled_ids(1);
        let out = linial_then_reduce(&g).unwrap();
        // Δ = 4, Linial palette is O(Δ²); the total must be far below n rounds.
        assert!(out.report.rounds < 200, "rounds = {}", out.report.rounds);
    }
}
