//! Centralized sequential greedy coloring — the quality reference for palette sizes.

use arbcolor_graph::{Coloring, Graph};

/// Colors the vertices greedily in the given order (or `0..n` if `order` is `None`), always
/// choosing the smallest color not used by an already-colored neighbor.  Uses at most `Δ + 1`
/// colors.  This is a *centralized* reference, not a distributed algorithm: it provides the
/// palette-quality yardstick for the experiment tables.
pub fn sequential_greedy(graph: &Graph, order: Option<&[usize]>) -> Coloring {
    let default_order: Vec<usize> = (0..graph.n()).collect();
    let order = order.unwrap_or(&default_order);
    let mut colors: Vec<Option<u64>> = vec![None; graph.n()];
    for &v in order {
        let mut used: Vec<u64> = graph.neighbors(v).iter().filter_map(|&u| colors[u]).collect();
        used.sort_unstable();
        used.dedup();
        let mut choice = 0u64;
        for c in used {
            if c == choice {
                choice += 1;
            } else if c > choice {
                break;
            }
        }
        colors[v] = Some(choice);
    }
    Coloring::new(graph, colors.into_iter().map(|c| c.unwrap_or(0)).collect())
        .expect("one color per vertex")
}

/// Greedy coloring along a degeneracy ordering: uses at most `degeneracy + 1` colors, the best
/// palette any of the arboricity-based algorithms could hope for.
pub fn degeneracy_greedy(graph: &Graph) -> Coloring {
    let ordering = arbcolor_graph::degeneracy::degeneracy_ordering(graph);
    let reversed: Vec<usize> = ordering.order.iter().rev().copied().collect();
    sequential_greedy(graph, Some(&reversed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::{degeneracy, generators};

    #[test]
    fn greedy_is_legal_and_within_delta_plus_one() {
        let g = generators::gnp(200, 0.05, 3).unwrap();
        let c = sequential_greedy(&g, None);
        assert!(c.is_legal(&g));
        assert!(c.distinct_colors() <= g.max_degree() + 1);
    }

    #[test]
    fn degeneracy_greedy_is_within_degeneracy_plus_one() {
        let g = generators::barabasi_albert(300, 3, 4).unwrap();
        let c = degeneracy_greedy(&g);
        assert!(c.is_legal(&g));
        assert!(c.distinct_colors() <= degeneracy::degeneracy(&g) + 1);
    }

    #[test]
    fn greedy_on_complete_graph_uses_n_colors() {
        let g = generators::complete(7).unwrap();
        let c = sequential_greedy(&g, None);
        assert_eq!(c.distinct_colors(), 7);
    }
}
