//! Kuhn–Wattenhofer-style `(Δ+1)`-coloring: Linial's `O(Δ²)` palette followed by parallel
//! block halving (`O(Δ · log Δ)` reduction rounds instead of `Θ(Δ²)`).

use arbcolor_decompose::error::DecomposeError;
use arbcolor_decompose::linial::linial_coloring;
use arbcolor_decompose::reduction::kw_reduce;
use arbcolor_graph::{Coloring, Graph};
use arbcolor_runtime::RoundReport;

/// Result of [`kw_coloring`].
#[derive(Debug, Clone)]
pub struct KwColoring {
    /// The final `(Δ+1)`-coloring.
    pub coloring: Coloring,
    /// Total cost (Linial plus the halving passes).
    pub report: RoundReport,
}

/// Runs Linial followed by Kuhn–Wattenhofer palette halving.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn kw_coloring(graph: &Graph) -> Result<KwColoring, DecomposeError> {
    let linial = linial_coloring(graph)?;
    let reduced = kw_reduce(graph, &linial.coloring)?;
    Ok(KwColoring { coloring: reduced.coloring, report: linial.report.then(reduced.report) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn kw_reaches_delta_plus_one() {
        let g = generators::gnp(200, 0.05, 4).unwrap().with_shuffled_ids(5);
        let out = kw_coloring(&g).unwrap();
        assert!(out.coloring.is_legal(&g));
        assert!(out.coloring.distinct_colors() <= g.max_degree() + 1);
    }

    #[test]
    fn kw_beats_the_naive_reduction_on_high_degree_graphs() {
        use crate::linial_reduce::linial_then_reduce;
        let g = generators::complete_bipartite(40, 40).unwrap().with_shuffled_ids(6);
        let kw = kw_coloring(&g).unwrap();
        let naive = linial_then_reduce(&g).unwrap();
        assert!(kw.coloring.is_legal(&g));
        assert!(
            kw.report.rounds <= naive.report.rounds,
            "KW {} rounds vs naive {}",
            kw.report.rounds,
            naive.report.rounds
        );
    }
}
