//! Randomized `(Δ+1)`-coloring by repeated trials (Johansson '99-style).
//!
//! Each round every uncolored vertex proposes a uniformly random color from its remaining
//! palette; a proposal is kept if no uncolored neighbor proposed the same color and no
//! already-colored neighbor owns it.  With high probability all vertices are colored after
//! `O(log n)` rounds.  This is the randomized reference point of the §1.2 comparison: fast,
//! but not deterministic.

use arbcolor_graph::{Coloring, Graph};
use arbcolor_runtime::RoundReport;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Result of [`randomized_coloring`].
#[derive(Debug, Clone)]
pub struct RandomizedColoring {
    /// The legal coloring (at most `Δ + 1` colors).
    pub coloring: Coloring,
    /// Rounds and messages.
    pub report: RoundReport,
}

/// Runs the trial-based randomized `(Δ+1)`-coloring with the given seed.
pub fn randomized_coloring(graph: &Graph, seed: u64) -> RandomizedColoring {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = graph.n();
    let palette = graph.max_degree() as u64 + 1;
    let mut colors: Vec<Option<u64>> = vec![None; n];
    let mut report = RoundReport::zero();

    while colors.iter().any(Option::is_none) {
        report.rounds += 1;
        let proposals: Vec<Option<u64>> = (0..n)
            .map(|v| {
                if colors[v].is_some() {
                    return None;
                }
                let forbidden: Vec<u64> =
                    graph.neighbors(v).iter().filter_map(|&u| colors[u]).collect();
                let available: Vec<u64> = (0..palette).filter(|c| !forbidden.contains(c)).collect();
                Some(available[rng.gen_range(0..available.len())])
            })
            .collect();
        report.messages += 2 * graph.m();
        for v in 0..n {
            let Some(p) = proposals[v] else { continue };
            let conflict = graph
                .neighbors(v)
                .iter()
                .any(|&u| proposals.get(u).copied().flatten() == Some(p) || colors[u] == Some(p));
            if !conflict {
                colors[v] = Some(p);
            }
        }
    }
    let coloring = Coloring::new(
        graph,
        colors.into_iter().map(|c| c.expect("loop exits when all colored")).collect(),
    )
    .expect("one color per vertex");
    debug_assert!(coloring.is_legal(graph));
    RandomizedColoring { coloring, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn randomized_coloring_is_legal_and_fast() {
        let graphs = vec![
            generators::gnp(400, 0.02, 1).unwrap(),
            generators::complete(25).unwrap(),
            generators::grid(15, 15).unwrap(),
        ];
        for g in &graphs {
            let out = randomized_coloring(g, 3);
            assert!(out.coloring.is_legal(g));
            assert!(out.coloring.distinct_colors() <= g.max_degree() + 1);
            assert!(out.report.rounds <= 60, "rounds = {}", out.report.rounds);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::gnp(150, 0.05, 2).unwrap();
        assert_eq!(
            randomized_coloring(&g, 4).coloring.colors(),
            randomized_coloring(&g, 4).coloring.colors()
        );
    }
}
