//! Luby's randomized MIS (Luby '86; Alon–Babai–Itai '86).
//!
//! Each round, every live vertex draws a random priority; vertices that beat all live
//! neighbors join the MIS, and they and their neighbors leave the graph.  With high
//! probability the graph is empty after `O(log n)` rounds.  The PRNG is seeded so experiments
//! are reproducible.

use arbcolor_graph::Graph;
use arbcolor_runtime::RoundReport;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Result of [`luby_mis`].
#[derive(Debug, Clone)]
pub struct LubyResult {
    /// Membership flags.
    pub in_mis: Vec<bool>,
    /// Size of the independent set.
    pub size: usize,
    /// Rounds and messages (each round: one priority exchange plus one membership exchange,
    /// counted as two message waves in a single synchronous round for comparability with the
    /// deterministic algorithms).
    pub report: RoundReport,
}

impl LubyResult {
    /// Checks independence and maximality.
    pub fn is_valid(&self, graph: &Graph) -> bool {
        let independent = graph.edges().iter().all(|&(u, v)| !(self.in_mis[u] && self.in_mis[v]));
        let maximal = graph
            .vertices()
            .all(|v| self.in_mis[v] || graph.neighbors(v).iter().any(|&u| self.in_mis[u]));
        independent && maximal
    }
}

/// Runs Luby's algorithm with the given seed.
pub fn luby_mis(graph: &Graph, seed: u64) -> LubyResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = graph.n();
    let mut live = vec![true; n];
    let mut in_mis = vec![false; n];
    let mut report = RoundReport::zero();

    while live.iter().any(|&l| l) {
        report.rounds += 1;
        let priorities: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        // Count the two message exchanges (priorities, then join notifications).
        report.messages +=
            2 * graph.edges().iter().filter(|&&(u, v)| live[u] && live[v]).count() * 2;
        let joining: Vec<usize> = (0..n)
            .filter(|&v| {
                live[v]
                    && graph.neighbors(v).iter().all(|&u| {
                        !live[u]
                            || priorities[v] > priorities[u]
                            || (priorities[v] == priorities[u] && graph.id(v) > graph.id(u))
                    })
            })
            .collect();
        for &v in &joining {
            in_mis[v] = true;
            live[v] = false;
            for &u in graph.neighbors(v) {
                live[u] = false;
            }
        }
        if joining.is_empty() && live.iter().any(|&l| l) {
            // Extremely unlikely; resolve by letting the highest-identifier live vertex join.
            let v =
                (0..n).filter(|&v| live[v]).max_by_key(|&v| graph.id(v)).expect("some live vertex");
            in_mis[v] = true;
            live[v] = false;
            for &u in graph.neighbors(v) {
                live[u] = false;
            }
        }
    }
    let size = in_mis.iter().filter(|&&b| b).count();
    LubyResult { in_mis, size, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn luby_produces_a_valid_mis_on_various_graphs() {
        let graphs = vec![
            generators::gnp(300, 0.03, 1).unwrap(),
            generators::union_of_random_forests(300, 3, 2).unwrap(),
            generators::complete(30).unwrap(),
            generators::star(100).unwrap(),
        ];
        for g in &graphs {
            let result = luby_mis(g, 7);
            assert!(result.is_valid(g));
            assert!(result.size >= 1);
        }
    }

    #[test]
    fn luby_rounds_are_logarithmic_in_practice() {
        let g = generators::gnp(2000, 0.005, 3).unwrap();
        let result = luby_mis(&g, 11);
        assert!(result.is_valid(&g));
        assert!(result.report.rounds <= 30, "rounds = {}", result.report.rounds);
    }

    #[test]
    fn luby_is_deterministic_per_seed() {
        let g = generators::gnp(200, 0.05, 5).unwrap();
        assert_eq!(luby_mis(&g, 9).in_mis, luby_mis(&g, 9).in_mis);
    }
}
