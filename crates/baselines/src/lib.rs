//! Baseline algorithms the paper compares against (Section 1.2 and Related Work).
//!
//! | Baseline | Guarantee | Where it comes from |
//! |---|---|---|
//! | [`greedy::sequential_greedy`] | `Δ+1` colors, centralized (lower bound on palette quality) | folklore |
//! | [`luby::luby_mis`] | MIS in `O(log n)` rounds w.h.p. | Luby '86 / Alon–Babai–Itai '86 |
//! | [`randomized::randomized_coloring`] | `Δ+1` colors in `O(log n)` rounds w.h.p. | Johansson '99 / folklore trial coloring |
//! | [`linial_reduce::linial_then_reduce`] | `Δ+1` colors in `O(Δ² + log* n)` rounds | Linial '87 + folklore reduction |
//! | [`kw::kw_coloring`] | `Δ+1` colors in `O(Δ log Δ·(log* n)) `-ish rounds | Kuhn–Wattenhofer '06 |
//! | [`arbcolor_decompose::delta_linear::delta_plus_one_coloring`] | `Δ+1` colors, time linear in `Δ` | Barenboim–Elkin '09 / Kuhn '09 |
//! | [`arbcolor_decompose::arb_linear::arboricity_linear_coloring`] | `O(a)` colors in `poly(a)·log n` rounds | Barenboim–Elkin '08 |
//!
//! The [`registry`] module exposes all of them (plus the paper's own algorithms, injected by
//! the caller) behind a single trait so the experiment harness can tabulate colors and rounds
//! uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod kw;
pub mod linial_reduce;
pub mod luby;
pub mod randomized;
pub mod registry;

pub use registry::{BaselineOutcome, ColoringBaseline};
