//! Substrate algorithms for the `arbcolor` project.
//!
//! Every procedure in the paper stands on machinery developed in earlier papers.  This crate
//! implements that machinery from scratch, on top of the LOCAL-model simulator of
//! [`arbcolor_runtime`]:
//!
//! | Module | Prior work | Used for |
//! |---|---|---|
//! | [`log_star`] | — | iterated-logarithm utilities (`log* n`) |
//! | [`algebraic`] | Linial FOCS'87, Kuhn SPAA'09 | low-agreement polynomial function families over prime fields |
//! | [`linial`] | Linial FOCS'87 | `O(Δ²)`-coloring in `O(log* n)` rounds |
//! | [`defective`] | Kuhn SPAA'09 (Lemma 2.1 of the paper) | `⌊Δ/p⌋`-defective `O(p²)`-coloring in `O(log* n)` rounds |
//! | [`hpartition`] | Barenboim–Elkin PODC'08 (Lemma 2.3) | H-partitions of degree `⌊(2+ε)a⌋` in `O(log n)` rounds |
//! | [`forests`] | Barenboim–Elkin PODC'08 (Lemmas 2.2(2), 2.4, 2.5) | acyclic orientations with out-degree `O(a)` and forests decompositions |
//! | [`reduction`] | folklore + Kuhn–Wattenhofer PODC'06 | color-count reductions and greedy class sweeps |
//! | [`arb_linear`] | Barenboim–Elkin PODC'08 (Lemma 2.2(1)) | `(⌊(2+ε)a⌋+1)`-coloring of bounded-arboricity graphs |
//! | [`cole_vishkin`] | Cole–Vishkin 1986 | 3-coloring of rooted forests in `O(log* n)` rounds |
//! | [`delta_linear`] | Barenboim–Elkin STOC'09 / Kuhn SPAA'09 | `(Δ+1)`-coloring in time linear in `Δ` |
//!
//! All functions return both their combinatorial output and a cost ledger
//! ([`arbcolor_runtime::CostLedger`]) recording simulated LOCAL rounds per phase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebraic;
pub mod arb_linear;
pub mod cole_vishkin;
pub mod defective;
pub mod delta_linear;
pub mod error;
pub mod forests;
pub mod hpartition;
pub mod linial;
pub mod log_star;
pub mod reduction;

pub use error::DecomposeError;
pub use hpartition::HPartition;
