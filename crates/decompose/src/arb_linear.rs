//! Legal `(⌊(2+ε)a⌋ + 1)`-coloring of bounded-arboricity graphs
//! (Lemma 2.2(1) of the paper; Barenboim–Elkin PODC'08).
//!
//! The algorithm computes an H-partition of degree `A = ⌊(2+ε)a⌋` and then colors the buckets
//! from the last one (`H_ℓ`) down to the first: when bucket `i` is processed, every vertex of
//! `H_i` has at most `A` neighbors in buckets `≥ i`, and all of its already-colored neighbors
//! lie in buckets `> i`, so a palette of `A + 1` colors always contains a free color.  Within
//! a bucket, a Linial coloring of the bucket subgraph provides the schedule for a greedy
//! sweep.
//!
//! **Deviation from the paper.**  BE'08 colors each bucket in `O(a + log* n)` rounds, giving
//! `O(a log n)` total.  Our within-bucket sweep walks the `O(A²)` Linial classes one round
//! each, so a bucket costs `O(a² + log* n)` rounds and the total is `O((a² + log* n) log n)`.
//! The `poly(a)·log n` shape of every statement that consumes this lemma (it is only ever
//! applied with `a ≤ p`, a small parameter) is unchanged; EXPERIMENTS.md reports the measured
//! constants.

use crate::error::DecomposeError;
use crate::hpartition::h_partition;
use crate::linial::linial_coloring;
use crate::reduction::{run_greedy_sweep, SweepSchedule, SweepSlot};
use arbcolor_graph::{Coloring, Graph, InducedSubgraph};
use arbcolor_runtime::{obs, CostLedger, RoundReport};

/// Output of [`arboricity_linear_coloring`].
#[derive(Debug, Clone)]
pub struct ArbLinearColoring {
    /// The legal coloring; colors lie in `0..=degree_bound`.
    pub coloring: Coloring,
    /// The palette bound `⌊(2+ε)a⌋ + 1`.
    pub palette: u64,
    /// Total LOCAL cost.
    pub report: RoundReport,
    /// Per-phase cost breakdown.
    pub ledger: CostLedger,
}

/// Computes a legal coloring with `⌊(2+ε)a⌋ + 1` colors, given an upper bound `arboricity ≥ a`.
///
/// # Errors
///
/// Propagates H-partition errors (in particular [`DecomposeError::ArboricityBoundTooSmall`]
/// when `arboricity` under-estimates the graph) and sweep errors.
///
/// # Examples
///
/// ```
/// use arbcolor_graph::generators;
/// use arbcolor_decompose::arb_linear::arboricity_linear_coloring;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::union_of_random_forests(200, 2, 1)?.with_shuffled_ids(4);
/// let out = arboricity_linear_coloring(&g, 2, 1.0)?;
/// assert!(out.coloring.is_legal(&g));
/// assert!(out.coloring.max_color() < out.palette);
/// # Ok(())
/// # }
/// ```
pub fn arboricity_linear_coloring(
    graph: &Graph,
    arboricity: usize,
    epsilon: f64,
) -> Result<ArbLinearColoring, DecomposeError> {
    let mut ledger = CostLedger::new();
    let partition = h_partition(graph, arboricity, epsilon)?;
    ledger.push("h-partition", partition.report);
    obs::record_leaf("h-partition", partition.report);
    let palette = partition.degree_bound as u64 + 1;

    let mut colors: Vec<Option<u64>> = vec![None; graph.n()];
    let buckets = partition.buckets();

    // Process buckets from the last to the first.
    for bucket_vertices in buckets.iter().rev() {
        if bucket_vertices.is_empty() {
            continue;
        }
        let sub = InducedSubgraph::new(graph, bucket_vertices);

        // Schedule within the bucket: Linial classes of the bucket subgraph.
        let linial = linial_coloring(&sub.graph)?;
        ledger.push("bucket-linial", linial.report);
        obs::record_leaf("bucket-linial", linial.report);
        let (schedule, _) = linial.coloring.normalized();

        // One round in which already-colored neighbors announce their colors to the bucket.
        let announce = RoundReport::new(1, 2 * graph.m());
        ledger.push("collect-neighbor-colors", announce);
        obs::record_leaf("collect-neighbor-colors", announce);

        let slots: Vec<SweepSlot> = (0..sub.graph.n())
            .map(|child| {
                let parent_vertex = sub.map.to_parent(child);
                let forbidden: Vec<u64> =
                    graph.neighbors(parent_vertex).iter().filter_map(|&u| colors[u]).collect();
                SweepSlot {
                    slot: schedule.color(child) as usize,
                    palette_offset: 0,
                    palette_size: palette,
                    forbidden,
                }
            })
            .collect();
        let (bucket_colors, sweep_report) =
            run_greedy_sweep(&sub.graph, &SweepSchedule::new(&slots))?;
        ledger.push("bucket-sweep", sweep_report);
        obs::record_leaf("bucket-sweep", sweep_report);
        for (child, &c) in bucket_colors.iter().enumerate() {
            colors[sub.map.to_parent(child)] = Some(c);
        }
    }

    let filled: Vec<u64> = colors
        .into_iter()
        .map(|c| c.expect("every vertex belongs to exactly one bucket"))
        .collect();
    let coloring = Coloring::new(graph, filled)?;
    if !coloring.is_legal(graph) {
        return Err(DecomposeError::InvariantViolated {
            reason: "arboricity-linear coloring produced a monochromatic edge".to_string(),
        });
    }
    let report = ledger.total();
    Ok(ArbLinearColoring { coloring, palette, report, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::{degeneracy, generators};

    #[test]
    fn colors_stay_within_palette_on_forest_unions() {
        for k in [1usize, 2, 3] {
            let g =
                generators::union_of_random_forests(200, k, k as u64).unwrap().with_shuffled_ids(5);
            let out = arboricity_linear_coloring(&g, k, 1.0).unwrap();
            assert!(out.coloring.is_legal(&g));
            assert!(out.coloring.max_color() < out.palette);
            assert_eq!(out.palette, (3 * k).max(2 * k + 1) as u64 + 1);
        }
    }

    #[test]
    fn works_on_star_forests_with_huge_degree() {
        let g = generators::star_forest_union(400, 2, 3, 6).unwrap().with_shuffled_ids(7);
        let a = degeneracy::degeneracy(&g).max(1);
        let out = arboricity_linear_coloring(&g, a, 1.0).unwrap();
        assert!(out.coloring.is_legal(&g));
        // The palette is O(a), far below Δ + 1.
        assert!(out.palette < g.max_degree() as u64);
    }

    #[test]
    fn ledger_contains_per_bucket_phases() {
        let g = generators::union_of_random_forests(150, 2, 9).unwrap();
        let out = arboricity_linear_coloring(&g, 2, 1.0).unwrap();
        assert!(out.ledger.phases().iter().any(|p| p.name == "h-partition"));
        assert!(out.ledger.phases().iter().any(|p| p.name == "bucket-sweep"));
        assert_eq!(out.ledger.total(), out.report);
    }

    #[test]
    fn underestimated_arboricity_is_an_error() {
        let g = generators::complete(20).unwrap();
        assert!(matches!(
            arboricity_linear_coloring(&g, 1, 1.0),
            Err(DecomposeError::ArboricityBoundTooSmall { .. })
        ));
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = arbcolor_graph::Graph::empty(4);
        let out = arboricity_linear_coloring(&g, 1, 1.0).unwrap();
        assert!(out.coloring.is_legal(&g));
    }
}
