//! H-partitions (Barenboim–Elkin PODC'08; Lemma 2.3 of the paper).
//!
//! An *H-partition* of degree `A` splits the vertex set into buckets `H_1, …, H_ℓ`,
//! `ℓ = O(log n)`, such that every vertex of `H_i` has at most `A` neighbors in
//! `H_i ∪ H_{i+1} ∪ … ∪ H_ℓ`.  For a graph of arboricity `a` and any `ε > 0`, choosing
//! `A = ⌊(2+ε)·a⌋` works: the average degree is below `2a`, so in every iteration at least an
//! `ε/(2+ε)` fraction of the remaining vertices have remaining degree ≤ `A` and can be peeled
//! off together, giving `ℓ = O(log n)` iterations of one round each.

use crate::error::DecomposeError;
use arbcolor_graph::{Graph, Vertex};
use arbcolor_runtime::{run_algorithm, Algorithm, Inbox, NodeCtx, Outbox, RoundReport, Status};
use serde::{Deserialize, Serialize};

/// The distributed peeling algorithm computing an H-partition.
#[derive(Debug, Clone, Copy)]
pub struct HPartitionAlgorithm {
    /// Degree threshold `A`: a vertex joins the current bucket as soon as its number of
    /// not-yet-assigned neighbors is at most `A`.
    pub threshold: usize,
    /// Upper bound on the number of peeling iterations before giving up.
    pub max_iterations: usize,
}

/// Node program of [`HPartitionAlgorithm`].  The only message is "I am leaving now".
#[derive(Debug, Clone)]
pub struct HPartitionNode {
    threshold: usize,
    max_iterations: usize,
    remaining_neighbors: usize,
    bucket: Option<usize>,
    iteration: usize,
}

impl arbcolor_runtime::node::NodeProgram for HPartitionNode {
    type Msg = ();
    type Output = Option<usize>;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<()>) -> Status {
        self.remaining_neighbors = ctx.degree;
        self.iteration = 1;
        if self.remaining_neighbors <= self.threshold {
            self.bucket = Some(1);
            outbox.broadcast(());
            Status::Halted
        } else {
            // `iteration` is the bucket number, so the count must advance every round even
            // when no neighbor leaves: self-schedule while active.
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, ()>, outbox: &mut Outbox<()>) -> Status {
        self.remaining_neighbors = self.remaining_neighbors.saturating_sub(inbox.len());
        self.iteration += 1;
        if self.remaining_neighbors <= self.threshold {
            self.bucket = Some(self.iteration);
            outbox.broadcast(());
            return Status::Halted;
        }
        if self.iteration >= self.max_iterations {
            // Give up: the threshold is too small for this graph.  Report failure through the
            // output rather than looping forever.
            return Status::Halted;
        }
        ctx.wake_next_round();
        Status::Active
    }

    fn output(&self, _ctx: &NodeCtx) -> Option<usize> {
        self.bucket
    }
}

impl Algorithm for HPartitionAlgorithm {
    type Node = HPartitionNode;

    fn node(&self, _ctx: &NodeCtx) -> HPartitionNode {
        HPartitionNode {
            threshold: self.threshold,
            max_iterations: self.max_iterations,
            remaining_neighbors: 0,
            bucket: None,
            iteration: 0,
        }
    }

    fn name(&self) -> &'static str {
        "h-partition"
    }
}

/// An H-partition of a specific graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HPartition {
    /// Bucket index of every vertex (1-based, as in the paper).
    pub h_index: Vec<usize>,
    /// The degree threshold `A` the partition was computed with.
    pub degree_bound: usize,
    /// Number of buckets `ℓ`.
    pub num_buckets: usize,
    /// LOCAL cost of computing the partition.
    pub report: RoundReport,
}

impl HPartition {
    /// The bucket (1-based) of vertex `v`.
    pub fn bucket_of(&self, v: Vertex) -> usize {
        self.h_index[v]
    }

    /// Groups the vertices by bucket; entry `i` holds bucket `i + 1`.
    pub fn buckets(&self) -> Vec<Vec<Vertex>> {
        let mut buckets = vec![Vec::new(); self.num_buckets];
        for (v, &h) in self.h_index.iter().enumerate() {
            buckets[h - 1].push(v);
        }
        buckets
    }

    /// Checks the defining property: every vertex has at most `degree_bound` neighbors in its
    /// own or a later bucket.  Returns the worst violation if any.
    pub fn verify(&self, graph: &Graph) -> Result<(), DecomposeError> {
        for v in graph.vertices() {
            let later =
                graph.neighbors(v).iter().filter(|&&u| self.h_index[u] >= self.h_index[v]).count();
            if later > self.degree_bound {
                return Err(DecomposeError::InvariantViolated {
                    reason: format!(
                        "vertex {v} has {later} neighbors in buckets ≥ {} (bound {})",
                        self.h_index[v], self.degree_bound
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Default `ε` used when deriving the degree threshold from an arboricity bound.
pub const DEFAULT_EPSILON: f64 = 1.0;

/// The degree threshold `⌊(2+ε)·a⌋` used by the paper, never below `2a + 1` so progress is
/// guaranteed even for `a = 1` and tiny `ε`.
pub fn degree_threshold(arboricity: usize, epsilon: f64) -> usize {
    let a = arboricity.max(1);
    (((2.0 + epsilon) * a as f64).floor() as usize).max(2 * a + 1)
}

/// Computes an H-partition with degree threshold `⌊(2+ε)·a⌋` in `O(log n)` rounds.
///
/// `arboricity` must be an upper bound on the arboricity of `graph` (the degeneracy works);
/// `epsilon` trades the bucket degree bound against the number of buckets.
///
/// # Errors
///
/// Returns [`DecomposeError::ArboricityBoundTooSmall`] if some vertices could not be assigned
/// (which means `arboricity` under-estimated the true arboricity), and
/// [`DecomposeError::InvalidParameter`] for non-positive `epsilon`.
///
/// # Examples
///
/// ```
/// use arbcolor_graph::generators;
/// use arbcolor_decompose::hpartition::h_partition;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::union_of_random_forests(300, 3, 1)?;
/// let hp = h_partition(&g, 3, 1.0)?;
/// hp.verify(&g)?;
/// # Ok(())
/// # }
/// ```
pub fn h_partition(
    graph: &Graph,
    arboricity: usize,
    epsilon: f64,
) -> Result<HPartition, DecomposeError> {
    if epsilon <= 0.0 || epsilon.is_nan() {
        return Err(DecomposeError::InvalidParameter {
            reason: format!("epsilon must be positive, got {epsilon}"),
        });
    }
    let threshold = degree_threshold(arboricity, epsilon);
    // Each iteration removes at least an ε/(2+ε) fraction of the surviving vertices, so
    // log_{1/(1-ε/(2+ε))} n iterations suffice; add slack for rounding.
    let shrink = 1.0 - epsilon / (2.0 + epsilon);
    let max_iterations = if graph.n() <= 1 {
        1
    } else {
        ((graph.n() as f64).ln() / (1.0 / shrink).ln()).ceil() as usize + 2
    };

    let algorithm = HPartitionAlgorithm { threshold, max_iterations };
    let result = run_algorithm(graph, &algorithm)?;

    let mut h_index = vec![0usize; graph.n()];
    let mut unassigned = 0usize;
    let mut num_buckets = 0usize;
    for (v, bucket) in result.outputs.iter().enumerate() {
        match bucket {
            Some(b) => {
                h_index[v] = *b;
                num_buckets = num_buckets.max(*b);
            }
            None => unassigned += 1,
        }
    }
    if unassigned > 0 {
        return Err(DecomposeError::ArboricityBoundTooSmall { threshold, remaining: unassigned });
    }
    Ok(HPartition { h_index, degree_bound: threshold, num_buckets, report: result.report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::{degeneracy, generators};

    #[test]
    fn partition_of_forest_union_verifies() {
        for k in [1usize, 2, 4] {
            let g = generators::union_of_random_forests(250, k, 3).unwrap();
            let hp = h_partition(&g, k, 1.0).unwrap();
            hp.verify(&g).unwrap();
            assert_eq!(hp.h_index.iter().filter(|&&h| h == 0).count(), 0);
            assert!(hp.num_buckets >= 1);
            let buckets = hp.buckets();
            let total: usize = buckets.iter().map(Vec::len).sum();
            assert_eq!(total, g.n());
        }
    }

    #[test]
    fn bucket_count_grows_logarithmically() {
        let small = generators::union_of_random_forests(100, 2, 5).unwrap();
        let large = generators::union_of_random_forests(3200, 2, 5).unwrap();
        let hp_small = h_partition(&small, 2, 1.0).unwrap();
        let hp_large = h_partition(&large, 2, 1.0).unwrap();
        // 32x more vertices should cost only ~log(32) ≈ 5 extra buckets (allow slack).
        assert!(
            hp_large.num_buckets <= hp_small.num_buckets + 10,
            "small = {}, large = {}",
            hp_small.num_buckets,
            hp_large.num_buckets
        );
        assert!(hp_large.report.rounds <= hp_large.num_buckets + 2);
    }

    #[test]
    fn too_small_arboricity_bound_is_reported() {
        let g = generators::complete(30).unwrap();
        let err = h_partition(&g, 1, 0.5).unwrap_err();
        assert!(matches!(err, DecomposeError::ArboricityBoundTooSmall { .. }));
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let g = generators::path(5).unwrap();
        assert!(h_partition(&g, 1, 0.0).is_err());
        assert!(h_partition(&g, 1, f64::NAN).is_err());
    }

    #[test]
    fn degenerate_graphs() {
        let empty = arbcolor_graph::Graph::empty(7);
        let hp = h_partition(&empty, 1, 1.0).unwrap();
        assert_eq!(hp.num_buckets, 1);
        hp.verify(&empty).unwrap();

        let single = arbcolor_graph::Graph::empty(1);
        let hp = h_partition(&single, 1, 1.0).unwrap();
        assert_eq!(hp.num_buckets, 1);
    }

    #[test]
    fn works_with_degeneracy_as_arboricity_bound() {
        let g = generators::gnp(200, 0.05, 9).unwrap();
        let d = degeneracy::degeneracy(&g);
        let hp = h_partition(&g, d, 1.0).unwrap();
        hp.verify(&g).unwrap();
        // The degree bound is (2+ε)·d = 3d with ε = 1.
        assert_eq!(hp.degree_bound, degree_threshold(d, 1.0));
    }

    #[test]
    fn threshold_is_at_least_2a_plus_1() {
        assert_eq!(degree_threshold(1, 0.01), 3);
        assert_eq!(degree_threshold(4, 1.0), 12);
        assert_eq!(degree_threshold(10, 0.5), 25);
    }
}
