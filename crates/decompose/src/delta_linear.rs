//! Deterministic `(Δ+1)`-coloring in time roughly linear in `Δ`
//! (Barenboim–Elkin STOC'09 / Kuhn SPAA'09 style).
//!
//! This is the strongest *degree*-based deterministic baseline the paper compares against in
//! §1.2.  The structure follows BE'09/Kuhn'09: compute a `⌊Δ/2⌋`-defective coloring with a
//! small palette (one `O(log* n)` recoloring pass), recurse in parallel on every color class
//! (whose maximum degree has halved), give the recursive colorings disjoint palettes, and
//! finally squeeze the palette back to `Δ + 1` with Kuhn–Wattenhofer reduction.  The recursion
//! depth is `log Δ`, each level costs `O(Δ)` reduction rounds plus `O(log* n)`, so the total
//! is `O(Δ log Δ + log* n · log Δ)` rounds — the same "linear in Δ up to a logarithmic factor"
//! regime as the published `O(Δ + log* n)` algorithms, and exponentially worse than the
//! paper's `O(log a · log n)` whenever `Δ` is large, which is exactly the comparison the
//! experiments demonstrate.

use crate::defective::defective_coloring;
use crate::error::DecomposeError;
use crate::linial::linial_coloring;
use crate::reduction::{greedy_reduce, kw_reduce};
use arbcolor_graph::{Coloring, Graph};
use arbcolor_runtime::{parallel_max, CostLedger, RoundReport};
use std::collections::HashMap;

/// Output of [`delta_plus_one_coloring`].
#[derive(Debug, Clone)]
pub struct DeltaPlusOne {
    /// A legal coloring with at most `Δ + 1` colors.
    pub coloring: Coloring,
    /// Total LOCAL cost.
    pub report: RoundReport,
    /// Per-phase breakdown.
    pub ledger: CostLedger,
}

/// Computes a `(Δ+1)`-coloring in time roughly linear in `Δ`.
///
/// # Errors
///
/// Propagates substrate errors.
///
/// # Examples
///
/// ```
/// use arbcolor_graph::generators;
/// use arbcolor_decompose::delta_linear::delta_plus_one_coloring;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp(80, 0.1, 1)?.with_shuffled_ids(2);
/// let out = delta_plus_one_coloring(&g)?;
/// assert!(out.coloring.is_legal(&g));
/// assert!(out.coloring.distinct_colors() <= g.max_degree() + 1);
/// # Ok(())
/// # }
/// ```
pub fn delta_plus_one_coloring(graph: &Graph) -> Result<DeltaPlusOne, DecomposeError> {
    let (coloring, ledger) = color_recursive(graph, 0)?;
    let report = ledger.total();
    Ok(DeltaPlusOne { coloring, report, ledger })
}

/// Maximum recursion depth guard (Δ halves every level, so 64 levels is unreachable).
const MAX_DEPTH: usize = 64;

fn color_recursive(graph: &Graph, depth: usize) -> Result<(Coloring, CostLedger), DecomposeError> {
    let mut ledger = CostLedger::new();
    let delta = graph.max_degree();

    if depth >= MAX_DEPTH {
        return Err(DecomposeError::InvariantViolated {
            reason: "delta-linear coloring exceeded its recursion depth bound".to_string(),
        });
    }

    // Base case: small degree — Linial followed by a one-class-per-round reduction.
    if delta <= 3 || graph.n() <= 16 {
        let linial = linial_coloring(graph)?;
        ledger.push("base-linial", linial.report);
        let reduced = greedy_reduce(graph, &linial.coloring, delta as u64 + 1)?;
        ledger.push("base-reduce", reduced.report);
        return Ok((reduced.coloring, ledger));
    }

    // Split into color classes of maximum degree ≤ ⌊Δ/2⌋.
    let defective = defective_coloring(graph, 2)?;
    ledger.push("defective-split", defective.output.report);
    let partition = defective.output.coloring;
    let class_subgraphs = partition.class_subgraphs(graph);

    // Recurse on every class in parallel (disjoint subgraphs run concurrently).
    let child_palette = (delta / 2) as u64 + 1;
    let mut class_colorings = HashMap::new();
    let mut branch_reports = Vec::new();
    for (class_color, sub) in class_subgraphs {
        let (child_coloring, child_ledger) = color_recursive(&sub.graph, depth + 1)?;
        debug_assert!(child_coloring.max_color() < child_palette);
        branch_reports.push(child_ledger.total());
        class_colorings.insert(class_color, (sub, child_coloring));
    }
    ledger.push("recurse-parallel", parallel_max(&branch_reports));

    // Merge with disjoint palettes and reduce back to Δ + 1.
    let combined =
        Coloring::combine_with_palettes(graph, &partition, &class_colorings, child_palette);
    debug_assert!(combined.is_legal(graph));
    let reduced = kw_reduce(graph, &combined)?;
    ledger.push("kw-reduce", reduced.report);
    Ok((reduced.coloring, ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn produces_delta_plus_one_colorings() {
        let graphs = vec![
            generators::gnp(150, 0.08, 1).unwrap().with_shuffled_ids(2),
            generators::complete(20).unwrap().with_shuffled_ids(3),
            generators::grid(12, 12).unwrap().with_shuffled_ids(4),
            generators::union_of_random_forests(200, 3, 5).unwrap().with_shuffled_ids(6),
        ];
        for g in &graphs {
            let out = delta_plus_one_coloring(g).unwrap();
            assert!(out.coloring.is_legal(g));
            assert!(
                out.coloring.distinct_colors() <= g.max_degree() + 1,
                "used {} colors with Δ = {}",
                out.coloring.distinct_colors(),
                g.max_degree()
            );
        }
    }

    #[test]
    fn rounds_grow_with_delta_not_with_n() {
        // Same maximum degree, different sizes: rounds should be in the same ballpark.
        let small = generators::grid(8, 8).unwrap().with_shuffled_ids(1);
        let large = generators::grid(30, 30).unwrap().with_shuffled_ids(1);
        let r_small = delta_plus_one_coloring(&small).unwrap().report.rounds;
        let r_large = delta_plus_one_coloring(&large).unwrap().report.rounds;
        assert!(r_large <= 4 * r_small.max(8), "small {r_small}, large {r_large}");
    }

    #[test]
    fn ledger_phases_cover_the_recursion() {
        let g = generators::gnp(120, 0.1, 7).unwrap().with_shuffled_ids(8);
        let out = delta_plus_one_coloring(&g).unwrap();
        let names: Vec<&str> = out.ledger.phases().iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"defective-split") || names.contains(&"base-linial"));
        assert_eq!(out.ledger.total(), out.report);
    }

    #[test]
    fn handles_edgeless_and_tiny_graphs() {
        let empty = arbcolor_graph::Graph::empty(5);
        let out = delta_plus_one_coloring(&empty).unwrap();
        assert!(out.coloring.distinct_colors() <= 1);

        let single_edge = arbcolor_graph::Graph::from_edges(2, [(0, 1)]).unwrap();
        let out = delta_plus_one_coloring(&single_edge).unwrap();
        assert!(out.coloring.is_legal(&single_edge));
        assert_eq!(out.coloring.distinct_colors(), 2);
    }
}
