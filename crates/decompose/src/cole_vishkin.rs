//! Cole–Vishkin coloring of rooted forests in `O(log* n)` rounds.
//!
//! Given a rooted forest (every vertex knows its parent, if any), the classical bit-trick of
//! Cole and Vishkin reduces an `n`-coloring (the identifiers) to a 6-coloring in `O(log* n)`
//! rounds: in every iteration each vertex compares the binary representation of its current
//! color with its parent's, finds the lowest differing bit position `i` with value `b`, and
//! adopts `2i + b` as its new color.  Three more shift-down/recolor iterations bring the
//! palette down to 3.
//!
//! This substrate is used by the baseline suite (forests can be colored with 3 colors, far
//! below `Δ + 1`) and by tests of the forests decomposition.

use crate::error::DecomposeError;
use arbcolor_graph::{Coloring, Graph, Vertex};
use arbcolor_runtime::{run_algorithm, Algorithm, Inbox, NodeCtx, Outbox, RoundReport, Status};

/// Number of iterations after which the Cole–Vishkin contraction is guaranteed to have
/// reached at most 6 colors for any 64-bit identifier space (`log* 2^64` plus slack).
const CONTRACTION_ROUNDS: usize = 10;

/// Message exchanged by the Cole–Vishkin node program: the sender's current color.
type CvMsg = u64;

/// Phase of the node program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CvPhase {
    /// Iterated bit contraction down to ≤ 6 colors.
    Contract(usize),
    /// Shift-down plus recoloring of class `c` (c = 5, 4, 3 in turn).
    ShiftDown(u64),
    /// Recolor vertices of class `c` after the shift-down.
    Recolor(u64),
    /// Finished.
    Done,
}

/// Node program of the Cole–Vishkin recoloring (driven by [`cole_vishkin_forest_coloring`]).
#[derive(Debug, Clone)]
pub struct ColeVishkinNode {
    parent_port: Option<usize>,
    color: u64,
    parent_color: Option<u64>,
    children_color: Option<u64>,
    phase: CvPhase,
}

impl ColeVishkinNode {
    /// One contraction step: combine own color with parent color (roots use a synthetic
    /// parent color differing at bit 0).
    fn contract(&mut self) {
        let parent_color = self.parent_color.unwrap_or(self.color ^ 1);
        let diff = self.color ^ parent_color;
        let bit = diff.trailing_zeros() as u64;
        let value = (self.color >> bit) & 1;
        self.color = 2 * bit + value;
    }
}

impl arbcolor_runtime::node::NodeProgram for ColeVishkinNode {
    type Msg = CvMsg;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<CvMsg>) -> Status {
        self.color = ctx.id;
        outbox.broadcast(self.color);
        // The phase machine advances every round even when a vertex receives no mail (e.g.
        // an isolated root), so self-schedule while active.
        ctx.wake_next_round();
        Status::Active
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        inbox: &Inbox<'_, CvMsg>,
        outbox: &mut Outbox<CvMsg>,
    ) -> Status {
        // Record the parent's and (any) child's current color from the incoming messages.
        self.parent_color = self.parent_port.and_then(|p| inbox.from_port(p).copied());
        self.children_color =
            inbox.iter().find(|&(port, _)| Some(port) != self.parent_port).map(|(_, &c)| c);

        match self.phase {
            CvPhase::Contract(step) => {
                self.contract();
                self.phase = if step + 1 < CONTRACTION_ROUNDS {
                    CvPhase::Contract(step + 1)
                } else {
                    CvPhase::ShiftDown(5)
                };
                outbox.broadcast(self.color);
                ctx.wake_next_round();
                Status::Active
            }
            CvPhase::ShiftDown(class) => {
                // Shift down: adopt the parent's color; roots pick a small color different
                // from their own current color so no color above 2 is ever re-introduced at
                // the root.
                self.color = match self.parent_color {
                    Some(pc) => pc,
                    None => (0..3u64).find(|&c| c != self.color).expect("two of {0,1,2} differ"),
                };
                self.phase = CvPhase::Recolor(class);
                outbox.broadcast(self.color);
                ctx.wake_next_round();
                Status::Active
            }
            CvPhase::Recolor(class) => {
                if self.color == class {
                    // After a shift-down all children of a vertex share one color, so the
                    // neighborhood uses at most two colors and a free color exists in {0,1,2}.
                    let parent = self.parent_color;
                    let child = self.children_color;
                    self.color = (0..3u64)
                        .find(|c| Some(*c) != parent && Some(*c) != child)
                        .expect("three colors always contain a free one");
                }
                if class > 3 {
                    self.phase = CvPhase::ShiftDown(class - 1);
                    outbox.broadcast(self.color);
                    ctx.wake_next_round();
                    Status::Active
                } else {
                    self.phase = CvPhase::Done;
                    Status::Halted
                }
            }
            CvPhase::Done => Status::Halted,
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.color
    }
}

/// The port-resolved Cole–Vishkin algorithm (constructed by
/// [`cole_vishkin_forest_coloring`], which translates parent pointers into ports).
#[derive(Debug, Clone)]
struct ColeVishkinPorts {
    parent_port: Vec<Option<usize>>,
}

impl Algorithm for ColeVishkinPorts {
    type Node = ColeVishkinNode;

    fn node(&self, ctx: &NodeCtx) -> ColeVishkinNode {
        ColeVishkinNode {
            parent_port: self.parent_port[ctx.vertex],
            color: ctx.id,
            parent_color: None,
            children_color: None,
            phase: CvPhase::Contract(0),
        }
    }

    fn name(&self) -> &'static str {
        "cole-vishkin"
    }
}

/// Output of [`cole_vishkin_forest_coloring`].
#[derive(Debug, Clone)]
pub struct ForestColoring {
    /// A legal coloring of the forest with at most 3 colors.
    pub coloring: Coloring,
    /// LOCAL cost.
    pub report: RoundReport,
}

/// Colors a rooted forest with 3 colors in `O(log* n)` rounds.
///
/// `parent[v]` must be `None` for roots and `Some(u)` where `{u, v}` is an edge of `graph`
/// otherwise, and the parent pointers must be acyclic.  Edges of `graph` that are not
/// parent/child edges of the forest are ignored (the output is a legal coloring of the forest,
/// not necessarily of `graph`).
///
/// # Errors
///
/// Returns [`DecomposeError::InvalidParameter`] if a parent pointer refers to a non-neighbor,
/// and propagates runtime errors.
pub fn cole_vishkin_forest_coloring(
    graph: &Graph,
    parent: &[Option<Vertex>],
) -> Result<ForestColoring, DecomposeError> {
    if parent.len() != graph.n() {
        return Err(DecomposeError::InvalidParameter {
            reason: "one parent pointer per vertex is required".to_string(),
        });
    }
    // `port_of` is an O(log deg) binary search over the sorted adjacency list (not the old
    // linear scan), so embedding every parent port costs O(n log Δ) up front and the node
    // programs never search for their parent again.
    let mut parent_port = vec![None; graph.n()];
    for (v, &p) in parent.iter().enumerate() {
        if let Some(p) = p {
            let port = graph.port_of(v, p).ok_or_else(|| DecomposeError::InvalidParameter {
                reason: format!("parent {p} of vertex {v} is not a neighbor"),
            })?;
            parent_port[v] = Some(port);
        }
    }
    let algorithm = ColeVishkinPorts { parent_port };
    let result = run_algorithm(graph, &algorithm)?;
    let coloring = Coloring::new(graph, result.outputs)?;

    // Validate against the forest edges only.
    for (v, &p) in parent.iter().enumerate() {
        if let Some(p) = p {
            if coloring.color(v) == coloring.color(p) {
                return Err(DecomposeError::InvariantViolated {
                    reason: format!("Cole–Vishkin colored vertex {v} and its parent {p} alike"),
                });
            }
        }
    }
    Ok(ForestColoring { coloring, report: result.report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    /// Root the tree/forest at vertex 0 of every component by BFS.
    fn root_forest(graph: &Graph) -> Vec<Option<Vertex>> {
        let mut parent = vec![None; graph.n()];
        let mut visited = vec![false; graph.n()];
        for start in graph.vertices() {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &u in graph.neighbors(v) {
                    if !visited[u] {
                        visited[u] = true;
                        parent[u] = Some(v);
                        queue.push_back(u);
                    }
                }
            }
        }
        parent
    }

    #[test]
    fn colors_random_trees_with_three_colors() {
        for seed in 0..4u64 {
            let g = generators::random_tree(300, seed).unwrap().with_shuffled_ids(seed + 1);
            let parent = root_forest(&g);
            let out = cole_vishkin_forest_coloring(&g, &parent).unwrap();
            assert!(out.coloring.is_legal(&g), "tree edges are exactly the forest edges");
            assert!(out.coloring.max_color() <= 2, "palette must be {{0, 1, 2}}");
            assert!(out.report.rounds <= CONTRACTION_ROUNDS + 7);
        }
    }

    #[test]
    fn colors_forests_and_paths() {
        let g = generators::random_forest(200, 0.8, 3).unwrap().with_shuffled_ids(9);
        let parent = root_forest(&g);
        let out = cole_vishkin_forest_coloring(&g, &parent).unwrap();
        assert!(out.coloring.is_legal(&g));
        assert!(out.coloring.max_color() <= 2);

        let p = generators::path(50).unwrap().with_shuffled_ids(11);
        let parent = root_forest(&p);
        let out = cole_vishkin_forest_coloring(&p, &parent).unwrap();
        assert!(out.coloring.is_legal(&p));
        assert!(out.coloring.max_color() <= 2);
    }

    #[test]
    fn star_and_balanced_tree() {
        let s = generators::star(100).unwrap().with_shuffled_ids(2);
        let parent = root_forest(&s);
        let out = cole_vishkin_forest_coloring(&s, &parent).unwrap();
        assert!(out.coloring.is_legal(&s));
        assert!(out.coloring.max_color() <= 2);

        let t = generators::balanced_tree(127, 2).unwrap().with_shuffled_ids(3);
        let parent = root_forest(&t);
        let out = cole_vishkin_forest_coloring(&t, &parent).unwrap();
        assert!(out.coloring.is_legal(&t));
        assert!(out.coloring.max_color() <= 2);
    }

    #[test]
    fn bad_parent_pointer_is_rejected() {
        let g = generators::path(4).unwrap();
        let bad_parent = vec![None, Some(3), None, None]; // 3 is not a neighbor of 1
        assert!(matches!(
            cole_vishkin_forest_coloring(&g, &bad_parent),
            Err(DecomposeError::InvalidParameter { .. })
        ));
        assert!(cole_vishkin_forest_coloring(&g, &[None, None]).is_err());
    }
}
