//! Error type shared by the substrate algorithms.

use arbcolor_graph::GraphError;
use arbcolor_runtime::RuntimeError;
use std::error::Error;
use std::fmt;

/// Errors raised by the decomposition and coloring substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecomposeError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
    /// The H-partition did not drain all vertices within its iteration budget, which indicates
    /// that the supplied arboricity bound was too small for the input graph.
    ArboricityBoundTooSmall {
        /// The degree threshold that was used.
        threshold: usize,
        /// Number of vertices still active when the budget ran out.
        remaining: usize,
    },
    /// An invariant that the algorithm guarantees was found violated (a bug, surfaced loudly).
    InvariantViolated {
        /// Description of the violated invariant.
        reason: String,
    },
    /// Error from the graph substrate.
    Graph(GraphError),
    /// Error from the LOCAL-model runtime.
    Runtime(RuntimeError),
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            DecomposeError::ArboricityBoundTooSmall { threshold, remaining } => write!(
                f,
                "H-partition with degree threshold {threshold} left {remaining} vertices unassigned; \
                 the arboricity bound is too small for this graph"
            ),
            DecomposeError::InvariantViolated { reason } => {
                write!(f, "algorithm invariant violated: {reason}")
            }
            DecomposeError::Graph(e) => write!(f, "graph error: {e}"),
            DecomposeError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl Error for DecomposeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecomposeError::Graph(e) => Some(e),
            DecomposeError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DecomposeError {
    fn from(e: GraphError) -> Self {
        DecomposeError::Graph(e)
    }
}

impl From<RuntimeError> for DecomposeError {
    fn from(e: RuntimeError) -> Self {
        DecomposeError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DecomposeError::InvalidParameter { reason: "p = 0".to_string() };
        assert!(e.to_string().contains("p = 0"));
        let g = DecomposeError::from(GraphError::NotAcyclic);
        assert!(g.source().is_some());
        let r =
            DecomposeError::from(RuntimeError::RoundLimitExceeded { limit: 1, still_active: 2 });
        assert!(r.to_string().contains("runtime"));
    }
}
