//! Acyclic bounded-out-degree orientations and forests decompositions
//! (Barenboim–Elkin PODC'08; Lemmas 2.2(2), 2.4 and 2.5 of the paper).
//!
//! Given an H-partition of degree `A`, orienting every edge towards the endpoint with the
//! lexicographically larger `(bucket, identifier)` pair yields a **complete acyclic
//! orientation with out-degree ≤ A** (Lemma 2.4): all out-edges of a vertex go to vertices in
//! the same or a later bucket, of which there are at most `A`.  Splitting the out-edges of
//! every vertex into singletons then yields an **`A`-forests decomposition** (Lemma 2.2(2)):
//! in forest `j` every vertex has at most one outgoing edge, so every connected component has
//! at most as many edges as vertices minus one (acyclicity is inherited from the orientation).
//!
//! Both constructions are local once the H-partition is known (bucket indices of neighbors
//! were learned during the peeling), so they add no communication rounds beyond the
//! H-partition itself.

use crate::error::DecomposeError;
use crate::hpartition::{h_partition, HPartition};
use arbcolor_graph::{EdgeIdx, Graph, Orientation, Vertex};
use arbcolor_runtime::RoundReport;
use serde::{Deserialize, Serialize};

/// A complete acyclic orientation with bounded out-degree, plus its provenance.
#[derive(Debug, Clone)]
pub struct BoundedOrientation {
    /// The orientation itself.
    pub orientation: Orientation,
    /// Upper bound on the out-degree guaranteed by construction.
    pub out_degree_bound: usize,
    /// The H-partition the orientation was derived from.
    pub partition: HPartition,
    /// Total LOCAL cost (dominated by the H-partition).
    pub report: RoundReport,
}

/// Orients every edge of `graph` towards the endpoint with the larger `(bucket, id)` pair.
pub fn orient_by_partition(graph: &Graph, partition: &HPartition) -> Orientation {
    let rank_pair = |v: Vertex| (partition.h_index[v], graph.id(v));
    let mut orientation = Orientation::unoriented(graph);
    for &(u, v) in graph.edges() {
        let towards = if rank_pair(u) < rank_pair(v) { v } else { u };
        let from = if towards == v { u } else { v };
        orientation
            .orient_towards(graph, from, towards)
            .expect("edge endpoints come from the edge list");
    }
    orientation
}

/// Computes an acyclic complete orientation with out-degree `⌊(2+ε)a⌋` in `O(log n)` rounds
/// (Lemma 2.4).
///
/// # Errors
///
/// Propagates H-partition errors (in particular when `arboricity` under-estimates the graph).
pub fn bounded_outdegree_orientation(
    graph: &Graph,
    arboricity: usize,
    epsilon: f64,
) -> Result<BoundedOrientation, DecomposeError> {
    let partition = h_partition(graph, arboricity, epsilon)?;
    let orientation = orient_by_partition(graph, &partition);
    debug_assert!(orientation.is_acyclic(graph));
    let report = partition.report;
    Ok(BoundedOrientation {
        orientation,
        out_degree_bound: partition.degree_bound,
        partition,
        report,
    })
}

/// A decomposition of the edge set into edge-disjoint forests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestsDecomposition {
    /// Forest index of every edge (by canonical edge index), in `0..num_forests`.
    pub forest_of_edge: Vec<usize>,
    /// Number of forests.
    pub num_forests: usize,
    /// The parent of each vertex within each forest: `parent[forest][v]`.
    pub parent: Vec<Vec<Option<Vertex>>>,
    /// Total LOCAL cost.
    pub report: RoundReport,
}

impl ForestsDecomposition {
    /// The edges belonging to forest `j`.
    pub fn forest_edges(&self, j: usize) -> Vec<EdgeIdx> {
        self.forest_of_edge.iter().enumerate().filter_map(|(e, &f)| (f == j).then_some(e)).collect()
    }

    /// Checks that every part is indeed a forest (no cycles) and that parts are edge-disjoint
    /// by construction of `forest_of_edge`.
    ///
    /// # Errors
    ///
    /// Returns [`DecomposeError::InvariantViolated`] when a part contains a cycle.
    pub fn verify(&self, graph: &Graph) -> Result<(), DecomposeError> {
        for j in 0..self.num_forests {
            let edges = self.forest_edges(j);
            // Union–find cycle check.
            let mut parent: Vec<usize> = (0..graph.n()).collect();
            fn find(parent: &mut [usize], mut x: usize) -> usize {
                while parent[x] != x {
                    parent[x] = parent[parent[x]];
                    x = parent[x];
                }
                x
            }
            for e in edges {
                let (u, v) = graph.endpoints(e);
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                if ru == rv {
                    return Err(DecomposeError::InvariantViolated {
                        reason: format!("forest {j} contains a cycle through edge ({u}, {v})"),
                    });
                }
                parent[ru] = rv;
            }
        }
        Ok(())
    }
}

/// Computes an `O(a)`-forests decomposition in `O(log n)` rounds (Lemma 2.2(2)).
///
/// # Errors
///
/// Propagates H-partition errors.
///
/// # Examples
///
/// ```
/// use arbcolor_graph::generators;
/// use arbcolor_decompose::forests::forests_decomposition;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::union_of_random_forests(200, 2, 3)?;
/// let fd = forests_decomposition(&g, 2, 1.0)?;
/// assert!(fd.num_forests <= 3 * 2); // (2+ε)a with ε = 1
/// fd.verify(&g)?;
/// # Ok(())
/// # }
/// ```
pub fn forests_decomposition(
    graph: &Graph,
    arboricity: usize,
    epsilon: f64,
) -> Result<ForestsDecomposition, DecomposeError> {
    let bounded = bounded_outdegree_orientation(graph, arboricity, epsilon)?;
    Ok(split_orientation_into_forests(graph, &bounded.orientation, bounded.report))
}

/// Splits an acyclic orientation into forests: the `j`-th outgoing edge of every vertex goes
/// to forest `j`.
pub fn split_orientation_into_forests(
    graph: &Graph,
    orientation: &Orientation,
    report: RoundReport,
) -> ForestsDecomposition {
    let mut forest_of_edge = vec![0usize; graph.m()];
    let mut num_forests = 0usize;
    for v in graph.vertices() {
        let mut slot = 0usize;
        for (&u, &e) in graph.neighbors(v).iter().zip(graph.incident_edges(v)) {
            if orientation.head(graph, e) == Some(u) {
                forest_of_edge[e] = slot;
                slot += 1;
            }
        }
        num_forests = num_forests.max(slot);
    }
    let mut parent = vec![vec![None; graph.n()]; num_forests];
    for e in 0..graph.m() {
        if let (Some(head), Some(tail)) = (orientation.head(graph, e), orientation.tail(graph, e)) {
            parent[forest_of_edge[e]][tail] = Some(head);
        }
    }
    ForestsDecomposition { forest_of_edge, num_forests, parent, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::{degeneracy, generators};

    #[test]
    fn orientation_has_bounded_outdegree_and_is_acyclic() {
        for k in [1usize, 2, 3] {
            let g = generators::union_of_random_forests(300, k, 7).unwrap().with_shuffled_ids(1);
            let bounded = bounded_outdegree_orientation(&g, k, 1.0).unwrap();
            assert!(bounded.orientation.is_acyclic(&g));
            assert_eq!(bounded.orientation.unoriented_count(), 0);
            let out = bounded.orientation.max_out_degree(&g);
            assert!(
                out <= bounded.out_degree_bound,
                "out-degree {out} exceeds bound {}",
                bounded.out_degree_bound
            );
            assert!(bounded.out_degree_bound <= 3 * k);
        }
    }

    #[test]
    fn lemma_2_5_orientation_bounds_arboricity() {
        // If we can orient with out-degree k, the degeneracy is at most 2k.
        let g = generators::barabasi_albert(300, 3, 2).unwrap();
        let d = degeneracy::degeneracy(&g);
        let bounded = bounded_outdegree_orientation(&g, d, 1.0).unwrap();
        assert!(bounded.orientation.max_out_degree(&g) <= 3 * d);
    }

    #[test]
    fn forests_decomposition_verifies_and_covers_all_edges() {
        let g = generators::gnp(150, 0.05, 4).unwrap().with_shuffled_ids(6);
        let a = degeneracy::degeneracy(&g);
        let fd = forests_decomposition(&g, a, 1.0).unwrap();
        fd.verify(&g).unwrap();
        assert_eq!(fd.forest_of_edge.len(), g.m());
        assert!(fd.num_forests <= 3 * a.max(1));
        // Every edge is assigned to exactly one forest; together they cover the edge set.
        let covered: usize = (0..fd.num_forests).map(|j| fd.forest_edges(j).len()).sum();
        assert_eq!(covered, g.m());
    }

    #[test]
    fn forests_have_at_most_one_parent_per_vertex() {
        let g = generators::union_of_random_forests(200, 3, 9).unwrap();
        let fd = forests_decomposition(&g, 3, 1.0).unwrap();
        for j in 0..fd.num_forests {
            for v in g.vertices() {
                let outgoing_in_forest = g
                    .incident_edges(v)
                    .iter()
                    .zip(g.neighbors(v))
                    .filter(|(&e, &u)| fd.forest_of_edge[e] == j && fd.parent[j][v] == Some(u))
                    .count();
                assert!(outgoing_in_forest <= 1);
            }
        }
    }

    #[test]
    fn orientation_on_empty_graph() {
        let g = arbcolor_graph::Graph::empty(5);
        let bounded = bounded_outdegree_orientation(&g, 1, 1.0).unwrap();
        assert_eq!(bounded.orientation.max_out_degree(&g), 0);
        let fd = forests_decomposition(&g, 1, 1.0).unwrap();
        assert_eq!(fd.num_forests, 0);
        fd.verify(&g).unwrap();
    }
}
