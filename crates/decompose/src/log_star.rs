//! Iterated-logarithm utilities.
//!
//! `log* n` is the number of times `log₂` must be applied to `n` before the value drops to at
//! most 2.  Linial-style recoloring runs for `O(log* n)` iterations; the experiment harness
//! uses these helpers to report predicted round counts.

/// Base-2 logarithm rounded up, of an integer (`ceil_log2(1) = 0`).
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// The iterated logarithm `log* x`: the smallest `t` such that applying `log₂` `t` times to
/// `x` yields a value ≤ 2.
pub fn log_star(x: u64) -> u32 {
    let mut value = x as f64;
    let mut count = 0;
    while value > 2.0 {
        value = value.log2();
        count += 1;
    }
    count
}

/// `⌈log_b(x)⌉` for integer `x ≥ 1` and base `b ≥ 2`, computed with integer arithmetic.
pub fn ceil_log_base(x: u64, b: u64) -> u32 {
    assert!(b >= 2, "base must be at least 2");
    if x <= 1 {
        return 0;
    }
    let mut power = 1u128;
    let mut count = 0u32;
    let target = x as u128;
    while power < target {
        power = power.saturating_mul(b as u128);
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 0);
        assert_eq!(log_star(3), 1);
        assert_eq!(log_star(4), 1);
        assert_eq!(log_star(5), 2);
        assert_eq!(log_star(16), 2);
        assert_eq!(log_star(17), 3);
        assert_eq!(log_star(65536), 3);
        assert_eq!(log_star(65537), 4);
        assert_eq!(log_star(u64::MAX), 4);
    }

    #[test]
    fn ceil_log_base_values() {
        assert_eq!(ceil_log_base(1, 10), 0);
        assert_eq!(ceil_log_base(10, 10), 1);
        assert_eq!(ceil_log_base(11, 10), 2);
        assert_eq!(ceil_log_base(1000, 10), 3);
        assert_eq!(ceil_log_base(81, 3), 4);
        assert_eq!(ceil_log_base(82, 3), 5);
    }

    #[test]
    #[should_panic(expected = "base must be at least 2")]
    fn ceil_log_base_rejects_base_one() {
        ceil_log_base(10, 1);
    }
}
