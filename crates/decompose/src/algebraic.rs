//! Low-agreement function families from polynomials over prime fields.
//!
//! Both Linial's `O(Δ²)`-coloring and Kuhn's defective coloring (Lemma 2.1 of the paper), as
//! well as the paper's own Procedure Arb-Recolor (Algorithm 3), rely on a family of functions
//! `{ϕ_χ : A → B}` indexed by the current colors `χ ∈ [M]`, with the property that any two
//! *distinct* colors agree on few elements of `A`.
//!
//! The classical construction (essentially a Reed–Solomon code) takes a prime `q`, sets
//! `A = B = F_q = {0, …, q−1}`, writes `χ` in base `q` as `(c_0, …, c_k)` and lets
//! `ϕ_χ(α) = c_0 + c_1 α + … + c_k α^k (mod q)`.  Two distinct polynomials of degree ≤ `k`
//! agree on at most `k` points, so the family has *agreement* `k = ⌈log_q M⌉ − 1 < log_q M`.
//!
//! [`PolynomialFamily`] packages this construction; [`choose_prime_field`] picks the smallest
//! prime `q` satisfying the constraint `q > agreement · slack` required by the recoloring
//! lemmas (where `slack` is `Δ` for Linial, `(Δ − d′)/(d − d′ + 1)` for defective/arbdefective
//! recoloring).

use serde::{Deserialize, Serialize};

/// Whether `x` is prime (deterministic trial division; the fields used here are tiny).
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x % 2 == 0 {
        return x == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= x {
        if x % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime that is at least `x`.
pub fn next_prime(mut x: u64) -> u64 {
    if x <= 2 {
        return 2;
    }
    if x % 2 == 0 {
        x += 1;
    }
    while !is_prime(x) {
        x += 2;
    }
    x
}

/// Number of base-`q` digits of `m − 1` (i.e. how many coefficients are needed to encode every
/// color in `0..m`); at least 1.
pub fn digits_needed(m: u64, q: u64) -> u32 {
    assert!(q >= 2, "field size must be at least 2");
    if m <= 1 {
        return 1;
    }
    let mut digits = 0u32;
    let mut value = m - 1;
    while value > 0 {
        value /= q;
        digits += 1;
    }
    digits
}

/// A polynomial function family `{ϕ_χ : F_q → F_q}` for colors `χ ∈ [0, colors)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolynomialFamily {
    /// The prime field size (both `|A|` and `|B|`).
    pub q: u64,
    /// Number of coefficients per polynomial (`degree + 1`).
    pub digits: u32,
    /// Number of colors the family can encode (`q^digits ≥ colors`).
    pub colors: u64,
}

impl PolynomialFamily {
    /// Builds the family over `F_q` capable of encoding `colors` distinct colors.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not prime or `colors == 0`.
    pub fn new(q: u64, colors: u64) -> Self {
        assert!(is_prime(q), "q = {q} must be prime");
        assert!(colors > 0, "the family must encode at least one color");
        PolynomialFamily { q, digits: digits_needed(colors, q), colors }
    }

    /// Maximum number of points on which two distinct colors' polynomials can agree
    /// (the polynomial degree, `digits − 1`).
    pub fn agreement(&self) -> u64 {
        u64::from(self.digits) - 1
    }

    /// Number of distinct new colors `(α, ϕ_χ(α))` the recoloring step can produce: `q²`.
    pub fn new_color_count(&self) -> u64 {
        self.q * self.q
    }

    /// Evaluates `ϕ_color(alpha)` in `F_q`.
    ///
    /// # Panics
    ///
    /// Panics if `color ≥ colors` or `alpha ≥ q`.
    pub fn evaluate(&self, color: u64, alpha: u64) -> u64 {
        assert!(color < self.colors, "color {color} out of range (< {})", self.colors);
        assert!(alpha < self.q, "alpha {alpha} outside the field F_{}", self.q);
        // Horner evaluation over the base-q digits of `color`, most significant digit first.
        let mut digits = Vec::with_capacity(self.digits as usize);
        let mut value = color;
        for _ in 0..self.digits {
            digits.push(value % self.q);
            value /= self.q;
        }
        let mut acc = 0u64;
        for &digit in digits.iter().rev() {
            acc = (acc * alpha + digit) % self.q;
        }
        acc
    }

    /// The new color encoding the pair `(α, ϕ_color(α))`, as a single integer `α · q + ϕ`.
    pub fn pair_color(&self, color: u64, alpha: u64) -> u64 {
        alpha * self.q + self.evaluate(color, alpha)
    }
}

/// Picks the smallest prime field size `q` such that the family over `F_q` encoding `colors`
/// colors has `q > agreement(q) · slack`, where `slack` is the factor required by the
/// recoloring lemma in use (`Δ` for Linial's zero-defect step; `⌈(Δ − d′)/(d − d′ + 1)⌉` for
/// the defective/arbdefective steps).
///
/// The returned family always satisfies the constraint, so a suitable `α` is guaranteed to
/// exist for every vertex.
pub fn choose_prime_field(colors: u64, slack: u64) -> PolynomialFamily {
    let colors = colors.max(1);
    // Start from a small prime and grow until the constraint holds.  The agreement shrinks as
    // q grows, so this terminates quickly.
    let mut q = next_prime(3.max(slack + 1));
    loop {
        let family = PolynomialFamily::new(q, colors);
        if family.q > family.agreement() * slack {
            return family;
        }
        q = next_prime(q + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_and_next_prime() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(!is_prime(9));
        assert!(is_prime(97));
        assert!(!is_prime(91));
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(97), 97);
        assert_eq!(next_prime(98), 101);
    }

    #[test]
    fn digit_counts() {
        assert_eq!(digits_needed(1, 5), 1);
        assert_eq!(digits_needed(5, 5), 1);
        assert_eq!(digits_needed(6, 5), 2);
        assert_eq!(digits_needed(25, 5), 2);
        assert_eq!(digits_needed(26, 5), 3);
    }

    #[test]
    fn distinct_colors_agree_on_few_points() {
        let family = PolynomialFamily::new(11, 500);
        let k = family.agreement();
        for x in (0..500).step_by(37) {
            for y in (0..500).step_by(41) {
                if x == y {
                    continue;
                }
                let agreements = (0..family.q)
                    .filter(|&a| family.evaluate(x, a) == family.evaluate(y, a))
                    .count();
                assert!(
                    agreements as u64 <= k,
                    "colors {x} and {y} agree on {agreements} > {k} points"
                );
            }
        }
    }

    #[test]
    fn pair_colors_are_injective_in_alpha_and_value() {
        let family = PolynomialFamily::new(7, 40);
        let c = family.pair_color(13, 3);
        assert_eq!(c, 3 * 7 + family.evaluate(13, 3));
        assert!(c < family.new_color_count());
    }

    #[test]
    fn choose_prime_field_satisfies_constraint() {
        for (colors, slack) in [(10u64, 3u64), (1000, 10), (1 << 20, 50), (5, 1), (2, 0)] {
            let family = choose_prime_field(colors, slack);
            assert!(
                family.q > family.agreement() * slack,
                "q = {}, k = {}, slack = {slack}",
                family.q,
                family.agreement()
            );
            assert!(u128::from(family.q).pow(family.digits) >= u128::from(colors));
        }
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn non_prime_field_is_rejected() {
        let _ = PolynomialFamily::new(10, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn evaluate_rejects_out_of_range_color() {
        let family = PolynomialFamily::new(5, 10);
        family.evaluate(10, 0);
    }
}
