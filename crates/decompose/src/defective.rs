//! Kuhn-style defective coloring (Lemma 2.1 of the paper).
//!
//! For an integer parameter `p ≥ 1`, a `⌊Δ/p⌋`-defective coloring with `O(p²)`-ish colors is
//! computed in `O(log* n)` rounds by running the iterative recoloring engine of
//! [`crate::linial`] with positive per-iteration collision budgets.
//!
//! **Deviation from the paper.**  Kuhn's SPAA'09 construction finishes with exactly `O(p²)`
//! colors; our schedule stops as soon as the color count no longer shrinks, which leaves an
//! extra `O(log_p² Δ)` factor in the palette in some regimes (the defect bound `⌊Δ/p⌋` and the
//! `O(log* n)` round count are preserved).  The experiment harness reports both the measured
//! palette and the paper's `O(p²)` target so the gap is visible (see EXPERIMENTS.md, E15).

use crate::error::DecomposeError;
use crate::linial::{run_schedule, RecolorOutput, RecolorSchedule};
use arbcolor_graph::Graph;

/// Output of [`defective_coloring`]: the recoloring output plus the defect actually measured
/// and the defect bound that was targeted.
#[derive(Debug, Clone)]
pub struct DefectiveColoring {
    /// Coloring, palette bound and LOCAL cost.
    pub output: RecolorOutput,
    /// The defect target `⌊Δ/p⌋`.
    pub target_defect: usize,
    /// The defect actually measured on the input graph.
    pub measured_defect: usize,
}

/// Computes a `⌊Δ/p⌋`-defective coloring with a small palette in `O(log* n)` rounds.
///
/// # Errors
///
/// Returns [`DecomposeError::InvalidParameter`] if `p == 0`; propagates runtime errors.
///
/// # Examples
///
/// ```
/// use arbcolor_graph::generators;
/// use arbcolor_decompose::defective::defective_coloring;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp(120, 0.1, 3)?.with_shuffled_ids(5);
/// let p = 3;
/// let result = defective_coloring(&g, p)?;
/// assert!(result.measured_defect <= g.max_degree() / p);
/// # Ok(())
/// # }
/// ```
pub fn defective_coloring(graph: &Graph, p: usize) -> Result<DefectiveColoring, DecomposeError> {
    if p == 0 {
        return Err(DecomposeError::InvalidParameter { reason: "p must be positive".to_string() });
    }
    let delta = graph.max_degree();
    let target_defect = delta / p;
    let id_space = graph.ids().iter().copied().max().unwrap_or(1);
    let schedule = RecolorSchedule::build(id_space, delta, target_defect as u64);
    debug_assert!(schedule.total_budget() <= target_defect as u64);
    let output = run_schedule(graph, &schedule)?;
    let measured_defect = output.coloring.defect(graph);
    if measured_defect > target_defect {
        return Err(DecomposeError::InvariantViolated {
            reason: format!(
                "defective coloring produced defect {measured_defect} > target {target_defect}"
            ),
        });
    }
    Ok(DefectiveColoring { output, target_defect, measured_defect })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn rejects_zero_p() {
        let g = generators::path(4).unwrap();
        assert!(matches!(defective_coloring(&g, 0), Err(DecomposeError::InvalidParameter { .. })));
    }

    #[test]
    fn defect_is_within_target_across_graphs_and_p() {
        let graphs = vec![
            generators::gnp(120, 0.1, 1).unwrap().with_shuffled_ids(7),
            generators::union_of_random_forests(150, 4, 2).unwrap().with_shuffled_ids(8),
            generators::complete(25).unwrap().with_shuffled_ids(9),
            generators::grid(10, 12).unwrap().with_shuffled_ids(10),
        ];
        for g in &graphs {
            for p in [1usize, 2, 3, 5] {
                let result = defective_coloring(g, p).unwrap();
                assert!(
                    result.measured_defect <= result.target_defect,
                    "defect {} exceeds target {} (p = {p})",
                    result.measured_defect,
                    result.target_defect
                );
            }
        }
    }

    #[test]
    fn p_equal_one_allows_large_defect_but_few_colors() {
        let g = generators::complete(40).unwrap().with_shuffled_ids(4);
        let result = defective_coloring(&g, 1).unwrap();
        // With p = 1 the defect may reach Δ, and the palette collapses to something small.
        assert!(result.output.colors_used <= 40);
        assert!(result.output.report.rounds <= 10);
    }

    #[test]
    fn large_p_behaves_like_linial() {
        let g = generators::gnp(100, 0.08, 6).unwrap().with_shuffled_ids(11);
        let delta = g.max_degree();
        let result = defective_coloring(&g, delta.max(1)).unwrap();
        // Target defect is ⌊Δ/Δ⌋ = 1; the coloring is almost legal.
        assert!(result.measured_defect <= 1);
    }

    #[test]
    fn rounds_stay_log_star_small() {
        let g = generators::gnp(400, 0.03, 12).unwrap().with_shuffled_ids(3);
        let result = defective_coloring(&g, 2).unwrap();
        assert!(result.output.report.rounds <= 8, "rounds = {}", result.output.report.rounds);
    }
}
