//! Color-count reductions: greedy class sweeps and Kuhn–Wattenhofer halving.
//!
//! * [`GreedySweep`] is the workhorse node program: every vertex is given a *slot*; in its
//!   slot it picks the smallest color of its private palette range that is not forbidden and
//!   not announced by a neighbor that already picked, then announces its choice.  When the
//!   slots come from a legal coloring (neighbors never share a slot) and the palette is large
//!   enough, the result is a legal coloring.  Cost: `max_slot + 1` rounds.  Slot data lives
//!   flattened in a shared [`SweepSchedule`] arena, and announced colors are struck into a
//!   per-vertex [`PaletteSet`] bitset shifted by the palette offset, so a pick is a single
//!   word scan over the range instead of nested `Vec` scans.
//! * [`greedy_reduce`] reduces a legal `k`-coloring to a `palette`-coloring in `O(k)` rounds
//!   (one class per round) — the folklore reduction.
//! * [`kw_reduce`] reduces a legal `k`-coloring to a `(Δ+1)`-coloring in
//!   `O(Δ · log(k / Δ))` rounds by halving the palette with parallel block sweeps
//!   (Kuhn–Wattenhofer PODC'06).

use crate::error::DecomposeError;
use arbcolor_graph::{ColorPool, Coloring, Graph, PaletteSet, PaletteStats};
use arbcolor_runtime::{run_algorithm, Algorithm, Inbox, NodeCtx, Outbox, RoundReport, Status};

/// Per-vertex input of the greedy sweep (the construction-time view; at run time the data
/// lives flattened inside a [`SweepSchedule`]).
#[derive(Debug, Clone)]
pub struct SweepSlot {
    /// The round in which this vertex picks its color (vertices with slot 0 pick immediately).
    pub slot: usize,
    /// First color of this vertex's palette range.
    pub palette_offset: u64,
    /// Size of this vertex's palette range.
    pub palette_size: u64,
    /// Colors this vertex must avoid in addition to its neighbors' choices (e.g. colors of
    /// already-colored neighbors outside the current subgraph).
    pub forbidden: Vec<u64>,
}

/// The shared per-execution arena of one [`GreedySweep`] run: the scalar slot data per
/// vertex, the forbidden sets in one flat [`ColorPool`], and the [`PaletteStats`] reuse
/// counters the nodes feed.
#[derive(Debug)]
pub struct SweepSchedule {
    slots: Vec<usize>,
    offsets: Vec<u64>,
    sizes: Vec<u64>,
    forbidden: ColorPool,
    stats: PaletteStats,
}

impl SweepSchedule {
    /// Flattens one [`SweepSlot`] per vertex into a schedule.
    pub fn new(inputs: &[SweepSlot]) -> Self {
        let mut forbidden =
            ColorPool::with_capacity(inputs.len(), inputs.iter().map(|s| s.forbidden.len()).sum());
        for input in inputs {
            forbidden.push_slice(&input.forbidden);
        }
        SweepSchedule {
            slots: inputs.iter().map(|s| s.slot).collect(),
            offsets: inputs.iter().map(|s| s.palette_offset).collect(),
            sizes: inputs.iter().map(|s| s.palette_size).collect(),
            forbidden,
            stats: PaletteStats::default(),
        }
    }

    /// Number of vertices the schedule covers.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// The reuse counters fed by this schedule's nodes; [`run_greedy_sweep`] flushes them
    /// into the installed metrics registry after the run.
    pub fn stats(&self) -> &PaletteStats {
        &self.stats
    }
}

/// The greedy sweep algorithm (node-program factory).
#[derive(Debug, Clone)]
pub struct GreedySweep<'a> {
    schedule: &'a SweepSchedule,
}

impl<'a> GreedySweep<'a> {
    /// Creates the sweep over a shared [`SweepSchedule`] arena.
    pub fn new(schedule: &'a SweepSchedule) -> Self {
        GreedySweep { schedule }
    }
}

/// Node program of [`GreedySweep`]: strikes forbidden and announced colors, shifted by the
/// palette offset, into a [`PaletteSet`] over `[0, palette_size)`.
///
/// The offset shift matters: [`kw_reduce`] hands out ranges like `block · (Δ+1)` for large
/// block indices, so an unshifted bitset over absolute colors would be as long as the whole
/// color space instead of one palette range.
#[derive(Debug, Clone)]
pub struct GreedySweepNode<'a> {
    slot: usize,
    offset: u64,
    stats: &'a PaletteStats,
    struck: PaletteSet,
    chosen: Option<u64>,
    round: usize,
}

impl GreedySweepNode<'_> {
    fn strike(&mut self, color: u64) {
        // Colors outside [offset, offset + size) can never be picked; ignore them.
        if color >= self.offset {
            self.struck.strike(color - self.offset);
        }
    }

    fn pick(&mut self) -> Option<u64> {
        // Smallest unstruck color of the range — identical to the Vec-scan
        // `range.find(|c| !forbidden.contains(c) && !taken.contains(c))`.
        let choice = self.struck.first_unstruck().map(|c| c + self.offset);
        self.chosen = choice;
        self.stats.record_pick(self.struck.struck_count());
        choice
    }
}

impl arbcolor_runtime::node::NodeProgram for GreedySweepNode<'_> {
    type Msg = u64;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        self.round = 0;
        if self.slot == 0 {
            if let Some(c) = self.pick() {
                outbox.broadcast(c);
            }
            Status::Halted
        } else {
            // Counts rounds up to its slot, so it must be stepped every round, mail or
            // not: self-schedule while active.
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, u64>, outbox: &mut Outbox<u64>) -> Status {
        self.round += 1;
        for (_, &c) in inbox.iter() {
            self.strike(c);
        }
        if self.round == self.slot {
            if let Some(c) = self.pick() {
                outbox.broadcast(c);
            }
            Status::Halted
        } else {
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> Option<u64> {
        self.chosen
    }
}

impl<'a> Algorithm for GreedySweep<'a> {
    type Node = GreedySweepNode<'a>;

    fn node(&self, ctx: &NodeCtx) -> GreedySweepNode<'a> {
        let v = ctx.vertex;
        let offset = self.schedule.offsets[v];
        let mut node = GreedySweepNode {
            slot: self.schedule.slots[v],
            offset,
            stats: self.schedule.stats(),
            struck: PaletteSet::new(self.schedule.sizes[v]),
            chosen: None,
            round: 0,
        };
        for &c in self.schedule.forbidden.list(v) {
            node.strike(c);
        }
        node
    }

    fn name(&self) -> &'static str {
        "greedy-sweep"
    }
}

/// Runs a greedy sweep over a [`SweepSchedule`] and returns the chosen colors, flushing the
/// schedule's palette counters into the installed metrics registry.
///
/// # Errors
///
/// Returns [`DecomposeError::InvariantViolated`] if a vertex could not find a free color in
/// its palette (the caller supplied an insufficient palette), and propagates runtime errors.
pub fn run_greedy_sweep(
    graph: &Graph,
    schedule: &SweepSchedule,
) -> Result<(Vec<u64>, RoundReport), DecomposeError> {
    assert_eq!(schedule.n(), graph.n(), "one sweep slot per vertex");
    let algorithm = GreedySweep::new(schedule);
    let result = run_algorithm(graph, &algorithm)?;
    arbcolor_runtime::obs::record_palette(schedule.stats());
    let mut colors = Vec::with_capacity(graph.n());
    for (v, chosen) in result.outputs.into_iter().enumerate() {
        match chosen {
            Some(c) => colors.push(c),
            None => {
                return Err(DecomposeError::InvariantViolated {
                    reason: format!(
                        "vertex {v} found no free color in its palette during a greedy sweep"
                    ),
                })
            }
        }
    }
    Ok((colors, result.report))
}

/// Output of the reduction helpers.
#[derive(Debug, Clone)]
pub struct ReducedColoring {
    /// The reduced coloring.
    pub coloring: Coloring,
    /// LOCAL cost of the reduction.
    pub report: RoundReport,
}

/// Reduces a legal coloring to at most `palette` colors by sweeping one color class per round.
///
/// Requires `palette ≥ Δ + 1`; costs `k` rounds where `k` is the number of distinct input
/// colors.
///
/// # Errors
///
/// Returns [`DecomposeError::InvalidParameter`] if the input coloring is not legal or the
/// palette is smaller than `Δ + 1`.
pub fn greedy_reduce(
    graph: &Graph,
    coloring: &Coloring,
    palette: u64,
) -> Result<ReducedColoring, DecomposeError> {
    if !coloring.is_legal(graph) {
        return Err(DecomposeError::InvalidParameter {
            reason: "greedy_reduce requires a legal input coloring".to_string(),
        });
    }
    if palette < graph.max_degree() as u64 + 1 {
        return Err(DecomposeError::InvalidParameter {
            reason: format!("palette {palette} is smaller than Δ + 1 = {}", graph.max_degree() + 1),
        });
    }
    let (normalized, _) = coloring.normalized();
    let slots: Vec<SweepSlot> = graph
        .vertices()
        .map(|v| SweepSlot {
            slot: normalized.color(v) as usize,
            palette_offset: 0,
            palette_size: palette,
            forbidden: Vec::new(),
        })
        .collect();
    let (colors, report) = run_greedy_sweep(graph, &SweepSchedule::new(&slots))?;
    let coloring = Coloring::new(graph, colors)?;
    debug_assert!(coloring.is_legal(graph));
    Ok(ReducedColoring { coloring, report })
}

/// Kuhn–Wattenhofer reduction of a legal coloring to `Δ + 1` colors in
/// `O(Δ · log(k / Δ))` rounds.
///
/// # Errors
///
/// Returns [`DecomposeError::InvalidParameter`] if the input coloring is not legal, and
/// propagates sweep errors.
pub fn kw_reduce(graph: &Graph, coloring: &Coloring) -> Result<ReducedColoring, DecomposeError> {
    if !coloring.is_legal(graph) {
        return Err(DecomposeError::InvalidParameter {
            reason: "kw_reduce requires a legal input coloring".to_string(),
        });
    }
    let target = graph.max_degree() as u64 + 1;
    let (mut current, mut k) = coloring.normalized();
    let mut total = RoundReport::zero();
    // Each pass halves the number of colors (roughly) until it fits in one block.
    let mut guard = 0;
    while (k as u64) > target {
        let block_size = 2 * target;
        let slots: Vec<SweepSlot> = graph
            .vertices()
            .map(|v| {
                let c = current.color(v);
                let block = c / block_size;
                SweepSlot {
                    slot: (c % block_size) as usize,
                    palette_offset: block * target,
                    palette_size: target,
                    forbidden: Vec::new(),
                }
            })
            .collect();
        let (colors, report) = run_greedy_sweep(graph, &SweepSchedule::new(&slots))?;
        total = total.then(report);
        let reduced = Coloring::new(graph, colors)?;
        debug_assert!(reduced.is_legal(graph));
        let (normalized, new_k) = reduced.normalized();
        current = normalized;
        k = new_k;
        guard += 1;
        if guard > 64 {
            return Err(DecomposeError::InvariantViolated {
                reason: "kw_reduce failed to converge".to_string(),
            });
        }
    }
    Ok(ReducedColoring { coloring: current, report: total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn greedy_reduce_reaches_delta_plus_one() {
        let g = generators::gnp(120, 0.08, 2).unwrap().with_shuffled_ids(1);
        let ids = Coloring::from_ids(&g);
        let delta = g.max_degree() as u64;
        let reduced = greedy_reduce(&g, &ids, delta + 1).unwrap();
        assert!(reduced.coloring.is_legal(&g));
        assert!(reduced.coloring.max_color() <= delta);
        // One class per round: at most n rounds (exactly the number of distinct input colors).
        assert!(reduced.report.rounds <= g.n() + 1);
    }

    #[test]
    fn greedy_reduce_rejects_bad_inputs() {
        let g = generators::cycle(5).unwrap();
        let constant = Coloring::constant(&g);
        assert!(greedy_reduce(&g, &constant, 10).is_err());
        let ids = Coloring::from_ids(&g);
        assert!(greedy_reduce(&g, &ids, 1).is_err());
    }

    #[test]
    fn kw_reduce_reaches_delta_plus_one_faster_than_greedy_on_many_colors() {
        let g = generators::gnp(300, 0.03, 5).unwrap().with_shuffled_ids(3);
        let ids = Coloring::from_ids(&g);
        let delta = g.max_degree() as u64;
        let kw = kw_reduce(&g, &ids).unwrap();
        assert!(kw.coloring.is_legal(&g));
        assert!(kw.coloring.max_color() <= delta);
        let greedy = greedy_reduce(&g, &ids, delta + 1).unwrap();
        assert!(
            kw.report.rounds < greedy.report.rounds,
            "KW ({}) should beat the one-class-per-round sweep ({}) when k ≫ Δ",
            kw.report.rounds,
            greedy.report.rounds
        );
    }

    #[test]
    fn kw_reduce_is_a_no_op_when_already_small() {
        let g = generators::cycle(6).unwrap();
        let two_coloring = Coloring::new(&g, vec![0, 1, 0, 1, 0, 1]).unwrap();
        let reduced = kw_reduce(&g, &two_coloring).unwrap();
        assert_eq!(reduced.report.rounds, 0);
        assert!(reduced.coloring.is_legal(&g));
    }

    #[test]
    fn sweep_with_forbidden_colors_and_offsets() {
        let g = generators::path(3).unwrap();
        let slots = vec![
            SweepSlot { slot: 0, palette_offset: 10, palette_size: 3, forbidden: vec![10] },
            SweepSlot { slot: 1, palette_offset: 10, palette_size: 3, forbidden: vec![] },
            SweepSlot { slot: 2, palette_offset: 10, palette_size: 3, forbidden: vec![10, 11] },
        ];
        let schedule = SweepSchedule::new(&slots);
        let (colors, report) = run_greedy_sweep(&g, &schedule).unwrap();
        assert_eq!(colors[0], 11);
        assert_ne!(colors[1], colors[0]);
        assert_eq!(colors[2], 12);
        assert!(report.rounds >= 2);
        // One pick per vertex was served from the offset-shifted bitset.
        assert_eq!(schedule.stats().snapshot().picks_served, 0, "flushed by run_greedy_sweep");
    }

    #[test]
    fn sweep_reports_palette_exhaustion() {
        let g = generators::complete(3).unwrap();
        let slots: Vec<SweepSlot> = (0..3)
            .map(|v| SweepSlot { slot: v, palette_offset: 0, palette_size: 2, forbidden: vec![] })
            .collect();
        let err = run_greedy_sweep(&g, &SweepSchedule::new(&slots)).unwrap_err();
        assert!(matches!(err, DecomposeError::InvariantViolated { .. }));
    }
}
