//! Linial-style iterative recoloring and Linial's `O(Δ²)`-coloring.
//!
//! The generic engine ([`RecolorSchedule`] + [`RecolorAlgorithm`]) performs a sequence of
//! recoloring iterations.  In iteration `j`, every vertex `v` with current color `χ(v)` looks
//! at the current colors `y_1, …, y_δ` of its neighbors and picks `α ∈ F_q` minimizing the
//! number of *differently-colored* neighbors whose polynomial agrees with `ϕ_{χ(v)}` at `α`;
//! its new color is the pair `(α, ϕ_{χ(v)}(α)) ∈ [q²]`.
//!
//! * With a **zero** collision budget per iteration (and `q > k·Δ`), the minimum is guaranteed
//!   to be 0, the coloring stays legal, and after `O(log* n)` iterations the number of colors
//!   stabilizes at `O(Δ²)` — Linial's FOCS'87 algorithm ([`linial_coloring`]).
//! * With a **positive** budget `r_j` per iteration (and `q > k·⌈Δ/(r_j+1)⌉`), each iteration
//!   adds at most `r_j` to the defect — Kuhn's defective coloring; see
//!   [`crate::defective`].
//!
//! Every iteration costs exactly one communication round (colors of the previous iteration
//! are broadcast, new colors are computed locally).

use crate::algebraic::{choose_prime_field, PolynomialFamily};
use crate::error::DecomposeError;
use arbcolor_graph::{Coloring, Graph};
use arbcolor_runtime::{run_algorithm, Algorithm, Inbox, NodeCtx, Outbox, RoundReport, Status};
use serde::{Deserialize, Serialize};

/// One recoloring iteration: the function family to use and the number of *new* same-color
/// collisions a vertex is allowed to accept (0 keeps the coloring legal).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecolorStep {
    /// The polynomial family used in this iteration.
    pub family: PolynomialFamily,
    /// Collision budget of this iteration (informational; vertices always pick the
    /// minimizing `α`, and the family parameters guarantee the minimum is within budget).
    pub budget: u64,
}

/// A full schedule of recoloring iterations, shared by all vertices (it depends only on the
/// global parameters `n`, `Δ` and the defect target, which every vertex knows).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecolorSchedule {
    /// The iterations, applied in order.
    pub steps: Vec<RecolorStep>,
    /// Number of colors of the *input* coloring the schedule expects (usually the ID space).
    pub initial_colors: u64,
}

impl RecolorSchedule {
    /// Builds a schedule that starts from `initial_colors` colors, never exceeds a total
    /// defect of `defect_budget`, and iterates until the color count stops shrinking.
    ///
    /// `max_degree` is the maximum degree `Δ` of the graph the schedule will run on.
    pub fn build(initial_colors: u64, max_degree: usize, defect_budget: u64) -> Self {
        let delta = max_degree as u64;
        let mut steps = Vec::new();
        let mut colors = initial_colors.max(1);
        let mut remaining = defect_budget;
        // Safety bound: every step at least squares-roots the color count, so far fewer than
        // 64 iterations can ever make progress starting from a u64 color space.
        for _ in 0..64 {
            let budget = if remaining > 0 { remaining.div_ceil(2) } else { 0 };
            let slack = if budget + 1 >= delta.max(1) { 1 } else { delta.div_ceil(budget + 1) };
            let family = choose_prime_field(colors, slack);
            if family.new_color_count() >= colors {
                break;
            }
            colors = family.new_color_count();
            remaining -= budget.min(remaining);
            steps.push(RecolorStep { family, budget });
        }
        RecolorSchedule { steps, initial_colors: initial_colors.max(1) }
    }

    /// Number of communication rounds the schedule costs (one per iteration).
    pub fn rounds(&self) -> usize {
        self.steps.len()
    }

    /// Number of colors after the final iteration (or the initial count if empty).
    pub fn final_colors(&self) -> u64 {
        self.steps.last().map_or(self.initial_colors, |s| s.family.new_color_count())
    }

    /// Sum of the per-iteration collision budgets (an upper bound on the defect added by the
    /// whole schedule when the input coloring is legal).
    pub fn total_budget(&self) -> u64 {
        self.steps.iter().map(|s| s.budget).sum()
    }
}

/// The iterative recoloring algorithm (node-program factory).
#[derive(Debug, Clone)]
pub struct RecolorAlgorithm<'a> {
    schedule: &'a RecolorSchedule,
    /// Initial color of each vertex, indexed by vertex.
    initial: &'a [u64],
}

impl<'a> RecolorAlgorithm<'a> {
    /// Creates the algorithm from a schedule and per-vertex initial colors (must be a legal
    /// coloring with values `< schedule.initial_colors`).
    pub fn new(schedule: &'a RecolorSchedule, initial: &'a [u64]) -> Self {
        RecolorAlgorithm { schedule, initial }
    }
}

/// Node program of [`RecolorAlgorithm`].
#[derive(Debug, Clone)]
pub struct RecolorNode {
    schedule: RecolorSchedule,
    color: u64,
    iteration: usize,
}

impl arbcolor_runtime::node::NodeProgram for RecolorNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        if self.schedule.steps.is_empty() {
            return Status::Halted;
        }
        outbox.broadcast(self.color);
        // `iteration` indexes the schedule and advances every round (isolated vertices
        // included), so self-schedule while active rather than relying on incoming mail.
        ctx.wake_next_round();
        Status::Active
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, u64>, outbox: &mut Outbox<u64>) -> Status {
        let step = &self.schedule.steps[self.iteration];
        let family = &step.family;
        let neighbor_colors: Vec<u64> = inbox.iter().map(|(_, &c)| c).collect();

        // Pick α minimizing collisions with *differently*-colored neighbors.
        let mut best_alpha = 0u64;
        let mut best_collisions = usize::MAX;
        for alpha in 0..family.q {
            let own = family.evaluate(self.color, alpha);
            let collisions = neighbor_colors
                .iter()
                .filter(|&&y| y != self.color && family.evaluate(y, alpha) == own)
                .count();
            if collisions < best_collisions {
                best_collisions = collisions;
                best_alpha = alpha;
                if collisions == 0 {
                    break;
                }
            }
        }
        self.color = family.pair_color(self.color, best_alpha);
        self.iteration += 1;
        if self.iteration == self.schedule.steps.len() {
            Status::Halted
        } else {
            outbox.broadcast(self.color);
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.color
    }
}

impl Algorithm for RecolorAlgorithm<'_> {
    type Node = RecolorNode;

    fn node(&self, ctx: &NodeCtx) -> RecolorNode {
        RecolorNode {
            schedule: self.schedule.clone(),
            color: self.initial[ctx.vertex],
            iteration: 0,
        }
    }

    fn name(&self) -> &'static str {
        "iterative-recoloring"
    }
}

/// The output of [`linial_coloring`] and of the defective variant.
#[derive(Debug, Clone)]
pub struct RecolorOutput {
    /// The computed coloring.
    pub coloring: Coloring,
    /// Number of distinct colors actually used.
    pub colors_used: usize,
    /// Upper bound on the palette (`q²` of the last iteration).
    pub palette_bound: u64,
    /// Simulated LOCAL cost.
    pub report: RoundReport,
}

/// Runs a prepared schedule starting from the identifier coloring.
///
/// # Errors
///
/// Propagates executor errors.
pub fn run_schedule(
    graph: &Graph,
    schedule: &RecolorSchedule,
) -> Result<RecolorOutput, DecomposeError> {
    // Initial colors are id − 1 so they fall in [0, id_space).
    let initial: Vec<u64> = graph.ids().iter().map(|&id| id - 1).collect();
    run_schedule_from(graph, schedule, &initial)
}

/// Runs a prepared schedule starting from an arbitrary legal coloring with values below
/// `schedule.initial_colors`.
///
/// # Errors
///
/// Returns [`DecomposeError::InvalidParameter`] if an initial color is out of range, and
/// propagates executor errors.
pub fn run_schedule_from(
    graph: &Graph,
    schedule: &RecolorSchedule,
    initial: &[u64],
) -> Result<RecolorOutput, DecomposeError> {
    if let Some(&bad) = initial.iter().find(|&&c| c >= schedule.initial_colors) {
        return Err(DecomposeError::InvalidParameter {
            reason: format!(
                "initial color {bad} is outside the schedule's color space {}",
                schedule.initial_colors
            ),
        });
    }
    let algorithm = RecolorAlgorithm::new(schedule, initial);
    let result = run_algorithm(graph, &algorithm)?;
    let coloring = Coloring::new(graph, result.outputs)?;
    let colors_used = coloring.distinct_colors();
    Ok(RecolorOutput {
        coloring,
        colors_used,
        palette_bound: schedule.final_colors(),
        report: result.report,
    })
}

/// Linial's deterministic `O(Δ²)`-coloring in `O(log* n)` rounds.
///
/// # Errors
///
/// Propagates executor errors.
///
/// # Examples
///
/// ```
/// use arbcolor_graph::generators;
/// use arbcolor_decompose::linial::linial_coloring;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::gnp(100, 0.05, 1)?.with_shuffled_ids(2);
/// let out = linial_coloring(&g)?;
/// assert!(out.coloring.is_legal(&g));
/// # Ok(())
/// # }
/// ```
pub fn linial_coloring(graph: &Graph) -> Result<RecolorOutput, DecomposeError> {
    let id_space = graph.ids().iter().copied().max().unwrap_or(1);
    let schedule = RecolorSchedule::build(id_space, graph.max_degree(), 0);
    run_schedule(graph, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log_star::log_star;
    use arbcolor_graph::generators;

    #[test]
    fn schedule_with_zero_budget_has_zero_total_budget() {
        let s = RecolorSchedule::build(1 << 20, 10, 0);
        assert_eq!(s.total_budget(), 0);
        assert!(!s.steps.is_empty());
        // Colors shrink monotonically along the schedule.
        let mut prev = s.initial_colors;
        for step in &s.steps {
            assert!(step.family.new_color_count() < prev);
            prev = step.family.new_color_count();
        }
    }

    #[test]
    fn schedule_length_is_comparable_to_log_star() {
        let s = RecolorSchedule::build(1 << 40, 8, 0);
        // Each step reduces colors from M to roughly (Δ log M)², i.e. a log* -type progression;
        // allow a generous constant factor.
        assert!(s.rounds() as u32 <= 4 * log_star(1 << 40) + 4, "rounds = {}", s.rounds());
    }

    #[test]
    fn linial_produces_legal_coloring_with_quadratic_palette() {
        for seed in 0..3u64 {
            let g = generators::gnp(150, 0.06, seed).unwrap().with_shuffled_ids(seed + 10);
            let delta = g.max_degree() as u64;
            let out = linial_coloring(&g).unwrap();
            assert!(out.coloring.is_legal(&g), "coloring must be legal");
            // Palette bound is q² with q = O(Δ) once the schedule converges (k = 1 at the end,
            // q is the smallest prime > Δ) — allow a constant factor of 9 on Δ² plus slack for
            // tiny Δ.
            assert!(
                out.palette_bound <= 9 * delta * delta + 100,
                "palette bound {} too large for Δ = {delta}",
                out.palette_bound
            );
            assert!(out.report.rounds <= 10, "rounds = {}", out.report.rounds);
        }
    }

    #[test]
    fn linial_on_bounded_degree_graph_uses_few_rounds_as_n_grows() {
        let small = generators::grid(8, 8).unwrap().with_shuffled_ids(1);
        let large = generators::grid(40, 40).unwrap().with_shuffled_ids(1);
        let r_small = linial_coloring(&small).unwrap().report.rounds;
        let r_large = linial_coloring(&large).unwrap().report.rounds;
        // log*-type growth: going from 64 to 1600 vertices adds at most a few rounds.
        assert!(r_large <= r_small + 3, "small {r_small}, large {r_large}");
    }

    #[test]
    fn run_schedule_from_rejects_out_of_range_colors() {
        let g = generators::path(4).unwrap();
        let schedule = RecolorSchedule::build(4, 2, 0);
        let err = run_schedule_from(&g, &schedule, &[0, 1, 2, 99]).unwrap_err();
        assert!(matches!(err, DecomposeError::InvalidParameter { .. }));
    }

    #[test]
    fn empty_schedule_is_a_no_op() {
        let g = generators::path(4).unwrap();
        let schedule = RecolorSchedule { steps: vec![], initial_colors: 10 };
        let out = run_schedule(&g, &schedule).unwrap();
        assert_eq!(out.report.rounds, 0);
        assert!(out.coloring.is_legal(&g));
    }
}
