//! Criterion bench group `sharded_scale`: the same LOCAL executions under the sequential
//! [`Executor`] and the [`ShardedExecutor`] at growing `n` and thread counts.
//!
//! Two tiers are timed: the raw simulator on a message-heavy flood (isolating executor
//! overhead and barrier costs from algorithm logic), and the full Barenboim–Elkin pipeline
//! dispatched through the process-wide executor switch (what experiment E17 measures at
//! much larger `n`).  Outputs are bit-identical across all variants, so the comparison is
//! pure wall-clock.

use arbcolor::legal_coloring::{a_power_coloring, APowerParams};
use arbcolor_graph::generators;
use arbcolor_runtime::{
    algorithms::FloodMaxId, set_default_executor, Executor, ExecutorKind, ShardedExecutor,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_executor_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_scale");
    group.sample_size(10);
    for n in [10_000usize, 40_000] {
        let g = generators::union_of_random_forests(n, 3, 11).unwrap().with_shuffled_ids(4);
        let flood = FloodMaxId { rounds: 12 };
        group.bench_with_input(BenchmarkId::new("flood/sequential", n), &g, |b, g| {
            b.iter(|| Executor::new(g).run(&flood).unwrap())
        });
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("flood/sharded_t{threads}"), n),
                &g,
                |b, g| {
                    b.iter(|| {
                        ShardedExecutor::new(g)
                            .with_threads(threads)
                            .with_sequential_cutoff(0)
                            .run(&flood)
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_pipeline_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_scale");
    group.sample_size(10);
    let n = 6_000usize;
    let g = generators::union_of_random_forests(n, 4, 37).unwrap().with_shuffled_ids(1);
    for (label, kind) in [
        ("be/sequential", ExecutorKind::Sequential),
        ("be/sharded_t2", ExecutorKind::sharded(2)),
        ("be/sharded_t4", ExecutorKind::sharded(4)),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
            set_default_executor(kind);
            b.iter(|| a_power_coloring(g, 4, APowerParams { eta: 0.5, epsilon: 1.0 }).unwrap());
            set_default_executor(ExecutorKind::Sequential);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor_overhead, bench_pipeline_dispatch);
criterion_main!(benches);
