//! Criterion benchmark for the two headline algorithms — Barenboim–Elkin (Corollary 4.6,
//! experiment E8) with its Section 4 parameter selections (E5–E7), and Ghaffari–Kuhn
//! (experiment E16) — as wall-clock time of the full simulated execution while the graph
//! grows.  The quantity of scientific interest (simulated LOCAL rounds) is produced by the
//! `experiments` binary; this bench tracks the simulator's own cost.

use arbcolor::ghaffari_kuhn::ghaffari_kuhn_coloring;
use arbcolor::legal_coloring::{a_power_coloring, o_a_coloring, APowerParams, OaParams};
use arbcolor_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_headline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_headline_cor_4_6");
    group.sample_size(10);
    for n in [250usize, 500, 1000] {
        let g = generators::union_of_random_forests(n, 4, 37).unwrap().with_shuffled_ids(1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| a_power_coloring(g, 4, APowerParams { eta: 0.5, epsilon: 1.0 }).unwrap())
        });
    }
    group.finish();
}

fn bench_o_a(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_theorem_4_3");
    group.sample_size(10);
    let g = generators::union_of_random_forests(500, 8, 29).unwrap().with_shuffled_ids(2);
    for mu in [0.3f64, 0.6, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(mu), &mu, |b, &mu| {
            b.iter(|| o_a_coloring(&g, 8, OaParams { mu, epsilon: 1.0 }).unwrap())
        });
    }
    group.finish();
}

fn bench_ghaffari_kuhn(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_ghaffari_kuhn");
    group.sample_size(10);
    for n in [250usize, 500, 1000] {
        let g = generators::union_of_random_forests(n, 4, 37).unwrap().with_shuffled_ids(1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| ghaffari_kuhn_coloring(g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_headline, bench_o_a, bench_ghaffari_kuhn);
criterion_main!(benches);
