//! Criterion bench group `routing`: the arc-indexed message fabric against the preserved
//! pre-fabric reference executor.
//!
//! Three tiers isolate where the win comes from:
//!
//! * `mirror_port` vs a linear `port_of` scan — the raw routing primitive, summed over
//!   every arc of a dense graph;
//! * a message-dense flood on the full executors — delivery plus mailbox management, no
//!   algorithm logic;
//! * the Ghaffari–Kuhn pipeline through the process-wide executor switch — what experiment
//!   E18 measures at much larger `n`.
//!
//! Outputs are bit-identical across fabrics (enforced by `tests/message_fabric.rs`), so
//! every comparison is pure wall-clock.

use arbcolor_baselines::registry::headline_algorithms;
use arbcolor_graph::generators;
use arbcolor_runtime::{
    algorithms::FloodMaxId, set_default_executor, Executor, ExecutorKind, ReferenceExecutor,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_routing_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(20);
    let n = 2_000usize;
    let g = generators::random_regular_like(n, 48, 7).unwrap();
    group.bench_with_input(BenchmarkId::new("port/mirror_table", n), &g, |b, g| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in g.vertices() {
                for port in 0..g.degree(v) {
                    acc += g.mirror_port(v, port);
                }
            }
            black_box(acc)
        })
    });
    group.bench_with_input(BenchmarkId::new("port/linear_scan", n), &g, |b, g| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in g.vertices() {
                for &u in g.neighbors(v) {
                    acc += g.neighbors(u).iter().position(|&w| w == v).unwrap();
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_flood_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    for (family, n, degree) in [("dense", 10_000usize, 32usize), ("sparse", 40_000, 6)] {
        let g = generators::random_regular_like(n, degree, 11).unwrap().with_shuffled_ids(4);
        let flood = FloodMaxId { rounds: 8 };
        group.bench_with_input(BenchmarkId::new(format!("flood/{family}/flat"), n), &g, |b, g| {
            b.iter(|| Executor::new(g).run(&flood).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new(format!("flood/{family}/reference"), n),
            &g,
            |b, g| b.iter(|| ReferenceExecutor::new(g).run(&flood).unwrap()),
        );
    }
    group.finish();
}

fn bench_headliner_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    let n = 4_000usize;
    let g = generators::random_regular_like(n, 24, 13).unwrap().with_shuffled_ids(2);
    let gk = headline_algorithms()
        .into_iter()
        .find(|a| a.name() == "ghaffari_kuhn")
        .expect("registry has the GK headliner");
    for (label, kind) in
        [("gk/flat", ExecutorKind::Sequential), ("gk/reference", ExecutorKind::Reference)]
    {
        group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
            set_default_executor(kind);
            b.iter(|| gk.run(g).unwrap());
            set_default_executor(ExecutorKind::Sequential);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing_primitive, bench_flood_delivery, bench_headliner_fabric);
criterion_main!(benches);
