//! Criterion benchmarks for the bitset palette engine (experiment E24's wall-clock side):
//! raw [`PaletteSet`] strike/pick micro-costs, and the bitset pick path of
//! [`ScheduledListColor`] against the preserved `Vec`-scan reference
//! ([`VecScanListColor`]) on identical greedy-scheduled sweeps.

use arbcolor_baselines::greedy::sequential_greedy;
use arbcolor_graph::{generators, PaletteSet};
use arbcolor_runtime::algorithms::{
    ListColorSchedule, ListColorSlot, ScheduledListColor, VecScanListColor,
};
use arbcolor_runtime::Executor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_palette_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("palette_set_strike_pick");
    group.sample_size(10);
    for bound in [64u64, 1024, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            let mut set = PaletteSet::new(bound);
            b.iter(|| {
                // Strike every other color, pick, epoch-clear — the hot node-program cycle.
                for color in (0..bound).step_by(2) {
                    set.strike(color);
                }
                let picked = set.first_unstruck().expect("odd colors survive");
                set.clear();
                picked
            })
        });
    }
    group.finish();
}

fn greedy_slots(n: usize) -> (arbcolor_graph::Graph, Vec<ListColorSlot>) {
    let g = generators::random_regular_like(n, 32, 103).unwrap().with_shuffled_ids(17);
    let schedule_coloring = sequential_greedy(&g, None);
    let slots = g
        .vertices()
        .map(|v| ListColorSlot {
            slot: schedule_coloring.color(v) as usize,
            palette: (0..=g.degree(v) as u64).collect(),
            forbidden: Vec::new(),
        })
        .collect();
    (g, slots)
}

fn bench_bitset_pick_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("palette_pick_bitset");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let (g, slots) = greedy_slots(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| {
                let schedule = ListColorSchedule::from_slots(&slots);
                Executor::new(&g).run(&ScheduledListColor::new(&schedule)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_vecscan_pick_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("palette_pick_vecscan");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let (g, slots) = greedy_slots(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| Executor::new(&g).run(&VecScanListColor::new(&slots)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_palette_set, bench_bitset_pick_path, bench_vecscan_pick_path);
criterion_main!(benches);
