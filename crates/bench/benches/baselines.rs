//! Criterion benchmark for the §1.2 comparison (E13), the trade-offs (E10, E11) and the MIS
//! result (E12): the paper's algorithm versus the baseline suite on a sparse high-degree graph.

use arbcolor::legal_coloring::{a_power_coloring, APowerParams};
use arbcolor::mis::mis_bounded_arboricity;
use arbcolor::tradeoffs::color_time_tradeoff;
use arbcolor_baselines::luby::luby_mis;
use arbcolor_baselines::registry::standard_baselines;
use arbcolor_graph::{degeneracy, generators};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_baseline_table(c: &mut Criterion) {
    let g = generators::star_forest_union(600, 2, 4, 67).unwrap().with_shuffled_ids(8);
    let a = degeneracy::degeneracy(&g).max(1);
    let mut group = c.benchmark_group("e13_baselines");
    group.sample_size(10);
    group.bench_function("this_paper_cor_4_6", |b| {
        b.iter(|| a_power_coloring(&g, a, APowerParams { eta: 0.5, epsilon: 1.0 }).unwrap())
    });
    for baseline in standard_baselines(71) {
        group.bench_function(baseline.name(), |b| b.iter(|| baseline.run(&g).unwrap()));
    }
    group.finish();
}

fn bench_tradeoff_and_mis(c: &mut Criterion) {
    let g = generators::union_of_random_forests(400, 8, 53).unwrap().with_shuffled_ids(9);
    let mut group = c.benchmark_group("e10_e11_e12");
    group.sample_size(10);
    group.bench_function("e11_tradeoff_t4", |b| {
        b.iter(|| color_time_tradeoff(&g, 8, 4, 0.5, 1.0).unwrap())
    });
    group.bench_function("e12_mis_deterministic", |b| {
        b.iter(|| mis_bounded_arboricity(&g, 8, 0.5, 1.0).unwrap())
    });
    group.bench_function("e12_mis_luby", |b| b.iter(|| luby_mis(&g, 61)));
    group.finish();
}

criterion_group!(benches, bench_baseline_table, bench_tradeoff_and_mis);
criterion_main!(benches);
