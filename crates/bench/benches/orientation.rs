//! Criterion benchmarks for the Section 3 machinery: Procedure Partial-Orientation /
//! Complete-Orientation (E2, E3) and Procedure Arbdefective-Coloring (E1, E4).

use arbcolor::arbdefective_coloring::arbdefective_coloring;
use arbcolor::orientation_procs::{complete_orientation, partial_orientation};
use arbcolor_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_orientations(c: &mut Criterion) {
    let g = generators::union_of_random_forests(500, 6, 17).unwrap().with_shuffled_ids(3);
    let mut group = c.benchmark_group("e2_e3_orientations");
    group.sample_size(10);
    group.bench_function("complete_orientation", |b| {
        b.iter(|| complete_orientation(&g, 6, 1.0).unwrap())
    });
    for t in [1usize, 3, 6] {
        group.bench_with_input(BenchmarkId::new("partial_orientation_t", t), &t, |b, &t| {
            b.iter(|| partial_orientation(&g, 6, t, 1.0).unwrap())
        });
    }
    group.finish();
}

fn bench_arbdefective(c: &mut Criterion) {
    let g = generators::union_of_random_forests(400, 6, 19).unwrap().with_shuffled_ids(4);
    let mut group = c.benchmark_group("e1_e4_arbdefective");
    group.sample_size(10);
    for p in [2usize, 3, 6] {
        group.bench_with_input(BenchmarkId::new("k_t", p), &p, |b, &p| {
            b.iter(|| arbdefective_coloring(&g, 6, p as u64, p, 1.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orientations, bench_arbdefective);
criterion_main!(benches);
