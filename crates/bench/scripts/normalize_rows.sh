#!/usr/bin/env sh
# Normalizes experiment JSON-lines rows for cross-executor diffing: strips every
# advisory (hardware-dependent) value column, keeping the deterministic ones that
# must be bit-identical across executors, thread counts, and chunk sizes.
#
# The prefix rule is the same one `arbcolor_bench::perf::is_advisory` applies in
# the perf gate — `wall_*` and `speedup_*` — so the CI diff legs and the perf
# pipeline agree on what counts as deterministic.  Used by the bench-smoke,
# ingest-smoke, and congest-smoke jobs (one definition instead of drifting
# per-job copies).
#
# Usage: normalize_rows.sh rows.jsonl > rows.normalized.jsonl
set -eu
jq -c '.values |= with_entries(select(.key | test("^(wall_|speedup_)") | not))' "$@"
