//! One function per experiment of the reproduction index (DESIGN.md §5).
//!
//! Every function takes a [`SizeClass`] — `Scale(1)` reproduces the sizes recorded in
//! EXPERIMENTS.md, larger scales grow the graphs, and `Smoke` shrinks every workload to a
//! tiny fraction so the whole suite finishes in seconds (the CI `bench-smoke` job runs it on
//! every pull request and archives the JSON rows).  All experiments are deterministic: graph
//! generators and randomized baselines take fixed seeds.

use crate::row::Row;
use arbcolor::arb_kuhn::arb_kuhn_coloring;
use arbcolor::arbdefective_coloring::arbdefective_coloring;
use arbcolor::legal_coloring::{
    a_one_plus_o1_coloring, a_power_coloring, o_a_coloring, one_shot_coloring,
    sparse_delta_plus_one, APowerParams, OaParams,
};
use arbcolor::mis::mis_bounded_arboricity;
use arbcolor::orientation_procs::{complete_orientation, partial_orientation};
use arbcolor::simple_arbdefective::simple_arbdefective;
use arbcolor::tradeoffs::{color_time_tradeoff, sub_quadratic_coloring};
use arbcolor_baselines::luby::luby_mis;
use arbcolor_baselines::registry::{congest_headliners, headline_algorithms, standard_baselines};
use arbcolor_decompose::defective::defective_coloring;
use arbcolor_decompose::forests::bounded_outdegree_orientation;
use arbcolor_graph::{degeneracy, generators, Graph};
use arbcolor_runtime::{
    default_cost_mode, default_executor, set_default_cost_mode, set_default_executor, CostMode,
    ExecutorKind, RoundReport,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const EPS: f64 = 1.0;

/// The process-wide seed for experiments with randomized contenders (E22's HKMT headliner).
/// Defaults to 42 — the value every committed table and CI baseline was produced with.
static EXPERIMENT_SEED: AtomicU64 = AtomicU64::new(42);

/// Sets the seed randomized experiments derive their PRNGs from (the `--seed` CLI flag).
pub fn set_experiment_seed(seed: u64) {
    EXPERIMENT_SEED.store(seed, Ordering::Relaxed);
}

/// The current experiment seed (see [`set_experiment_seed`]).
pub fn experiment_seed() -> u64 {
    EXPERIMENT_SEED.load(Ordering::Relaxed)
}

/// How large the experiment workloads should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Tiny graphs for the CI smoke tier: every base size is divided by six (with a floor),
    /// keeping the full suite under a few seconds while still exercising every code path.
    Smoke,
    /// The recorded experiment sizes multiplied by the given factor (0 is treated as 1).
    Scale(usize),
}

impl SizeClass {
    /// Maps a base vertex count to the vertex count to run at.
    pub fn n(self, base: usize) -> usize {
        match self {
            SizeClass::Smoke => (base / 6).max(40),
            SizeClass::Scale(factor) => base * factor.max(1),
        }
    }
}

fn forest_graph(n: usize, a: usize, seed: u64) -> (Graph, usize) {
    let g = generators::union_of_random_forests(n, a, seed)
        .expect("valid forest-union parameters")
        .with_shuffled_ids(seed + 1);
    (g, a)
}

/// E1 — Theorem 3.2: Simple-Arbdefective on a complete bounded-out-degree orientation.
pub fn e1_simple_arbdefective(sz: SizeClass) -> Vec<Row> {
    let (g, a) = forest_graph(sz.n(300), 4, 11);
    let bounded = bounded_outdegree_orientation(&g, a, EPS).expect("arboricity bound holds");
    let mut rows = Vec::new();
    for k in [1u64, 2, 4, 8] {
        let out = simple_arbdefective(&g, &bounded.orientation, k, bounded.out_degree_bound, 0)
            .expect("Theorem 3.2");
        let worst = out.verify(&g).expect("witnesses check out");
        rows.push(
            Row::new("E1", format!("forests n={}, a={a}, k={k}", g.n()))
                .with("k", k as f64)
                .with("claimed_arbdefect", out.arbdefect_bound as f64)
                .with("measured_arbdefect", worst as f64)
                .with("rounds", out.report.rounds as f64)
                .with("orientation_length", bounded.orientation.length(&g).unwrap() as f64),
        );
    }
    rows
}

/// E2 — Lemma 3.3: Complete-Orientation out-degree and length.
pub fn e2_complete_orientation(sz: SizeClass) -> Vec<Row> {
    let mut rows = Vec::new();
    for (n, a) in [(sz.n(200), 2), (sz.n(400), 4), (sz.n(800), 4)] {
        let (g, _) = forest_graph(n, a, 13);
        let oriented = complete_orientation(&g, a, EPS).expect("Lemma 3.3");
        rows.push(
            Row::new("E2", format!("forests n={n}, a={a}"))
                .with("out_degree_bound", oriented.out_degree_bound as f64)
                .with("measured_out_degree", oriented.orientation.max_out_degree(&g) as f64)
                .with("measured_length", oriented.measured_length as f64)
                .with(
                    "a_logn_bound",
                    (oriented.bucket_palette_bound + 1) as f64
                        * (oriented.partition.num_buckets + 1) as f64,
                )
                .with("rounds", oriented.report().rounds as f64),
        );
    }
    rows
}

/// E3 — Theorem 3.5: Partial-Orientation deficit/length/rounds versus `t`.
pub fn e3_partial_orientation(sz: SizeClass) -> Vec<Row> {
    let (g, a) = forest_graph(sz.n(500), 6, 17);
    let mut rows = Vec::new();
    for t in [1usize, 2, 3, 6] {
        let oriented = partial_orientation(&g, a, t, EPS).expect("Theorem 3.5");
        rows.push(
            Row::new("E3", format!("forests n={}, a={a}, t={t}", g.n()))
                .with("t", t as f64)
                .with("deficit_bound", oriented.deficit_bound as f64)
                .with("measured_deficit", oriented.orientation.max_deficit(&g) as f64)
                .with("measured_out_degree", oriented.orientation.max_out_degree(&g) as f64)
                .with("measured_length", oriented.measured_length as f64)
                .with("rounds", oriented.report().rounds as f64),
        );
    }
    rows
}

/// E4 — Corollary 3.6: Arbdefective-Coloring quality versus `(k, t)`.
pub fn e4_arbdefective_coloring(sz: SizeClass) -> Vec<Row> {
    let (g, a) = forest_graph(sz.n(400), 6, 19);
    let mut rows = Vec::new();
    for (k, t) in [(2u64, 2usize), (3, 3), (6, 6), (3, 6)] {
        let out = arbdefective_coloring(&g, a, k, t, EPS).expect("Corollary 3.6");
        let worst = out.coloring.verify(&g).expect("witnesses check out");
        rows.push(
            Row::new("E4", format!("forests n={}, a={a}, k={k}, t={t}", g.n()))
                .with("claimed_arbdefect", out.arbdefect_bound() as f64)
                .with("measured_arbdefect", worst as f64)
                .with("rounds", out.ledger.total().rounds as f64),
        );
    }
    rows
}

/// E5 — Lemma 4.1: the one-shot `O(a)`-coloring.
pub fn e5_one_shot(sz: SizeClass) -> Vec<Row> {
    let mut rows = Vec::new();
    for a in [4usize, 8, 12] {
        let (g, _) = forest_graph(sz.n(300), a, 23);
        let run = one_shot_coloring(&g, a, EPS).expect("Lemma 4.1");
        rows.push(
            Row::new("E5", format!("forests n={}, a={a}", g.n()))
                .with("a", a as f64)
                .with("colors", run.colors_used as f64)
                .with("colors_over_a", run.colors_used as f64 / a as f64)
                .with("rounds", run.report.rounds as f64),
        );
    }
    rows
}

/// E6 — Theorem 4.3 / Corollary 4.4: `O(a)` colors in `O(a^µ log n)` rounds.
pub fn e6_o_a_coloring(sz: SizeClass) -> Vec<Row> {
    let (g, a) = forest_graph(sz.n(500), 8, 29);
    let mut rows = Vec::new();
    for mu in [0.3, 0.6, 0.9] {
        let run = o_a_coloring(&g, a, OaParams { mu, epsilon: EPS }).expect("Theorem 4.3");
        rows.push(
            Row::new("E6", format!("forests n={}, a={a}, mu={mu}", g.n()))
                .with("mu", mu)
                .with("colors", run.colors_used as f64)
                .with("colors_over_a", run.colors_used as f64 / a as f64)
                .with("rounds", run.report.rounds as f64),
        );
    }
    rows
}

/// E7 — Theorem 4.5: `a^{1+o(1)}` colors.
pub fn e7_a_one_plus_o1(sz: SizeClass) -> Vec<Row> {
    let mut rows = Vec::new();
    for a in [4usize, 8, 16] {
        let (g, _) = forest_graph(sz.n(400), a, 31);
        let run = a_one_plus_o1_coloring(&g, a, EPS).expect("Theorem 4.5");
        rows.push(
            Row::new("E7", format!("forests n={}, a={a}", g.n()))
                .with("a", a as f64)
                .with("colors", run.colors_used as f64)
                .with("colors_over_a", run.colors_used as f64 / a as f64)
                .with("rounds", run.report.rounds as f64),
        );
    }
    rows
}

/// E8 — Corollary 4.6 (headline): `O(a^{1+η})` colors in `O(log a · log n)` rounds; rounds
/// scale with `log n`.
pub fn e8_headline(sz: SizeClass) -> Vec<Row> {
    let mut rows = Vec::new();
    for n in [sz.n(250), sz.n(500), sz.n(1000), sz.n(2000)] {
        let (g, a) = forest_graph(n, 4, 37);
        let run = a_power_coloring(&g, a, APowerParams { eta: 0.5, epsilon: EPS })
            .expect("Corollary 4.6");
        rows.push(
            Row::new("E8", format!("forests n={n}, a={a}, eta=0.5"))
                .with("n", n as f64)
                .with("log2_n", (n as f64).log2())
                .with("colors", run.colors_used as f64)
                .with("rounds", run.report.rounds as f64)
                .with("rounds_over_log2n", run.report.rounds as f64 / (n as f64).log2()),
        );
    }
    rows
}

/// E9 — Corollary 4.7: sparse graphs (`a ≪ Δ`) get far fewer than `Δ` colors.
pub fn e9_sparse_delta(sz: SizeClass) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, g) in [
        (
            "star-forests",
            generators::star_forest_union(sz.n(800), 2, 4, 41).unwrap().with_shuffled_ids(5),
        ),
        (
            "preferential-attachment",
            generators::barabasi_albert(sz.n(800), 3, 43).unwrap().with_shuffled_ids(6),
        ),
    ] {
        let a = degeneracy::degeneracy(&g).max(1);
        let run = sparse_delta_plus_one(&g, a, 0.5, EPS).expect("Corollary 4.7");
        rows.push(
            Row::new("E9", format!("{name} n={}", g.n()))
                .with("degeneracy", a as f64)
                .with("max_degree", g.max_degree() as f64)
                .with("colors", run.colors_used as f64)
                .with("delta_plus_one", (g.max_degree() + 1) as f64)
                .with("rounds", run.report.rounds as f64),
        );
    }
    rows
}

/// E10 — Theorem 5.2: `O(a²/g)` colors in `O(log g · log n)` rounds.
pub fn e10_sub_quadratic(sz: SizeClass) -> Vec<Row> {
    let (g, a) = forest_graph(sz.n(500), 8, 47);
    let mut rows = Vec::new();
    for split in [2usize, 4, 8] {
        let run = sub_quadratic_coloring(&g, a, split, 1.0, EPS).expect("Theorem 5.2");
        rows.push(
            Row::new("E10", format!("forests n={}, a={a}, g={split}", g.n()))
                .with("g", split as f64)
                .with("colors", run.colors_used as f64)
                .with("a_squared", (a * a) as f64)
                .with("rounds", run.report.rounds as f64),
        );
    }
    rows
}

/// E11 — Theorem 5.3: the color/time trade-off.
pub fn e11_tradeoff(sz: SizeClass) -> Vec<Row> {
    let (g, a) = forest_graph(sz.n(500), 8, 53);
    let mut rows = Vec::new();
    for t in [1usize, 2, 4, 8] {
        let run = color_time_tradeoff(&g, a, t, 0.5, EPS).expect("Theorem 5.3");
        rows.push(
            Row::new("E11", format!("forests n={}, a={a}, t={t}", g.n()))
                .with("t", t as f64)
                .with("colors", run.colors_used as f64)
                .with("a_times_t", (a * t) as f64)
                .with("rounds", run.report.rounds as f64),
        );
    }
    rows
}

/// E12 — §1.2 MIS: deterministic bounded-arboricity MIS versus Luby.
pub fn e12_mis(sz: SizeClass) -> Vec<Row> {
    let mut rows = Vec::new();
    for a in [2usize, 4] {
        let (g, _) = forest_graph(sz.n(500), a, 59);
        let det = mis_bounded_arboricity(&g, a, 0.5, EPS).expect("MIS");
        det.verify(&g).expect("valid MIS");
        let luby = luby_mis(&g, 61);
        rows.push(
            Row::new("E12", format!("forests n={}, a={a}", g.n()))
                .with("det_size", det.size as f64)
                .with("det_rounds", det.ledger.total().rounds as f64)
                .with("luby_size", luby.size as f64)
                .with("luby_rounds", luby.report.rounds as f64),
        );
    }
    rows
}

/// E13 — the §1.2 state-of-the-art comparison table: the two headline algorithms (the
/// `barenboim_elkin` registry entry *is* the paper's Corollary 4.6/4.7 coloring) versus
/// every baseline on the same graph.
pub fn e13_baseline_table(sz: SizeClass) -> Vec<Row> {
    let g = generators::star_forest_union(sz.n(600), 2, 4, 67).unwrap().with_shuffled_ids(8);
    let mut rows = Vec::new();
    for baseline in headline_algorithms().into_iter().chain(standard_baselines(71)) {
        match baseline.run(&g) {
            Ok(outcome) => rows.push(
                Row::new("E13", format!("{} on stars n={}", outcome.name, g.n()))
                    .with("colors", outcome.colors as f64)
                    .with("rounds", outcome.report.rounds as f64)
                    .with("deterministic", if outcome.deterministic { 1.0 } else { 0.0 }),
            ),
            Err(err) => rows.push(Row::new("E13", format!("{} failed: {err}", baseline.name()))),
        }
    }
    rows
}

/// E14 — Figure 1: structure of the longest directed path under Partial-Orientation.
pub fn e14_figure1(sz: SizeClass) -> Vec<Row> {
    let (g, a) = forest_graph(sz.n(500), 4, 73);
    let oriented = partial_orientation(&g, a, 3, EPS).expect("Theorem 3.5");
    let path = oriented.orientation.longest_path(&g).expect("acyclic");
    let crossings = path
        .windows(2)
        .filter(|w| oriented.partition.h_index[w[0]] != oriented.partition.h_index[w[1]])
        .count();
    vec![Row::new("E14", format!("forests n={}, a={a}, t=3", g.n()))
        .with("path_length", path.len().saturating_sub(1) as f64)
        .with("bucket_crossings", crossings as f64)
        .with("num_buckets", oriented.partition.num_buckets as f64)
        .with("bucket_palette", oriented.bucket_palette_bound as f64)]
}

/// E15 — Lemma 2.1 and Algorithm Arb-Kuhn: the recoloring primitives.
pub fn e15_primitives(sz: SizeClass) -> Vec<Row> {
    let mut rows = Vec::new();
    let g = generators::gnp(sz.n(600), 0.02, 79).unwrap().with_shuffled_ids(9);
    let delta = g.max_degree();
    for p in [2usize, 4, 8] {
        let out = defective_coloring(&g, p).expect("Lemma 2.1");
        rows.push(
            Row::new("E15", format!("gnp n={}, Δ={delta}, p={p} (defective)", g.n()))
                .with("p", p as f64)
                .with("target_defect", out.target_defect as f64)
                .with("measured_defect", out.measured_defect as f64)
                .with("colors", out.output.colors_used as f64)
                .with("p_squared", (p * p) as f64)
                .with("rounds", out.output.report.rounds as f64),
        );
    }
    let (gf, a) = forest_graph(sz.n(600), 6, 83);
    for d in [1usize, 2, 3] {
        let out = arb_kuhn_coloring(&gf, a, d, EPS).expect("Arb-Kuhn");
        let worst = out.verify(&gf).expect("witnesses");
        rows.push(
            Row::new("E15", format!("forests n={}, a={a}, d={d} (arb-kuhn)", gf.n()))
                .with("target_arbdefect", d as f64)
                .with("measured_arbdefect", worst as f64)
                .with("colors", out.coloring.distinct_colors() as f64)
                .with("rounds", out.ledger.total().rounds as f64),
        );
    }
    rows
}

/// The seeded generator-family suite every headliner head-to-head runs on (E16, E22, E23):
/// one graph per family, identical across the three experiments so their tables align.
fn headline_families(sz: SizeClass) -> Vec<(&'static str, Graph)> {
    vec![
        (
            "forests",
            generators::union_of_random_forests(sz.n(500), 3, 89).unwrap().with_shuffled_ids(10),
        ),
        (
            "star-forests",
            generators::star_forest_union(sz.n(600), 2, 4, 91).unwrap().with_shuffled_ids(11),
        ),
        (
            "preferential-attachment",
            generators::barabasi_albert(sz.n(600), 3, 93).unwrap().with_shuffled_ids(12),
        ),
        ("random-trees", generators::random_tree(sz.n(500), 97).unwrap().with_shuffled_ids(13)),
        ("grid", generators::grid(sz.n(120) / 5, 25).unwrap().with_shuffled_ids(14)),
        ("caterpillar", generators::caterpillar(sz.n(480) / 6, 5).unwrap().with_shuffled_ids(15)),
    ]
}

/// E16 — the headline head-to-head: Barenboim–Elkin versus Ghaffari–Kuhn on the same seeded
/// graph of every generator family.  Every coloring is re-verified legal with at most `Δ + 1`
/// colors before its row is emitted.
pub fn e16_headline_head_to_head(sz: SizeClass) -> Vec<Row> {
    let families = headline_families(sz);
    let mut rows = Vec::new();
    for (family, g) in &families {
        let delta_plus_one = g.max_degree() + 1;
        for algorithm in headline_algorithms() {
            let outcome = algorithm
                .run(g)
                .unwrap_or_else(|e| panic!("{} failed on {family}: {e}", algorithm.name()));
            assert!(
                outcome.coloring.is_legal(g),
                "{} produced an illegal coloring on {family}",
                outcome.name
            );
            assert!(
                outcome.colors <= delta_plus_one,
                "{} used {} colors on {family} but Δ + 1 = {delta_plus_one}",
                outcome.name,
                outcome.colors
            );
            rows.push(
                Row::new("E16", format!("{family} n={} · {}", g.n(), outcome.name))
                    .with("n", g.n() as f64)
                    .with("max_degree", g.max_degree() as f64)
                    .with("degeneracy", degeneracy::degeneracy(g) as f64)
                    .with("colors", outcome.colors as f64)
                    .with("delta_plus_one", delta_plus_one as f64)
                    .with("rounds", outcome.report.rounds as f64)
                    .with("messages", outcome.report.messages as f64)
                    .with("legal", 1.0),
            );
        }
    }
    rows
}

/// E17 — the sharded-simulator scale sweep: both headliners on growing forest unions under
/// the sequential executor (`threads = 1`) and the sharded executor (`threads = 4`).
///
/// Rounds, messages, and palettes are re-checked to be **bit-identical** across executors
/// before a row is emitted (the determinism guarantee of `arbcolor_runtime::shard`); the
/// wall-clock column is the only quantity allowed to differ.  `speedup_vs_seq` is the
/// sequential wall-clock divided by the row's wall-clock, so the `threads = 4` rows report
/// the parallel speedup of the whole pipeline on the same graph.
///
/// At `Scale(1)` this is the `n ∈ {10⁵, 10⁶}` sweep of the reproduction index — minutes of
/// work; the smoke tier shrinks it to one n just above the sharded executor's sequential
/// cutoff so CI exercises the parallel path end to end in seconds.
pub fn e17_sharded_scale(sz: SizeClass) -> Vec<Row> {
    let sizes: Vec<usize> = match sz {
        SizeClass::Smoke => vec![4_000],
        SizeClass::Scale(factor) => {
            let factor = factor.max(1);
            vec![100_000 * factor, 1_000_000 * factor]
        }
    };
    let previous = default_executor();
    let mut rows = Vec::new();
    for n in sizes {
        let g = generators::union_of_random_forests(n, 3, 101).unwrap().with_shuffled_ids(16);
        for algorithm in headline_algorithms() {
            let mut sequential: Option<(usize, RoundReport, f64)> = None;
            for threads in [1usize, 4] {
                set_default_executor(if threads == 1 {
                    ExecutorKind::Sequential
                } else {
                    ExecutorKind::sharded(threads)
                });
                let start = Instant::now();
                let outcome = algorithm.run(&g).unwrap_or_else(|e| {
                    panic!("{} failed on forests n={n}, threads={threads}: {e}", algorithm.name())
                });
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let speedup = match &sequential {
                    None => {
                        sequential = Some((outcome.colors, outcome.report, wall_ms));
                        1.0
                    }
                    Some((colors, report, seq_wall_ms)) => {
                        let (colors, report, seq_wall_ms) = (*colors, *report, *seq_wall_ms);
                        assert_eq!(
                            (outcome.colors, outcome.report),
                            (colors, report),
                            "{} diverged between executors on forests n={n}",
                            outcome.name
                        );
                        seq_wall_ms / wall_ms
                    }
                };
                rows.push(
                    Row::new(
                        "E17",
                        format!("forests n={n} · {} · threads={threads}", outcome.name),
                    )
                    .with("n", n as f64)
                    .with("threads", threads as f64)
                    .with("colors", outcome.colors as f64)
                    .with("rounds", outcome.report.rounds as f64)
                    .with("messages", outcome.report.messages as f64)
                    .with("wall_ms", wall_ms)
                    .with("speedup_vs_seq", speedup),
                );
            }
        }
    }
    set_default_executor(previous);
    rows
}

/// E18 — the message-fabric routing race: old-vs-new delivery on dense, random, and
/// power-law generators.
///
/// "Old" is the preserved [`arbcolor_runtime::ReferenceExecutor`]-style fabric (per-vertex
/// `Vec` mailboxes, O(deg) `port_of` scan per message); "new" is the arc-indexed flat
/// fabric (O(1) mirror-table routing, one slot per port, zero per-round allocation).  Two
/// tiers per graph:
///
/// * a raw-executor race on a message-dense flood (`FloodMaxId`), isolating delivery cost —
///   this is where the `O(Σ deg²)`-per-round term of the old fabric shows directly;
/// * both headline coloring pipelines dispatched through the process-wide executor switch
///   (`ExecutorKind::Reference` vs `ExecutorKind::Sequential`), at the *smallest* size of
///   the sweep (`10⁵` at `Scale(1)`) — racing the quadratic fabric through a whole
///   pipeline at the 10× size would measure minutes of known-slow baseline, so the larger
///   sizes keep the flood race only.
///
/// Colors, rounds, and message counts are asserted **bit-identical** across fabrics before
/// a row is emitted; `wall_ms_flat`, `wall_ms_reference`, and `speedup_vs_ref` are the only
/// columns allowed to vary between runs.  At `Scale(1)` the sweep is `n ∈ {10⁵, 10⁶}`; the
/// smoke tier shrinks it so CI exercises every path in seconds.
pub fn e18_routing_fabric(sz: SizeClass) -> Vec<Row> {
    use arbcolor_runtime::algorithms::FloodMaxId;
    use arbcolor_runtime::{Executor, ReferenceExecutor};

    let sizes: Vec<usize> = match sz {
        SizeClass::Smoke => vec![1_500],
        SizeClass::Scale(factor) => {
            let factor = factor.max(1);
            vec![100_000 * factor, 1_000_000 * factor]
        }
    };
    let headliner_n = *sizes.iter().min().expect("the sweep is never empty");
    let previous = default_executor();
    let mut rows = Vec::new();
    type FamilyGen = fn(usize) -> Graph;
    let families: Vec<(&str, FamilyGen)> = vec![
        ("dense", |n| generators::random_regular_like(n, 32, 103).unwrap().with_shuffled_ids(17)),
        ("random", |n| generators::gnp(n, 8.0 / n as f64, 107).unwrap().with_shuffled_ids(18)),
        ("power-law", |n| generators::barabasi_albert(n, 4, 109).unwrap().with_shuffled_ids(19)),
    ];
    for n in sizes {
        for (family, generate) in &families {
            // One graph lives at a time: at n = 10⁶ the dense family alone is ~1 GB of
            // CSR + edge list, so materializing all three up front would triple peak RSS.
            let g = &generate(n);
            // Raw-executor race: the flood isolates the delivery path.
            let flood = FloodMaxId { rounds: 6 };
            let start = Instant::now();
            let flat = Executor::new(g).run(&flood).expect("flood terminates");
            let wall_flat = start.elapsed().as_secs_f64() * 1e3;
            let start = Instant::now();
            let reference = ReferenceExecutor::new(g).run(&flood).expect("flood terminates");
            let wall_ref = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(flat.outputs, reference.outputs, "flood diverged on {family} n={n}");
            assert_eq!(flat.report, reference.report, "flood cost diverged on {family} n={n}");
            rows.push(
                Row::new("E18", format!("{family} n={n} · flood"))
                    .with("n", n as f64)
                    .with("avg_degree", g.average_degree())
                    .with("rounds", flat.report.rounds as f64)
                    .with("messages", flat.report.messages as f64)
                    .with("wall_ms_flat", wall_flat)
                    .with("wall_ms_reference", wall_ref)
                    .with("speedup_vs_ref", wall_ref / wall_flat.max(1e-9)),
            );
            if n > headliner_n {
                continue;
            }
            // Full-pipeline race: every run_algorithm call of both headliners lands on one
            // fabric or the other via the process-wide switch.
            for algorithm in headline_algorithms() {
                set_default_executor(ExecutorKind::Sequential);
                let start = Instant::now();
                let flat = algorithm.run(g).unwrap_or_else(|e| {
                    panic!("{} failed on {family} n={n}: {e}", algorithm.name())
                });
                let wall_flat = start.elapsed().as_secs_f64() * 1e3;
                set_default_executor(ExecutorKind::Reference);
                let start = Instant::now();
                let reference = algorithm.run(g).unwrap_or_else(|e| {
                    panic!("{} failed on {family} n={n} (reference): {e}", algorithm.name())
                });
                let wall_ref = start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    (flat.colors, flat.report, flat.coloring.colors()),
                    (reference.colors, reference.report, reference.coloring.colors()),
                    "{} diverged between fabrics on {family} n={n}",
                    flat.name
                );
                rows.push(
                    Row::new("E18", format!("{family} n={n} · {}", flat.name))
                        .with("n", n as f64)
                        .with("avg_degree", g.average_degree())
                        .with("colors", flat.colors as f64)
                        .with("rounds", flat.report.rounds as f64)
                        .with("messages", flat.report.messages as f64)
                        .with("wall_ms_flat", wall_flat)
                        .with("wall_ms_reference", wall_ref)
                        .with("speedup_vs_ref", wall_ref / wall_flat.max(1e-9)),
                );
            }
        }
    }
    set_default_executor(previous);
    rows
}

/// E19 — real-graph ingestion: both headliners on every checked-in fixture dataset (see
/// [`crate::datasets`]), parsed from their on-disk formats through `arbcolor_graph::io`.
///
/// Every coloring is re-verified legal and within `Δ + 1` before its row is emitted, so a
/// parser that silently corrupts a graph (or an algorithm that mishandles real-shaped
/// degree distributions) fails the experiment rather than producing a quiet bad row.
///
/// The fixtures have fixed sizes, so the [`SizeClass`] is ignored — the smoke tier and the
/// full tier run identical workloads (they are already CI-sized).
pub fn e19_real_graph_ingestion(_sz: SizeClass) -> Vec<Row> {
    let mut rows = Vec::new();
    for (i, ds) in crate::datasets::fixture_datasets().iter().enumerate() {
        let g = ds
            .load()
            .unwrap_or_else(|e| panic!("fixture {} failed to parse: {e}", ds.name))
            .with_shuffled_ids(113 + i as u64);
        let delta_plus_one = g.max_degree() + 1;
        for algorithm in headline_algorithms() {
            let start = Instant::now();
            let outcome = algorithm
                .run(&g)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", algorithm.name(), ds.name));
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(
                outcome.coloring.is_legal(&g),
                "{} produced an illegal coloring on {}",
                outcome.name,
                ds.name
            );
            assert!(
                outcome.colors <= delta_plus_one,
                "{} used {} colors on {} but Δ + 1 = {delta_plus_one}",
                outcome.name,
                outcome.colors,
                ds.name
            );
            rows.push(
                Row::new(
                    "E19",
                    format!("{} ({}) n={} · {}", ds.name, ds.format.name(), g.n(), outcome.name),
                )
                .with("n", g.n() as f64)
                .with("m", g.m() as f64)
                .with("max_degree", g.max_degree() as f64)
                .with("degeneracy", degeneracy::degeneracy(&g) as f64)
                .with("colors", outcome.colors as f64)
                .with("delta_plus_one", delta_plus_one as f64)
                .with("rounds", outcome.report.rounds as f64)
                .with("messages", outcome.report.messages as f64)
                .with("legal", 1.0)
                .with("wall_ms", wall_ms),
            );
        }
    }
    rows
}

/// E20 — dynamic recoloring: edge-insertion batches on every fixture dataset, localized
/// repair versus the full-recolor baseline.
///
/// Per dataset, every 8th edge (by canonical index) is held out of the initial graph and
/// re-inserted in three round-robin batches through
/// [`arbcolor::dynamic::DynamicColoring`].  Each row compares the vertices the localized
/// repair touched (`repaired_vertices`) against the full-recolor baseline
/// (`full_recolor_vertices = n`, with its rounds and wall-clock measured by actually
/// re-coloring the post-batch graph); the experiment asserts that at least one batch per
/// dataset repairs strictly fewer vertices than the baseline would touch.
///
/// The entire batch sequence is replayed under the sequential, sharded, and reference
/// executors and the final colorings (plus all per-batch frontier/repair counts) are
/// asserted **bit-identical** — only the `wall_ms_*` columns may differ between runs.  The
/// fixtures have fixed sizes, so the [`SizeClass`] is ignored.
pub fn e20_dynamic_recoloring(_sz: SizeClass) -> Vec<Row> {
    use arbcolor::dynamic::{BatchOutcome, DynamicColoring, GraphUpdate, RepairStrategy};
    use arbcolor::ghaffari_kuhn::ghaffari_kuhn_coloring;
    use arbcolor_graph::Coloring;

    const BATCHES: usize = 3;

    /// Replays the whole insertion sequence under `kind`, returning the final coloring,
    /// the per-batch outcomes, and the per-batch repair wall-clock.
    fn run_sequence(
        kind: ExecutorKind,
        base: &Graph,
        batches: &[Vec<(usize, usize)>],
    ) -> (Coloring, Vec<BatchOutcome>, Vec<f64>) {
        let previous = default_executor();
        set_default_executor(kind);
        let mut dynamic = DynamicColoring::new(base.clone()).expect("initial coloring");
        let mut outcomes = Vec::new();
        let mut walls = Vec::new();
        for batch in batches {
            let updates = [GraphUpdate::InsertEdges(batch.clone())];
            let start = Instant::now();
            let outcome = dynamic.apply(&updates).expect("batch repair");
            walls.push(start.elapsed().as_secs_f64() * 1e3);
            outcomes.push(outcome);
        }
        set_default_executor(previous);
        (dynamic.coloring().clone(), outcomes, walls)
    }

    let mut rows = Vec::new();
    for (i, ds) in crate::datasets::fixture_datasets().iter().enumerate() {
        let full = ds
            .load()
            .unwrap_or_else(|e| panic!("fixture {} failed to parse: {e}", ds.name))
            .with_shuffled_ids(127 + i as u64);
        // Hold out every 8th edge; re-insert round-robin across the batches.
        let mut kept = Vec::new();
        let mut batches: Vec<Vec<(usize, usize)>> = vec![Vec::new(); BATCHES];
        for (e, &edge) in full.edges().iter().enumerate() {
            if e % 8 == 0 {
                batches[(e / 8) % BATCHES].push(edge);
            } else {
                kept.push(edge);
            }
        }
        let base = Graph::from_edges(full.n(), kept)
            .expect("held-out subgraph")
            .with_vertex_ids(full.ids().to_vec())
            .expect("ids are inherited");

        // Primary run under the ambient (CLI-selected) executor; replays under every
        // other kind must be bit-identical in everything but wall-clock.
        let ambient = default_executor();
        let (final_coloring, outcomes, walls) = run_sequence(ambient, &base, &batches);
        for kind in [ExecutorKind::Sequential, ExecutorKind::sharded(4), ExecutorKind::Reference] {
            if kind == ambient {
                continue;
            }
            let (coloring, replay, _) = run_sequence(kind, &base, &batches);
            assert_eq!(
                coloring.colors(),
                final_coloring.colors(),
                "dynamic repair diverged between executors on {}",
                ds.name
            );
            for (a, b) in outcomes.iter().zip(&replay) {
                assert_eq!(a, b, "batch outcome diverged between executors on {}", ds.name);
            }
        }
        assert!(final_coloring.is_legal(rebuilt(&base, &batches).as_ref().unwrap_or(&base)));
        assert!(
            outcomes.iter().any(|o| o.repaired_vertices() < full.n()),
            "{}: no batch repaired fewer vertices than a full recolor would touch",
            ds.name
        );

        // Full-recolor baseline: re-color the post-batch graph from scratch.
        let mut post = base.clone();
        for (b, (outcome, batch)) in outcomes.iter().zip(&batches).enumerate() {
            post = grow(&post, batch);
            let start = Instant::now();
            let full_run = ghaffari_kuhn_coloring(&post).expect("full recolor baseline");
            let wall_full = start.elapsed().as_secs_f64() * 1e3;
            assert!(full_run.coloring.is_legal(&post));
            let strategy = match outcome.strategy {
                RepairStrategy::NoConflict => 0.0,
                RepairStrategy::LocalRepair => 1.0,
                RepairStrategy::FullRecolor => 2.0,
            };
            rows.push(
                Row::new("E20", format!("{} n={} · batch {}", ds.name, full.n(), b + 1))
                    .with("n", full.n() as f64)
                    .with("inserted", outcome.submitted_edges as f64)
                    .with("new_edges", outcome.new_edges as f64)
                    .with("frontier", outcome.frontier as f64)
                    .with("repaired_vertices", outcome.repaired_vertices() as f64)
                    .with("full_recolor_vertices", full.n() as f64)
                    .with("strategy", strategy)
                    .with("rounds", outcome.report.rounds as f64)
                    .with("messages", outcome.report.messages as f64)
                    .with("full_rounds", full_run.report.rounds as f64)
                    .with("legal", 1.0)
                    .with("wall_ms_repair", walls[b])
                    .with("wall_ms_full", wall_full),
            );
        }
    }
    rows
}

/// E21 — frontier collapse: per-round cost of the frontier-driven executor on a
/// slot-scheduled sweep whose active set shrinks round over round.
///
/// A Barabási–Albert preferential-attachment graph is colored by the sequential greedy
/// baseline; the colors become the slots of a [`ScheduledListColor`] sweep, so one color
/// class fires (and halts) per round and the class sizes fall off steeply — the exact shape
/// frontier-driven execution exists for.  [`Executor::run_traced`] records one row per
/// round: the active count at round start, the frontier actually stepped, the messages, and
/// the wall-clock.  The deterministic columns are gated by the perf pipeline; `wall_ms` is
/// advisory and should track the collapsing frontier rather than `n` (an everyone-runs
/// round loop pays O(n) per round regardless of how many vertices still act).
///
/// The sweep is replayed on the work-stealing executor and asserted **bit-identical**
/// before any row is emitted.  At `Scale(1)` the graph has 10⁶ vertices; the smoke tier
/// shrinks it to 4 000.
///
/// [`ScheduledListColor`]: arbcolor_runtime::algorithms::ScheduledListColor
/// [`Executor::run_traced`]: arbcolor_runtime::Executor::run_traced
pub fn e21_frontier_collapse(sz: SizeClass) -> Vec<Row> {
    use arbcolor_baselines::greedy::sequential_greedy;
    use arbcolor_graph::Coloring;
    use arbcolor_runtime::algorithms::{ListColorSchedule, ListColorSlot, ScheduledListColor};
    use arbcolor_runtime::{ActivitySummary, Executor, ShardedExecutor};

    let n = match sz {
        SizeClass::Smoke => 4_000,
        SizeClass::Scale(factor) => 1_000_000 * factor.max(1),
    };
    let g = generators::barabasi_albert(n, 3, 211).unwrap().with_shuffled_ids(9);
    let schedule_coloring = sequential_greedy(&g, None);
    let slots: Vec<ListColorSlot> = g
        .vertices()
        .map(|v| ListColorSlot {
            slot: schedule_coloring.color(v) as usize,
            // One more color than the degree, so the sweep always succeeds.
            palette: (0..=g.degree(v) as u64).collect(),
            forbidden: Vec::new(),
        })
        .collect();
    let schedule = ListColorSchedule::from_slots(&slots);
    let algorithm = ScheduledListColor::new(&schedule);

    let start = Instant::now();
    let (result, trace) = Executor::new(&g).run_traced(&algorithm).expect("sweep terminates");
    let wall_ms_total = start.elapsed().as_secs_f64() * 1e3;

    // Determinism: the work-stealing executor must reproduce the sweep bit for bit.
    let stolen = ShardedExecutor::new(&g)
        .with_threads(4)
        .with_sequential_cutoff(0)
        .run(&algorithm)
        .expect("sweep terminates");
    assert_eq!(stolen.outputs, result.outputs, "outputs diverged between executors");
    assert_eq!(stolen.report, result.report, "cost diverged between executors");

    let colors: Vec<u64> = result.outputs.iter().map(|c| c.expect("list exceeds degree")).collect();
    let final_coloring = Coloring::new(&g, colors).expect("one color per vertex");
    assert!(final_coloring.is_legal(&g), "sweep must produce a legal coloring");

    let mut rows = Vec::new();
    for r in trace.rounds() {
        rows.push(
            Row::new("E21", format!("ba n={n} m=3 · round {}", r.round))
                .with("round", r.round as f64)
                .with("active", r.active_nodes as f64)
                .with("frontier", r.frontier as f64)
                .with("messages", r.messages as f64)
                .with("wall_ms", r.wall_ns as f64 / 1e6),
        );
    }
    let summary = ActivitySummary::from_trace(&trace);
    rows.push(
        Row::new("E21", format!("ba n={n} m=3 · summary"))
            .with("n", n as f64)
            .with("rounds", result.report.rounds as f64)
            .with("messages", result.report.messages as f64)
            .with("colors", final_coloring.distinct_colors() as f64)
            .with("peak_frontier", summary.peak_frontier as f64)
            .with("frontier_steps", summary.frontier_steps as f64)
            .with("everyone_runs_steps", (n * result.report.rounds) as f64)
            .with("savings_factor", summary.savings_factor())
            .with("legal", 1.0)
            .with("wall_ms", wall_ms_total),
    );
    rows
}

/// E22 — the CONGEST bandwidth race: all three headliners (Barenboim–Elkin, Ghaffari–Kuhn,
/// and the randomized HKMT trials) on the same seeded graph of every E16 generator family,
/// executed under [`CostMode::Congest`] so the runtime *enforces* — not merely measures —
/// that no edge carries more than `64 · ⌈log₂ n⌉` bits in any round.
///
/// Every row reports the two bandwidth columns the perf gate tracks (`total_bits`, the
/// pipeline's aggregate traffic, and `max_edge_bits`, the worst single-edge round) next to
/// the budget they were enforced under, and every coloring is re-verified legal within
/// `Δ + 1` before its row is emitted.  The HKMT contender draws from the process-wide
/// [`experiment_seed`] (the `--seed` flag), so for a fixed seed the whole table is
/// bit-identical across executors — the CI `congest-smoke` job diffs exactly that.
pub fn e22_congest_bandwidth_race(sz: SizeClass) -> Vec<Row> {
    /// Restores the process-wide cost mode even if an assertion unwinds mid-experiment.
    struct CostModeGuard(CostMode);
    impl Drop for CostModeGuard {
        fn drop(&mut self) {
            set_default_cost_mode(self.0);
        }
    }
    let _restore = CostModeGuard(default_cost_mode());

    let families = headline_families(sz);
    let mut rows = Vec::new();
    for (family, g) in &families {
        // A generous CONGEST allowance: every message of every pipeline is one O(log n)-bit
        // value, so 64·⌈log₂ n⌉ bits per edge per round holds with room while still being
        // O(log n) — the executors reject any send that would exceed it.
        let budget = CostMode::congest_for(g.n(), 64);
        set_default_cost_mode(CostMode::Congest {
            bits_per_edge: budget.bits_per_edge().expect("congest_for returns Congest"),
        });
        let delta_plus_one = g.max_degree() + 1;
        for algorithm in congest_headliners(experiment_seed()) {
            let outcome = algorithm
                .run(g)
                .unwrap_or_else(|e| panic!("{} failed on {family}: {e}", algorithm.name()));
            assert!(
                outcome.coloring.is_legal(g),
                "{} produced an illegal coloring on {family}",
                outcome.name
            );
            assert!(
                outcome.colors <= delta_plus_one,
                "{} used {} colors on {family} but Δ + 1 = {delta_plus_one}",
                outcome.name,
                outcome.colors
            );
            let budget_bits = budget.bits_per_edge().expect("congest_for returns Congest");
            assert!(
                outcome.report.max_edge_bits <= budget_bits,
                "{} put {} bits on one edge in a round on {family}, over the budget of \
                 {budget_bits} (the executor should have rejected this)",
                outcome.name,
                outcome.report.max_edge_bits
            );
            rows.push(
                Row::new("E22", format!("{family} n={} · {}", g.n(), outcome.name))
                    .with("n", g.n() as f64)
                    .with("max_degree", g.max_degree() as f64)
                    .with("delta_plus_one", delta_plus_one as f64)
                    .with("colors", outcome.colors as f64)
                    .with("rounds", outcome.report.rounds as f64)
                    .with("messages", outcome.report.messages as f64)
                    .with("total_bits", outcome.report.total_bits as f64)
                    .with("max_edge_bits", outcome.report.max_edge_bits as f64)
                    .with("bits_budget", budget_bits as f64)
                    .with("legal", 1.0),
            );
        }
    }
    rows
}

/// E23 — the per-phase cost breakdown: all three headliners on every generator family, each
/// run wrapped in an observability span (`arbcolor_runtime::obs`) so the instrumented
/// drivers attribute the headline [`RoundReport`] to named phases.
///
/// * Barenboim–Elkin decomposes into `h-partition` / `arbdefective` (the refinement loop,
///   with the H-partition share split out exactly) / `legal-coloring` (the final
///   low-arboricity coloring).
/// * Ghaffari–Kuhn's `level-*` spans — one per halving level — are merged into a single
///   `halving` phase here (their count is the `halving_depth` column), next to
///   `deferred-cleanup`.
/// * HKMT splits into `random-trials` and the deterministic `gk-fallback`.
///
/// Every row asserts, before it is emitted, that the phase reports sum **bit-exactly** to
/// the headline report in `rounds`, `messages`, and `total_bits` — the invariant the
/// `tests/obs_spans.rs` suite also checks across executors — and emits one
/// `ph_<phase>_{rounds,messages,bits}` column triple per phase.  All phase columns are
/// deterministic (HKMT draws from the process-wide [`experiment_seed`]), so the perf gate
/// tracks them like any other cost column.
pub fn e23_phase_breakdown(sz: SizeClass) -> Vec<Row> {
    use arbcolor_runtime::obs;

    // Reuse the collector installed by `--trace-out` when present (so E23's spans land in
    // the exported Chrome trace); otherwise install a scratch collector for the duration.
    let scratch = if obs::current().is_none() { Some(obs::SpanCollector::new()) } else { None };
    let _guard = scratch.as_ref().map(obs::install);
    let collector = obs::current().expect("an observability collector is installed");

    let families = headline_families(sz);
    let mut rows = Vec::new();
    for (family, g) in &families {
        let delta_plus_one = g.max_degree() + 1;
        for algorithm in congest_headliners(experiment_seed()) {
            let parent = collector.len();
            let span = obs::phase(algorithm.name());
            let outcome = algorithm
                .run(g)
                .unwrap_or_else(|e| panic!("{} failed on {family}: {e}", algorithm.name()));
            span.charge(outcome.report);
            drop(span);
            assert!(
                outcome.coloring.is_legal(g),
                "{} produced an illegal coloring on {family}",
                outcome.name
            );
            assert!(
                outcome.colors <= delta_plus_one,
                "{} used {} colors on {family} but Δ + 1 = {delta_plus_one}",
                outcome.name,
                outcome.colors
            );

            let spans = collector.snapshot();
            assert_eq!(
                spans[parent].name,
                algorithm.name(),
                "the headliner span must sit at the recorded index"
            );
            // Merge GK's per-level spans into one "halving" phase, counting the depth.
            let mut halving_depth = 0usize;
            let mut phases: Vec<(String, RoundReport)> = Vec::new();
            for (name, report) in obs::phase_rollup(&spans, parent) {
                let merged = if name.starts_with("level-") {
                    halving_depth += 1;
                    "halving".to_string()
                } else {
                    name
                };
                match phases.iter_mut().find(|(existing, _)| *existing == merged) {
                    Some((_, acc)) => *acc = acc.then(report),
                    None => phases.push((merged, report)),
                }
            }
            assert!(!phases.is_empty(), "{} recorded no phase spans on {family}", outcome.name);
            let phase_sum =
                phases.iter().fold(RoundReport::zero(), |acc, (_, report)| acc.then(*report));
            assert_eq!(
                (phase_sum.rounds, phase_sum.messages, phase_sum.total_bits),
                (outcome.report.rounds, outcome.report.messages, outcome.report.total_bits),
                "{} phase spans do not sum to the headline report on {family}",
                outcome.name
            );

            let mut row = Row::new("E23", format!("{family} n={} · {}", g.n(), outcome.name))
                .with("n", g.n() as f64)
                .with("colors", outcome.colors as f64)
                .with("rounds", outcome.report.rounds as f64)
                .with("messages", outcome.report.messages as f64)
                .with("total_bits", outcome.report.total_bits as f64)
                .with("halving_depth", halving_depth as f64)
                .with("legal", 1.0);
            for (name, report) in &phases {
                let slug = name.replace('-', "_");
                row = row
                    .with(&format!("ph_{slug}_rounds"), report.rounds as f64)
                    .with(&format!("ph_{slug}_messages"), report.messages as f64)
                    .with(&format!("ph_{slug}_bits"), report.total_bits as f64);
            }
            rows.push(row);
        }
    }
    rows
}

/// E24 — the palette-engine pick-path race: the word-parallel bitset
/// [`ScheduledListColor`] against the preserved `Vec`-scan reference
/// ([`VecScanListColor`]) on the same greedy-scheduled sweep, over the three degree
/// profiles of the E18 routing race (≈32-regular dense, sparse G(n,p), power-law).
///
/// Each row races both pick paths on an identical [`ListColorSlot`] input (slots from the
/// sequential greedy baseline, palette `{0, …, deg(v)}`) and asserts **bit-identical**
/// colors, rounds, and messages before it is emitted — the engine swap must be invisible
/// in every deterministic column.  The `picks_served` / `colors_struck` columns come from
/// the schedule's [`PaletteStats`] counters and are deterministic, so the perf gate tracks
/// them; the `wall_ms_*` and `speedup_vs_vecscan` columns are advisory.  At `Scale(1)` the
/// sweep runs at `n = 10⁵`, where the bitset path must beat the `Vec` scan on the dense
/// family; the smoke tier shrinks it to 1 500 vertices.
///
/// [`ScheduledListColor`]: arbcolor_runtime::algorithms::ScheduledListColor
/// [`VecScanListColor`]: arbcolor_runtime::algorithms::VecScanListColor
/// [`ListColorSlot`]: arbcolor_runtime::algorithms::ListColorSlot
/// [`PaletteStats`]: arbcolor_graph::PaletteStats
pub fn e24_palette_engine(sz: SizeClass) -> Vec<Row> {
    use arbcolor_baselines::greedy::sequential_greedy;
    use arbcolor_graph::Coloring;
    use arbcolor_runtime::algorithms::{
        ListColorSchedule, ListColorSlot, ScheduledListColor, VecScanListColor,
    };
    use arbcolor_runtime::Executor;

    let n = match sz {
        SizeClass::Smoke => 1_500,
        SizeClass::Scale(factor) => 100_000 * factor.max(1),
    };
    type FamilyGen = fn(usize) -> Graph;
    let families: Vec<(&str, FamilyGen)> = vec![
        ("dense", |n| generators::random_regular_like(n, 32, 103).unwrap().with_shuffled_ids(17)),
        ("random", |n| generators::gnp(n, 8.0 / n as f64, 107).unwrap().with_shuffled_ids(18)),
        ("power-law", |n| generators::barabasi_albert(n, 4, 109).unwrap().with_shuffled_ids(19)),
    ];
    let mut rows = Vec::new();
    for (family, generate) in &families {
        let g = &generate(n);
        let schedule_coloring = sequential_greedy(g, None);
        let slots: Vec<ListColorSlot> = g
            .vertices()
            .map(|v| ListColorSlot {
                slot: schedule_coloring.color(v) as usize,
                // One more color than the degree, so the sweep always succeeds.
                palette: (0..=g.degree(v) as u64).collect(),
                forbidden: Vec::new(),
            })
            .collect();

        let schedule = ListColorSchedule::from_slots(&slots);
        // Untimed warm-up lap of both paths: the first execution on a freshly generated
        // graph pays one-time page-fault and cache-warming costs that would otherwise be
        // charged to whichever path happens to run first.
        Executor::new(g).run(&ScheduledListColor::new(&schedule)).expect("sweep terminates");
        Executor::new(g).run(&VecScanListColor::new(&slots)).expect("sweep terminates");
        let _ = schedule.stats().take();

        let start = Instant::now();
        let bitset =
            Executor::new(g).run(&ScheduledListColor::new(&schedule)).expect("sweep terminates");
        let wall_bitset = start.elapsed().as_secs_f64() * 1e3;
        let stats = schedule.stats().snapshot();

        let start = Instant::now();
        let vecscan =
            Executor::new(g).run(&VecScanListColor::new(&slots)).expect("sweep terminates");
        let wall_vecscan = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(bitset.outputs, vecscan.outputs, "pick paths diverged on {family} n={n}");
        assert_eq!(bitset.report, vecscan.report, "cost diverged between pick paths on {family}");

        let colors: Vec<u64> =
            bitset.outputs.iter().map(|c| c.expect("list exceeds degree")).collect();
        let final_coloring = Coloring::new(g, colors).expect("one color per vertex");
        assert!(final_coloring.is_legal(g), "sweep must produce a legal coloring on {family}");

        rows.push(
            Row::new("E24", format!("{family} n={n} · pick-path race"))
                .with("n", n as f64)
                .with("avg_degree", g.average_degree())
                .with("colors", final_coloring.distinct_colors() as f64)
                .with("rounds", bitset.report.rounds as f64)
                .with("messages", bitset.report.messages as f64)
                .with("picks_served", stats.picks_served as f64)
                .with("colors_struck", stats.colors_struck as f64)
                .with("identical", 1.0)
                .with("legal", 1.0)
                .with("wall_ms_bitset", wall_bitset)
                .with("wall_ms_vecscan", wall_vecscan)
                .with("speedup_vs_vecscan", wall_vecscan / wall_bitset.max(1e-9)),
        );
    }
    rows
}

/// E25 — the sustained-update service benchmark: seeded mixed insert/delete/query
/// workloads replayed through [`ColoringService`](arbcolor_service::server::ColoringService).
///
/// Three families cover the long-lived-service regimes:
///
/// * **churn** — balanced insertions and removals with skewed (hub-heavy) endpoints, the
///   steady-state regime;
/// * **growth** — insert-dominated traffic, the regime E20 measured, now through the
///   service's `Apply` path;
/// * **decay** — a complete graph stripped down to a Hamiltonian path by deletion batches,
///   then compacted: the palette must shrink **strictly** (the slack-reclamation claim,
///   gated via `colors_after_compact`).
///
/// Each replayed family asserts, before emitting its row:
///
/// * the final coloring is legal (the service's own `Verify` verb);
/// * a second same-seed replay under the *reference* executor is **bit-identical** — final
///   colors and every per-batch `(frontier, repaired, strategy)` triple (`replay_identical`);
/// * the incrementally patched CSR equals a from-scratch rebuild of the model edge set,
///   field for field (`patch_identical`).
///
/// Deterministic columns (operation/edge/repair tallies, strategy counts, colors, the
/// post-compaction palette) are gated by the perf pipeline; `wall_updates_per_sec`,
/// `wall_ms_p99_apply`, and `wall_ms_total` are advisory.
pub fn e25_service_sustained_updates(sz: SizeClass) -> Vec<Row> {
    use arbcolor::dynamic::RepairStrategy;
    use arbcolor_service::protocol::{Request, Response};
    use arbcolor_service::server::{ColoringService, ServiceConfig};
    use arbcolor_service::workload::{generate, WorkloadConfig, WorkloadOp};
    use std::collections::BTreeSet;

    /// Everything one replay of a workload produces.
    struct Replay {
        colors: Vec<u64>,
        /// One `(frontier, repaired, strategy)` triple per apply batch.
        batches: Vec<(u64, u64, u64)>,
        applies: u64,
        queries: u64,
        compactions: u64,
        new_edges: u64,
        removed_edges: u64,
        colors_final: u64,
        colors_after_compact: u64,
        legal: bool,
        patch_identical: bool,
        apply_walls_ms: Vec<f64>,
        wall_ms_total: f64,
    }

    /// Replays `ops` against a fresh service on `n` vertices under `kind`; the final
    /// `Compact` request is issued explicitly so every family reports a post-compaction
    /// palette.
    fn replay(kind: ExecutorKind, n: usize, ops: &[WorkloadOp]) -> Replay {
        let previous = default_executor();
        set_default_executor(kind);
        let mut service =
            ColoringService::empty(n, ServiceConfig::default()).expect("service starts");
        let mut model: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut batches = Vec::new();
        let (mut applies, mut queries, mut compactions) = (0u64, 0u64, 0u64);
        let mut apply_walls_ms = Vec::new();
        let start_total = Instant::now();
        for op in ops {
            match op {
                WorkloadOp::Apply(updates) => {
                    for update in updates {
                        for &edge in update.edges() {
                            if update.is_insert() {
                                model.insert(edge);
                            } else {
                                model.remove(&edge);
                            }
                        }
                    }
                    let start = Instant::now();
                    let reply = service.handle(Request::Apply(updates.clone()));
                    apply_walls_ms.push(start.elapsed().as_secs_f64() * 1e3);
                    let Response::Applied { frontier, repaired, strategy, .. } = reply else {
                        panic!("apply failed during replay: {reply:?}");
                    };
                    let strategy = match strategy {
                        RepairStrategy::NoConflict => 0u64,
                        RepairStrategy::LocalRepair => 1,
                        RepairStrategy::FullRecolor => 2,
                    };
                    batches.push((frontier, repaired, strategy));
                    applies += 1;
                }
                WorkloadOp::QueryColors(vertices) => {
                    let reply = service.handle(Request::QueryColors(vertices.clone()));
                    assert!(matches!(reply, Response::Colors(_)), "query failed: {reply:?}");
                    queries += 1;
                }
                WorkloadOp::Compact => {
                    let reply = service.handle(Request::Compact);
                    assert!(matches!(reply, Response::Compacted { .. }));
                    compactions += 1;
                }
            }
        }
        let colors_final = service.dynamic().coloring().distinct_colors() as u64;
        let colors_after_compact = match service.handle(Request::Compact) {
            Response::Compacted { colors_after, .. } => colors_after,
            other => panic!("final compaction failed: {other:?}"),
        };
        let wall_ms_total = start_total.elapsed().as_secs_f64() * 1e3;
        let legal = matches!(
            service.handle(Request::Verify),
            Response::Verified { legal: true, conflicts: 0 }
        );
        // The incremental CSR patch path must equal a from-scratch rebuild of the model
        // edge set — the whole Graph (offsets, adjacency, ports, ids), not just the edges.
        let rebuilt = Graph::from_edges(n, model.iter().copied().collect::<Vec<_>>())
            .expect("model edges are valid");
        let patch_identical = *service.dynamic().graph() == rebuilt;
        let stats = match service.handle(Request::Stats) {
            Response::Stats(stats) => stats,
            other => panic!("stats failed: {other:?}"),
        };
        set_default_executor(previous);
        Replay {
            colors: service.dynamic().coloring().colors().to_vec(),
            batches,
            applies,
            queries,
            compactions,
            new_edges: stats.new_edges,
            removed_edges: stats.removed_edges,
            colors_final,
            colors_after_compact,
            legal,
            patch_identical,
            apply_walls_ms,
            wall_ms_total,
        }
    }

    /// p99 of the per-apply wall times (advisory).
    fn p99_ms(walls: &[f64]) -> f64 {
        if walls.is_empty() {
            return 0.0;
        }
        let mut sorted = walls.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
        sorted[((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len()) - 1]
    }

    let n = sz.n(240);
    let families = [
        (
            "churn",
            WorkloadConfig {
                n,
                ops: 3 * n,
                batch_size: 8,
                insert_weight: 1,
                remove_weight: 1,
                query_weight: 1,
                compact_every: n,
                skew: 1.5,
                seed: 1025,
            },
        ),
        (
            "growth",
            WorkloadConfig {
                n,
                ops: 3 * n,
                batch_size: 8,
                insert_weight: 5,
                remove_weight: 1,
                query_weight: 1,
                compact_every: 0,
                skew: 1.2,
                seed: 2025,
            },
        ),
    ];

    let mut rows = Vec::new();
    let ambient = default_executor();
    for (family, config) in families {
        let ops = generate(&config);
        assert_eq!(ops, generate(&config), "the workload stream must be replayable");
        let run = replay(ambient, config.n, &ops);
        let reference = replay(ExecutorKind::Reference, config.n, &ops);
        let replay_identical = run.colors == reference.colors && run.batches == reference.batches;
        assert!(replay_identical, "{family}: same-seed replay diverged between executors");
        assert!(run.legal, "{family}: final coloring is illegal");
        assert!(run.patch_identical, "{family}: patched CSR diverged from a full rebuild");
        let full_recolors = run.batches.iter().filter(|(_, _, s)| *s == 2).count();
        let frontier_total: u64 = run.batches.iter().map(|(f, _, _)| f).sum();
        let repaired_total: u64 = run.batches.iter().map(|(_, r, _)| r).sum();
        let updates = run.new_edges + run.removed_edges;
        rows.push(
            Row::new("E25", format!("{family} n={n} · sustained updates"))
                .with("n", n as f64)
                .with("ops", ops.len() as f64)
                .with("applies", run.applies as f64)
                .with("queries", run.queries as f64)
                .with("compactions", run.compactions as f64)
                .with("new_edges", run.new_edges as f64)
                .with("removed_edges", run.removed_edges as f64)
                .with("frontier_total", frontier_total as f64)
                .with("repaired_total", repaired_total as f64)
                .with("full_recolors", full_recolors as f64)
                .with("colors", run.colors_final as f64)
                .with("colors_after_compact", run.colors_after_compact as f64)
                .with("replay_identical", 1.0)
                .with("patch_identical", 1.0)
                .with("legal", 1.0)
                .with("wall_updates_per_sec", updates as f64 / (run.wall_ms_total / 1e3).max(1e-9))
                .with("wall_ms_p99_apply", p99_ms(&run.apply_walls_ms))
                .with("wall_ms_total", run.wall_ms_total),
        );
    }

    // Decay family: strip a complete graph down to a Hamiltonian path with deletion
    // batches, then compact.  The palette starts at `c` colors (a clique needs them all)
    // and must land at 2 after compaction — a *strict* reduction, gated.
    let c = sz.n(60).min(64);
    let complete = generators::complete(c).expect("complete graph");
    let mut service = ColoringService::new(complete.clone(), ServiceConfig::default())
        .expect("service starts on the clique");
    let colors_initial = service.dynamic().coloring().distinct_colors() as u64;
    let doomed: Vec<(usize, usize)> =
        complete.edges().iter().copied().filter(|&(u, v)| v != u + 1).collect();
    let mut applies = 0u64;
    let mut apply_walls_ms = Vec::new();
    let start_total = Instant::now();
    for batch in doomed.chunks(64) {
        let start = Instant::now();
        let reply =
            service.handle(Request::Apply(vec![arbcolor::dynamic::GraphUpdate::RemoveEdges(
                batch.to_vec(),
            )]));
        apply_walls_ms.push(start.elapsed().as_secs_f64() * 1e3);
        let Response::Applied { frontier: 0, repaired: 0, .. } = reply else {
            panic!("a deletion batch cannot conflict, got {reply:?}");
        };
        applies += 1;
    }
    let colors_before = service.dynamic().coloring().distinct_colors() as u64;
    let colors_after_compact = match service.handle(Request::Compact) {
        Response::Compacted { colors_after, .. } => colors_after,
        other => panic!("decay compaction failed: {other:?}"),
    };
    let wall_ms_total = start_total.elapsed().as_secs_f64() * 1e3;
    assert!(
        colors_after_compact < colors_before,
        "decay: deletion batches must strictly reduce colors after compact() \
         ({colors_before} -> {colors_after_compact})"
    );
    // Greedy compaction promises the (Δ+1)-bound of the *current* graph — 3 on a path —
    // not the chromatic number.
    assert!(colors_after_compact <= 3, "a path compacts to at most Δ+1 = 3 colors");
    assert!(matches!(
        service.handle(Request::Verify),
        Response::Verified { legal: true, conflicts: 0 }
    ));
    rows.push(
        Row::new("E25", format!("decay n={c} · clique to path"))
            .with("n", c as f64)
            .with("applies", applies as f64)
            .with("removed_edges", doomed.len() as f64)
            .with("colors_initial", colors_initial as f64)
            .with("colors", colors_before as f64)
            .with("colors_after_compact", colors_after_compact as f64)
            .with("legal", 1.0)
            .with("wall_ms_p99_apply", p99_ms(&apply_walls_ms))
            .with("wall_ms_total", wall_ms_total),
    );
    rows
}

/// The base graph with every batch applied (identifiers preserved); `None` when there is
/// nothing to add.
fn rebuilt(base: &Graph, batches: &[Vec<(usize, usize)>]) -> Option<Graph> {
    if batches.iter().all(Vec::is_empty) {
        return None;
    }
    let mut g = base.clone();
    for batch in batches {
        g = grow(&g, batch);
    }
    Some(g)
}

/// `graph` plus one batch of edges, identifiers preserved.
fn grow(graph: &Graph, batch: &[(usize, usize)]) -> Graph {
    let mut builder = arbcolor_graph::GraphBuilder::new(graph.n());
    builder.add_edges(graph.edges().iter().copied()).expect("existing edges are valid");
    builder.add_edges(batch.iter().copied()).expect("batch edges are valid");
    builder.build().with_vertex_ids(graph.ids().to_vec()).expect("ids are a permutation")
}

/// One experiment of the catalog.
pub type ExperimentFn = fn(SizeClass) -> Vec<Row>;

/// The experiment catalog: `(id, function)` pairs in index order.  Callers that only want a
/// single experiment should filter this *before* running anything — every entry is lazy.
pub fn catalog() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("E1", e1_simple_arbdefective),
        ("E2", e2_complete_orientation),
        ("E3", e3_partial_orientation),
        ("E4", e4_arbdefective_coloring),
        ("E5", e5_one_shot),
        ("E6", e6_o_a_coloring),
        ("E7", e7_a_one_plus_o1),
        ("E8", e8_headline),
        ("E9", e9_sparse_delta),
        ("E10", e10_sub_quadratic),
        ("E11", e11_tradeoff),
        ("E12", e12_mis),
        ("E13", e13_baseline_table),
        ("E14", e14_figure1),
        ("E15", e15_primitives),
        ("E16", e16_headline_head_to_head),
        ("E17", e17_sharded_scale),
        ("E18", e18_routing_fabric),
        ("E19", e19_real_graph_ingestion),
        ("E20", e20_dynamic_recoloring),
        ("E21", e21_frontier_collapse),
        ("E22", e22_congest_bandwidth_race),
        ("E23", e23_phase_breakdown),
        ("E24", e24_palette_engine),
        ("E25", e25_service_sustained_updates),
    ]
}

/// Runs every experiment at the given size, returning `(experiment id, rows)` pairs.
pub fn run_all(sz: SizeClass) -> Vec<(&'static str, Vec<Row>)> {
    catalog().into_iter().map(|(id, run)| (id, run(sz))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_experiments_produce_rows() {
        // Spot-check a few cheap experiments end to end at scale 1.
        assert!(!e1_simple_arbdefective(SizeClass::Scale(1)).is_empty());
        assert!(!e3_partial_orientation(SizeClass::Scale(1)).is_empty());
        assert!(!e14_figure1(SizeClass::Scale(1)).is_empty());
    }

    #[test]
    fn smoke_tier_shrinks_workloads() {
        assert_eq!(SizeClass::Smoke.n(600), 100);
        assert_eq!(SizeClass::Smoke.n(120), 40);
        assert_eq!(SizeClass::Scale(2).n(300), 600);
        assert_eq!(SizeClass::Scale(0).n(300), 300);
    }

    #[test]
    fn catalog_includes_the_scale_and_routing_sweeps() {
        // E17/E18 are exercised (and their executors cross-checked) by the CI smoke tier;
        // here we only pin their catalog identities so `experiments -- E17`/`E18` resolve.
        let ids: Vec<&str> = catalog().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.first(), Some(&"E1"));
        assert_eq!(ids.last(), Some(&"E25"));
        assert_eq!(ids.len(), 25);
    }

    #[test]
    fn e25_families_cover_churn_growth_and_decay() {
        let rows = e25_service_sustained_updates(SizeClass::Smoke);
        assert_eq!(rows.len(), 3, "one row per workload family");
        for (row, family) in rows.iter().zip(["churn", "growth", "decay"]) {
            assert!(row.workload.contains(family), "{}", row.workload);
            assert_eq!(row.values["legal"], 1.0);
            assert!(
                row.values["colors_after_compact"] <= row.values["colors"],
                "compaction must never add colors: {}",
                row.workload
            );
        }
        let churn = &rows[0];
        assert_eq!(churn.values["replay_identical"], 1.0);
        assert_eq!(churn.values["patch_identical"], 1.0);
        assert!(churn.values["removed_edges"] > 0.0, "churn must actually delete edges");
        let decay = &rows[2];
        assert!(
            decay.values["colors_after_compact"] < decay.values["colors"],
            "the decay family must strictly reduce colors after compaction"
        );
    }

    #[test]
    fn e24_races_the_pick_paths_bit_identically() {
        // The experiment asserts bit-identity before emitting; re-check the emitted columns.
        let rows = e24_palette_engine(SizeClass::Smoke);
        assert_eq!(rows.len(), 3, "one row per degree profile");
        for row in &rows {
            assert_eq!(row.values["identical"], 1.0);
            assert_eq!(row.values["legal"], 1.0);
            assert_eq!(row.values["picks_served"], row.values["n"], "one pick per vertex");
            assert!(row.values["colors_struck"] > 0.0);
        }
    }

    #[test]
    fn e22_enforces_the_congest_budget_and_restores_the_cost_mode() {
        let before = default_cost_mode();
        let rows = e22_congest_bandwidth_race(SizeClass::Smoke);
        assert_eq!(default_cost_mode(), before, "E22 must restore the process cost mode");
        // Three headliners per family, every row within its enforced budget.
        assert_eq!(rows.len() % 3, 0);
        assert!(rows.iter().any(|r| r.workload.contains("hkmt_random")));
        for row in &rows {
            assert!(row.values["max_edge_bits"] <= row.values["bits_budget"]);
            assert!(row.values["total_bits"] >= row.values["max_edge_bits"]);
            assert_eq!(row.values["legal"], 1.0);
        }
    }

    #[test]
    fn e23_phase_columns_sum_to_the_headline_report() {
        // The experiment itself asserts the bit-exact sum before emitting a row; here we
        // re-check the emitted columns and pin the phase vocabulary per headliner.
        let rows = e23_phase_breakdown(SizeClass::Smoke);
        assert_eq!(rows.len() % 3, 0);
        for row in &rows {
            assert_eq!(row.values["legal"], 1.0);
            for metric in ["rounds", "messages", "bits"] {
                let headline = if metric == "bits" { "total_bits" } else { metric };
                let sum: f64 = row
                    .values
                    .iter()
                    .filter(|(k, _)| k.starts_with("ph_") && k.ends_with(&format!("_{metric}")))
                    .map(|(_, v)| v)
                    .sum();
                assert_eq!(sum, row.values[headline], "{}: {metric}", row.workload);
            }
            if row.workload.contains("barenboim_elkin") {
                assert!(row.values.contains_key("ph_legal_coloring_rounds"), "{}", row.workload);
            }
            if row.workload.contains("ghaffari_kuhn") {
                assert!(row.values.contains_key("ph_halving_rounds"), "{}", row.workload);
                assert!(row.values["halving_depth"] >= 1.0, "{}", row.workload);
            }
            if row.workload.contains("hkmt_random") {
                assert!(row.values.contains_key("ph_random_trials_rounds"), "{}", row.workload);
            }
        }
    }

    #[test]
    fn e21_frontier_collapses_and_rounds_get_cheaper_in_steps() {
        let rows = e21_frontier_collapse(SizeClass::Smoke);
        let (per_round, summary) = rows.split_at(rows.len() - 1);
        assert!(!per_round.is_empty(), "the sweep must take at least one round");
        // The sweep halts one color class per round, so the frontier must shrink strictly
        // round over round, and every stepped vertex is an active one.
        for pair in per_round.windows(2) {
            assert!(
                pair[1].values["frontier"] < pair[0].values["frontier"],
                "frontier did not collapse: {:?} -> {:?}",
                pair[0].workload,
                pair[1].workload
            );
        }
        for row in per_round {
            assert!(row.values["frontier"] <= row.values["active"]);
        }
        let summary = &summary[0];
        assert_eq!(summary.values["legal"], 1.0);
        assert!(
            summary.values["frontier_steps"] < summary.values["everyone_runs_steps"],
            "frontier-driven rounds must beat the everyone-runs loop in total steps"
        );
    }

    #[test]
    fn e19_reports_both_headliners_on_every_fixture() {
        let rows = e19_real_graph_ingestion(SizeClass::Smoke);
        let datasets = crate::datasets::fixture_datasets();
        assert_eq!(rows.len(), 2 * datasets.len());
        for (pair, ds) in rows.chunks(2).zip(&datasets) {
            assert!(pair[0].workload.contains(ds.name), "{}", pair[0].workload);
            assert!(pair[0].workload.contains("barenboim_elkin"), "{}", pair[0].workload);
            assert!(pair[1].workload.contains("ghaffari_kuhn"), "{}", pair[1].workload);
            for row in pair {
                assert_eq!(row.values["legal"], 1.0);
                assert!(row.values["colors"] <= row.values["delta_plus_one"]);
            }
        }
    }

    #[test]
    fn e20_repairs_fewer_vertices_than_a_full_recolor() {
        let rows = e20_dynamic_recoloring(SizeClass::Smoke);
        let datasets = crate::datasets::fixture_datasets();
        assert_eq!(rows.len(), 3 * datasets.len());
        for per_dataset in rows.chunks(3) {
            assert!(
                per_dataset
                    .iter()
                    .any(|r| r.values["repaired_vertices"] < r.values["full_recolor_vertices"]),
                "no batch beat the full-recolor baseline"
            );
            for row in per_dataset {
                assert_eq!(row.values["legal"], 1.0);
            }
        }
    }

    #[test]
    fn e16_reports_both_headliners_on_every_family() {
        let rows = e16_headline_head_to_head(SizeClass::Smoke);
        // Two rows (one per headliner) per generator family, already verified legal and
        // within Δ + 1 by the experiment itself.
        assert_eq!(rows.len() % 2, 0);
        assert!(rows.len() >= 12);
        for pair in rows.chunks(2) {
            assert!(pair[0].workload.contains("barenboim_elkin"), "{}", pair[0].workload);
            assert!(pair[1].workload.contains("ghaffari_kuhn"), "{}", pair[1].workload);
        }
    }
}
