//! The flat result row every experiment emits.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One measurement row: an experiment id, a workload description and a set of named values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Experiment id (e.g. `"E8"`).
    pub experiment: String,
    /// Workload description (graph family and parameters).
    pub workload: String,
    /// Named measurements (colors, rounds, bounds, …), in insertion order.
    pub values: BTreeMap<String, f64>,
}

impl Row {
    /// Creates a row with no values yet.
    pub fn new(experiment: &str, workload: impl Into<String>) -> Self {
        Row {
            experiment: experiment.to_string(),
            workload: workload.into(),
            values: BTreeMap::new(),
        }
    }

    /// Adds a named value (builder style).
    #[must_use]
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.values.insert(key.to_string(), value);
        self
    }

    /// Renders a set of rows as a markdown table (union of all value keys as columns).
    pub fn to_markdown(rows: &[Row]) -> String {
        if rows.is_empty() {
            return String::from("(no rows)\n");
        }
        let mut keys: Vec<String> = Vec::new();
        for row in rows {
            for key in row.values.keys() {
                if !keys.contains(key) {
                    keys.push(key.clone());
                }
            }
        }
        let mut out = String::new();
        out.push_str("| experiment | workload |");
        for key in &keys {
            out.push_str(&format!(" {key} |"));
        }
        out.push('\n');
        out.push_str("|---|---|");
        for _ in &keys {
            out.push_str("---|");
        }
        out.push('\n');
        for row in rows {
            out.push_str(&format!("| {} | {} |", row.experiment, row.workload));
            for key in &keys {
                match row.values.get(key) {
                    Some(v) if (v.fract()).abs() < 1e-9 => {
                        out.push_str(&format!(" {} |", *v as i64))
                    }
                    Some(v) => out.push_str(&format!(" {v:.2} |")),
                    None => out.push_str(" - |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders rows as JSON lines.
    pub fn to_json_lines(rows: &[Row]) -> String {
        rows.iter()
            .map(|r| serde_json::to_string(r).expect("rows are serializable"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_json_render() {
        let rows = vec![
            Row::new("E1", "forests n=100").with("colors", 4.0).with("rounds", 12.0),
            Row::new("E1", "forests n=200").with("colors", 4.0).with("bound", 6.5),
        ];
        let md = Row::to_markdown(&rows);
        assert!(md.contains("| E1 | forests n=100 |"));
        assert!(md.contains("colors"));
        let json = Row::to_json_lines(&rows);
        assert_eq!(json.lines().count(), 2);
        assert!(Row::to_markdown(&[]).contains("no rows"));
    }
}
