//! Registry of the checked-in fixture datasets under `datasets/` at the workspace root.
//!
//! These are the "real graph" workloads of experiments E19 and E20: small instances in the
//! three on-disk formats `arbcolor_graph::io` parses (whitespace edge list, DIMACS `.col`,
//! METIS), either classic published graphs (Zachary's karate club), exactly derivable
//! DIMACS coloring benchmarks (`queen5_5`, `myciel4`), or real-shaped generator output
//! committed as a file so the ingestion path is exercised end to end.
//!
//! Every entry records the vertex and edge counts the parse must reproduce, so a silently
//! corrupted fixture (or a parser regression) fails loudly in both the unit tests and the
//! CI ingestion smoke job.

use arbcolor_graph::io::{self, GraphFormat, ParseOptions};
use arbcolor_graph::{Graph, GraphError};
use std::path::PathBuf;

/// One checked-in fixture dataset.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Short name used in experiment rows.
    pub name: &'static str,
    /// File name under `datasets/` at the workspace root.
    pub file: &'static str,
    /// On-disk format.
    pub format: GraphFormat,
    /// Expected vertex count (checked at load time).
    pub n: usize,
    /// Expected distinct-edge count (checked at load time).
    pub m: usize,
}

impl Dataset {
    /// Absolute path of the fixture file (anchored at this crate's manifest, so loading
    /// works from any working directory).
    pub fn path(&self) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../datasets").join(self.file)
    }

    /// Parses the fixture and verifies it has the recorded shape.
    ///
    /// # Errors
    ///
    /// Returns the parser's typed error, or [`GraphError::Parse`] if the parsed graph does
    /// not match the recorded vertex/edge counts.
    pub fn load(&self) -> Result<Graph, GraphError> {
        let g = io::read_graph_as(self.path(), self.format, &ParseOptions::default())?;
        if (g.n(), g.m()) != (self.n, self.m) {
            return Err(GraphError::Parse {
                line: 0,
                reason: format!(
                    "fixture {} parsed to n={} m={} but the registry records n={} m={}",
                    self.file,
                    g.n(),
                    g.m(),
                    self.n,
                    self.m
                ),
            });
        }
        Ok(g)
    }
}

/// Every checked-in fixture, one per supported format plus a second DIMACS instance.
pub fn fixture_datasets() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "karate",
            file: "karate.edges",
            format: GraphFormat::EdgeList,
            n: 34,
            m: 78,
        },
        Dataset {
            name: "queen5_5",
            file: "queen5_5.col",
            format: GraphFormat::DimacsCol,
            n: 25,
            m: 160,
        },
        Dataset {
            name: "myciel4",
            file: "myciel4.col",
            format: GraphFormat::DimacsCol,
            n: 23,
            m: 71,
        },
        Dataset {
            name: "powerlaw_ba200",
            file: "powerlaw_ba200.metis",
            format: GraphFormat::Metis,
            n: 200,
            m: 591,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_loads_with_its_recorded_shape() {
        for ds in fixture_datasets() {
            let g = ds.load().unwrap_or_else(|e| panic!("{} failed to load: {e}", ds.name));
            assert_eq!((g.n(), g.m()), (ds.n, ds.m), "{} shape", ds.name);
            assert!(g.max_degree() >= 1, "{} has no edges", ds.name);
        }
    }

    #[test]
    fn fixture_names_and_files_are_unique() {
        let datasets = fixture_datasets();
        let mut names: Vec<&str> = datasets.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), datasets.len());
    }

    #[test]
    fn queen5_5_is_the_queens_graph() {
        // Every vertex of queen5_5 attacks its full row, column, and diagonals: the four
        // corner squares have degree 12, the center 16.
        let g = fixture_datasets().iter().find(|d| d.name == "queen5_5").unwrap().load().unwrap();
        assert_eq!(g.degree(0), 12);
        assert_eq!(g.degree(12), 16);
        assert_eq!(g.max_degree(), 16);
    }

    #[test]
    fn karate_has_the_published_degree_sequence_extremes() {
        let g = fixture_datasets().iter().find(|d| d.name == "karate").unwrap().load().unwrap();
        // Vertices 1 and 34 (0-indexed 0 and 33) are the two club leaders.
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(33), 17);
    }

    /// Maintenance helper, not a test: regenerates the METIS fixture from its generator
    /// recipe.  Run with `cargo test -p arbcolor_bench regenerate -- --ignored` after
    /// changing the recipe, then update the registry's recorded shape.
    #[test]
    #[ignore = "writes datasets/powerlaw_ba200.metis; run explicitly to regenerate"]
    fn regenerate_powerlaw_metis_fixture() {
        let g = arbcolor_graph::generators::barabasi_albert(200, 3, 7).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(
            b"% powerlaw_ba200: preferential-attachment (Barabasi-Albert) graph, n=200, 3 edges\n\
              % per arriving vertex, seed 7 - regenerate with the ignored test in arbcolor_bench::datasets.\n",
        );
        arbcolor_graph::io::write_metis(&g, &mut buf).unwrap();
        let path =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../datasets/powerlaw_ba200.metis");
        std::fs::write(path, buf).unwrap();
    }
}
