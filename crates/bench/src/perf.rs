//! The per-PR performance-tracking document and the regression gate that diffs two of them.
//!
//! `experiments --perf-out FILE` serializes a [`PerfDoc`] (schema `arbcolor-perf-v1`)
//! holding the rows of the perf-tracked experiments ([`PERF_EXPERIMENTS`]).  CI archives one
//! per PR under the naming scheme `BENCH_PR<N>.json` and the `perf_gate` binary compares the
//! fresh document against the committed baseline of the previous PR:
//!
//! * **deterministic columns** (colors, rounds, messages, …) are *gated* — any worsening
//!   fails the build, because the whole stack is seeded and bit-reproducible, so a drift
//!   here is a behavioural change, not noise;
//! * **wall-clock columns** (`wall_*`, `speedup_*`) are *advisory* — logged with their
//!   ratios, never gated, because CI hardware varies.
//!
//! The vendored `serde_json` stand-in can only serialize, so this module carries its own
//! minimal JSON reader ([`JsonValue::parse`]) for the documents it itself writes.

use crate::row::Row;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The experiments whose rows are collected into the perf document: the sharded-scale and
/// routing races (PR 3/4), the ingestion and dynamic-recoloring workloads (PR 5), the
/// frontier-collapse activity trace (PR 6), the CONGEST bandwidth race (PR 7), the
/// per-phase cost breakdown (PR 8), the palette-engine pick-path race (PR 9), and the
/// sustained-update service benchmark (PR 10).
pub const PERF_EXPERIMENTS: [&str; 9] =
    ["E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25"];

/// Value columns that must not worsen between PRs (the stack is deterministic, so any
/// change is a real behavioural difference).  Lower is better for all of these —
/// including `strategy`, whose encoding (0 = no conflict, 1 = local repair, 2 = full
/// recolor) orders repairs by how much of the graph they touch, and the two bandwidth
/// columns (`total_bits`, `max_edge_bits`), which are *gated*, not advisory: the bit
/// accounting is seeded and bit-reproducible, so a pipeline quietly growing chattier on
/// the wire is a real behavioural regression.
/// (`new_edges` is deliberately *not* here: it is fixed by graph + batch, so like `n`/`m`
/// it gates on any change via the undirectioned fallback rather than passing decreases.)
/// (The E25 sustained-update columns follow the same logic: a smaller conflict frontier,
/// fewer repaired vertices, fewer full-recolor escalations, and a tighter post-compaction
/// palette are all unambiguous improvements on a fixed seeded workload.)
const GATED_LOWER_IS_BETTER: [&str; 13] = [
    "colors",
    "rounds",
    "messages",
    "frontier",
    "repaired_vertices",
    "full_rounds",
    "strategy",
    "total_bits",
    "max_edge_bits",
    "colors_after_compact",
    "frontier_total",
    "repaired_total",
    "full_recolors",
];

/// Gated columns where *higher* is better (a drop fails the gate).
const GATED_HIGHER_IS_BETTER: [&str; 1] = ["legal"];

/// Whether a column is advisory (never gated): wall-clock and speedup measurements, which
/// vary with CI hardware.  Any `wall_`-prefixed column qualifies (`wall_ms`, `wall_ns`,
/// per-contender variants like `wall_ms_seq`), so new timing columns never need to be
/// registered here.  Every other column in a perf row is deterministic — if it has no
/// entry in the directioned lists above, *any* change gates (e.g. an `m` or `degeneracy`
/// drift on the same workload means the graph itself changed).
fn is_advisory(column: &str) -> bool {
    column.starts_with("wall_") || column.starts_with("speedup_")
}

/// The machine-readable performance-tracking document `--perf-out` writes.
#[derive(Debug, Clone, Serialize)]
pub struct PerfDoc {
    /// Document schema identifier (`arbcolor-perf-v1`).
    pub schema: String,
    /// Size tier the rows were produced at (`smoke` or `scale`).
    pub size: String,
    /// Experiment ids contributing rows, in run order.
    pub experiments: Vec<String>,
    /// The collected rows.
    pub rows: Vec<Row>,
}

impl PerfDoc {
    /// The schema identifier this module reads and writes.
    pub const SCHEMA: &'static str = "arbcolor-perf-v1";

    /// Assembles a document from collected rows.
    pub fn new(size: &str, experiments: Vec<String>, rows: Vec<Row>) -> Self {
        PerfDoc { schema: PerfDoc::SCHEMA.to_string(), size: size.to_string(), experiments, rows }
    }

    /// Parses a document previously written by `--perf-out`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed construct.
    pub fn parse(text: &str) -> Result<PerfDoc, String> {
        let value = JsonValue::parse(text)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let schema = obj
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field `schema`")?
            .to_string();
        if schema != PerfDoc::SCHEMA {
            return Err(format!("unsupported schema {schema:?} (expected {:?})", PerfDoc::SCHEMA));
        }
        let size = obj
            .get("size")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field `size`")?
            .to_string();
        let experiments = obj
            .get("experiments")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field `experiments`")?
            .iter()
            .map(|v| v.as_str().map(str::to_string).ok_or("non-string experiment id".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let rows = obj
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field `rows`")?
            .iter()
            .map(parse_row)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PerfDoc { schema, size, experiments, rows })
    }
}

fn parse_row(value: &JsonValue) -> Result<Row, String> {
    let obj = value.as_object().ok_or("row is not an object")?;
    let experiment =
        obj.get("experiment").and_then(JsonValue::as_str).ok_or("row is missing `experiment`")?;
    let workload =
        obj.get("workload").and_then(JsonValue::as_str).ok_or("row is missing `workload`")?;
    let mut row = Row::new(experiment, workload);
    let values = obj.get("values").and_then(JsonValue::as_object).ok_or("row missing `values`")?;
    for (key, v) in values {
        let number = v.as_f64().ok_or_else(|| format!("value {key:?} is not a number"))?;
        row = row.with(key, number);
    }
    Ok(row)
}

/// Outcome of diffing a fresh perf document against a committed baseline.
#[derive(Debug, Default)]
pub struct PerfComparison {
    /// Rows present in both documents (the rows the gate actually inspected).  Callers
    /// should treat `matched_rows == 0` with a non-empty baseline as a configuration
    /// error — a blanket workload rename would otherwise disable the gate silently.
    pub matched_rows: usize,
    /// Gate failures: a deterministic column worsened.
    pub regressions: Vec<String>,
    /// Deterministic columns that got strictly better (candidate baseline updates).
    pub improvements: Vec<String>,
    /// Advisory wall-clock / speedup drift, never gated.
    pub advisory: Vec<String>,
    /// Rows present only in the current document (new workloads — informational).
    pub added_rows: Vec<String>,
    /// Rows present only in the baseline (renamed or dropped workloads — informational).
    pub removed_rows: Vec<String>,
}

impl PerfComparison {
    /// Whether the gate passes (no deterministic column worsened).
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the full report as the text the CI log shows.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let section = |out: &mut String, title: &str, lines: &[String]| {
            if !lines.is_empty() {
                let _ = writeln!(out, "{title}:");
                for line in lines {
                    let _ = writeln!(out, "  {line}");
                }
            }
        };
        section(&mut out, "REGRESSIONS (gate failures)", &self.regressions);
        section(&mut out, "improvements", &self.improvements);
        section(&mut out, "advisory wall-clock drift (not gated)", &self.advisory);
        section(&mut out, "rows only in the current document", &self.added_rows);
        section(&mut out, "rows only in the baseline", &self.removed_rows);
        if out.is_empty() {
            out.push_str("no differences in tracked rows\n");
        }
        out
    }
}

/// Key identifying a row across documents.
fn row_key(row: &Row) -> (String, String) {
    (row.experiment.clone(), row.workload.clone())
}

/// Diffs `current` against `baseline`: deterministic columns gate, wall columns advise.
///
/// Rows are matched by `(experiment, workload)`; unmatched rows are reported but never fail
/// the gate (workloads legitimately come and go between PRs — the baseline is updated in
/// the same commit).
pub fn compare_docs(baseline: &PerfDoc, current: &PerfDoc) -> PerfComparison {
    let mut cmp = PerfComparison::default();
    let base: BTreeMap<(String, String), &Row> =
        baseline.rows.iter().map(|r| (row_key(r), r)).collect();
    let cur: BTreeMap<(String, String), &Row> =
        current.rows.iter().map(|r| (row_key(r), r)).collect();

    for (key, row) in &cur {
        let Some(base_row) = base.get(key) else {
            cmp.added_rows.push(format!("{} · {}", key.0, key.1));
            continue;
        };
        cmp.matched_rows += 1;
        for (column, &new) in &row.values {
            let Some(&old) = base_row.values.get(column) else { continue };
            let label = format!("{} · {} · {column}: {old} -> {new}", key.0, key.1);
            if is_advisory(column) {
                if new != old {
                    if old == 0.0 {
                        cmp.advisory.push(label);
                    } else {
                        cmp.advisory.push(format!("{label} ({:.2}x)", new / old));
                    }
                }
            } else if GATED_LOWER_IS_BETTER.contains(&column.as_str()) {
                if new > old {
                    cmp.regressions.push(label);
                } else if new < old {
                    cmp.improvements.push(label);
                }
            } else if GATED_HIGHER_IS_BETTER.contains(&column.as_str()) {
                if new < old {
                    cmp.regressions.push(label);
                } else if new > old {
                    cmp.improvements.push(label);
                }
            } else if new != old {
                // A deterministic column with no known better-direction (n, m, degeneracy,
                // …): any drift on the same workload is a behavioural change and gates.
                cmp.regressions.push(label);
            }
        }
        // A deterministic column that disappeared from the current row escapes every
        // comparison above — surface it instead of silently ungating it.
        for (column, &old) in &base_row.values {
            if !is_advisory(column) && !row.values.contains_key(column) {
                cmp.regressions.push(format!(
                    "{} · {} · {column}: {old} -> (column no longer emitted)",
                    key.0, key.1
                ));
            }
        }
    }
    for key in base.keys() {
        if !cur.contains_key(key) {
            cmp.removed_rows.push(format!("{} · {}", key.0, key.1));
        }
    }
    cmp
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (the vendored serde_json stand-in is write-only)
// ---------------------------------------------------------------------------

/// A parsed JSON value.  Covers exactly the constructs our own serializer emits (objects,
/// arrays, strings, f64 numbers, booleans, null) — enough to read any `--perf-out` file.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what NaN serializes to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order preserved via `BTreeMap`'s sorted order, which is also the
    /// order our serializer writes).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a description with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs do not occur in our own output; map them to the
                        // replacement character rather than failing the whole document.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive via the str input,
                // so re-slicing is safe at char boundaries found by the leading byte).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let ch = rest.chars().next().expect("non-empty by the match above");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: Vec<Row>) -> PerfDoc {
        PerfDoc::new("smoke", vec!["E17".to_string()], rows)
    }

    #[test]
    fn perf_doc_round_trips_through_the_reader() {
        let original = doc(vec![
            Row::new("E17", "forests n=4000 · be · threads=1")
                .with("colors", 7.0)
                .with("rounds", 120.0)
                .with("wall_ms", 3.25),
            Row::new("E18", "dense n=1500 · flood").with("messages", 42_000.0),
        ]);
        let text = serde_json::to_string(&original).unwrap();
        let back = PerfDoc::parse(&text).unwrap();
        assert_eq!(back.schema, PerfDoc::SCHEMA);
        assert_eq!(back.size, "smoke");
        assert_eq!(back.rows, original.rows);
    }

    #[test]
    fn reader_handles_escapes_and_rejects_garbage() {
        let v = JsonValue::parse(r#"{"a":"x\n\"y\\z","b":[1,-2.5e1,true,null]}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["a"].as_str(), Some("x\n\"y\\z"));
        assert_eq!(obj["b"].as_array().unwrap()[1].as_f64(), Some(-25.0));
        assert!(JsonValue::parse("{\"a\":1} trailing").is_err());
        assert!(JsonValue::parse("{\"a\"").is_err());
        assert!(PerfDoc::parse("[]").is_err());
        assert!(
            PerfDoc::parse(r#"{"schema":"other","size":"x","experiments":[],"rows":[]}"#).is_err()
        );
    }

    #[test]
    fn gate_fails_on_deterministic_regressions_only() {
        let baseline = doc(vec![Row::new("E17", "w")
            .with("colors", 5.0)
            .with("messages", 100.0)
            .with("wall_ms", 10.0)
            .with("legal", 1.0)]);
        // Wall-clock doubles (advisory), messages regress (gate).
        let current = doc(vec![Row::new("E17", "w")
            .with("colors", 5.0)
            .with("messages", 120.0)
            .with("wall_ms", 20.0)
            .with("legal", 1.0)]);
        let cmp = compare_docs(&baseline, &current);
        assert!(!cmp.is_pass());
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("messages"));
        assert_eq!(cmp.advisory.len(), 1);
        assert!(cmp.report().contains("REGRESSIONS"));
    }

    #[test]
    fn gate_passes_on_improvements_and_new_rows() {
        let baseline = doc(vec![
            Row::new("E17", "w").with("rounds", 50.0).with("legal", 1.0),
            Row::new("E17", "gone").with("rounds", 9.0),
        ]);
        let current = doc(vec![
            Row::new("E17", "w").with("rounds", 40.0).with("legal", 1.0),
            Row::new("E19", "karate · be").with("colors", 5.0),
        ]);
        let cmp = compare_docs(&baseline, &current);
        assert!(cmp.is_pass());
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.added_rows.len(), 1);
        assert_eq!(cmp.removed_rows.len(), 1);
    }

    #[test]
    fn legality_drop_is_a_regression() {
        let baseline = doc(vec![Row::new("E19", "w").with("legal", 1.0)]);
        let current = doc(vec![Row::new("E19", "w").with("legal", 0.0)]);
        assert!(!compare_docs(&baseline, &current).is_pass());
    }

    #[test]
    fn strategy_escalation_is_a_regression() {
        // A batch degrading from local repair (1) to full recolor (2) must fail the gate.
        let baseline = doc(vec![Row::new("E20", "w · batch 1").with("strategy", 1.0)]);
        let current = doc(vec![Row::new("E20", "w · batch 1").with("strategy", 2.0)]);
        let cmp = compare_docs(&baseline, &current);
        assert!(!cmp.is_pass());
        assert!(cmp.regressions[0].contains("strategy"));
        // ...including an escalation away from a 0.0 baseline (no conflict → full).
        let baseline = doc(vec![Row::new("E20", "w · batch 1").with("strategy", 0.0)]);
        assert!(!compare_docs(&baseline, &current).is_pass());
    }

    #[test]
    fn matched_row_count_exposes_vacuous_comparisons() {
        let baseline = doc(vec![Row::new("E17", "old label").with("rounds", 5.0)]);
        let current = doc(vec![Row::new("E17", "renamed label").with("rounds", 50.0)]);
        let cmp = compare_docs(&baseline, &current);
        // Nothing matched: is_pass() alone would report success, so callers must check
        // matched_rows (perf_gate fails on 0 matches against a non-empty baseline).
        assert!(cmp.is_pass());
        assert_eq!(cmp.matched_rows, 0);
        let same = compare_docs(&baseline, &baseline);
        assert_eq!(same.matched_rows, 1);
    }

    #[test]
    fn any_wall_prefixed_column_is_advisory() {
        for column in ["wall_ms", "wall_ms_seq", "wall_ns_round", "speedup_vs_seq"] {
            assert!(is_advisory(column), "{column} must be advisory");
        }
        for column in ["rounds", "ph_halving_rounds", "total_bits", "walltime"] {
            assert!(!is_advisory(column), "{column} must gate");
        }
    }

    #[test]
    fn advisory_changes_from_a_zero_baseline_are_still_reported() {
        let baseline = doc(vec![Row::new("E17", "w").with("wall_ms", 0.0)]);
        let current = doc(vec![Row::new("E17", "w").with("wall_ms", 5.0)]);
        let cmp = compare_docs(&baseline, &current);
        assert!(cmp.is_pass());
        assert_eq!(cmp.advisory.len(), 1);
    }

    #[test]
    fn undirectioned_deterministic_columns_gate_on_any_change() {
        // `m` has no better-direction: the graph itself changed, so both directions fail.
        let baseline = doc(vec![Row::new("E19", "karate").with("m", 78.0)]);
        for drifted in [77.0, 79.0] {
            let current = doc(vec![Row::new("E19", "karate").with("m", drifted)]);
            let cmp = compare_docs(&baseline, &current);
            assert!(!cmp.is_pass(), "m drift {drifted} must gate");
            assert!(cmp.advisory.is_empty());
        }
        // Same for `new_edges`: a decrease means batch edges were silently lost, so it must
        // gate rather than pass as an "improvement".
        let baseline = doc(vec![Row::new("E20", "w · batch 1").with("new_edges", 10.0)]);
        let current = doc(vec![Row::new("E20", "w · batch 1").with("new_edges", 9.0)]);
        assert!(!compare_docs(&baseline, &current).is_pass());
    }

    #[test]
    fn dropping_a_deterministic_column_gates() {
        let baseline = doc(vec![Row::new("E17", "w").with("messages", 100.0).with("wall_ms", 3.0)]);
        // messages vanished (wall_ms vanishing is fine — advisory columns may come and go).
        let current = doc(vec![Row::new("E17", "w").with("rounds", 9.0)]);
        let cmp = compare_docs(&baseline, &current);
        assert!(!cmp.is_pass());
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("no longer emitted"));
    }
}
