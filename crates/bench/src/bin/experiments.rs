//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release -p arbcolor_bench --bin experiments            # all experiments, scale 1
//!   cargo run --release -p arbcolor_bench --bin experiments -- E8      # one experiment
//!   cargo run --release -p arbcolor_bench --bin experiments -- all 2   # all, scale 2
//!   cargo run --release -p arbcolor_bench --bin experiments -- E8 1 --json

use arbcolor_bench::experiments;
use arbcolor_bench::Row;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all").to_uppercase();
    let scale: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
    let json = args.iter().any(|a| a == "--json");

    let all = experiments::run_all(scale);
    let mut printed = false;
    for (id, rows) in &all {
        if which != "ALL" && which != *id {
            continue;
        }
        printed = true;
        println!("\n## {id}\n");
        if json {
            println!("{}", Row::to_json_lines(rows));
        } else {
            println!("{}", Row::to_markdown(rows));
        }
    }
    if !printed {
        eprintln!("unknown experiment id {which}; known ids are E1..E15 or 'all'");
        std::process::exit(1);
    }
}
