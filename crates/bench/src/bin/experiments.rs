//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release -p arbcolor_bench --bin experiments             # all experiments, scale 1
//!   cargo run --release -p arbcolor_bench --bin experiments -- E8       # one experiment
//!   cargo run --release -p arbcolor_bench --bin experiments -- all 2    # all, scale 2
//!   cargo run --release -p arbcolor_bench --bin experiments -- E8 1 --json
//!   cargo run --release -p arbcolor_bench --bin experiments -- --smoke  # CI tier: tiny graphs
//!
//! `--smoke` shrinks every workload to the smoke tier (the CI `bench-smoke` job runs it with
//! `--json` and archives the rows as a workflow artifact on every pull request).  With
//! `--json` the output is pure JSON lines — one row object per line, no markdown headers —
//! so it can be piped straight into a file or a line-oriented tool.

use arbcolor_bench::experiments::{self, SizeClass};
use arbcolor_bench::Row;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let which = positional.first().map(|s| s.as_str()).unwrap_or("all").to_uppercase();
    let sz = if smoke {
        SizeClass::Smoke
    } else {
        SizeClass::Scale(positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(1))
    };

    // Filter the lazy catalog first so selecting one experiment runs only that experiment.
    let selected: Vec<_> = experiments::catalog()
        .into_iter()
        .filter(|(id, _)| which == "ALL" || which == *id)
        .collect();
    if selected.is_empty() {
        eprintln!("unknown experiment id {which}; known ids are E1..E16 or 'all'");
        std::process::exit(1);
    }
    for (id, run) in selected {
        let rows = run(sz);
        if json {
            println!("{}", Row::to_json_lines(&rows));
        } else {
            println!("\n## {id}\n");
            println!("{}", Row::to_markdown(&rows));
        }
    }
}
