//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release -p arbcolor_bench --bin experiments             # all experiments, scale 1
//!   cargo run --release -p arbcolor_bench --bin experiments -- E8       # one experiment
//!   cargo run --release -p arbcolor_bench --bin experiments -- E19,E20  # a comma-separated list
//!   cargo run --release -p arbcolor_bench --bin experiments -- all 2    # all, scale 2
//!   cargo run --release -p arbcolor_bench --bin experiments -- E8 1 --json
//!   cargo run --release -p arbcolor_bench --bin experiments -- --smoke  # CI tier: tiny graphs
//!   cargo run --release -p arbcolor_bench --bin experiments -- --smoke --par 4
//!
//! `--smoke` shrinks every workload to the smoke tier (the CI `bench-smoke` job runs it with
//! `--json` and archives the rows as a workflow artifact on every pull request).  With
//! `--json` the output is pure JSON lines — one row object per line, no markdown headers —
//! so it can be piped straight into a file or a line-oriented tool.
//!
//! `--par N` (or `--par=N`) sets the process-wide executor configuration: `N > 1` runs every
//! experiment on the sharded simulator with `N` pool threads (`arbcolor_runtime::shard`),
//! `N = 1` forces the sequential executor.  Results are bit-identical either way — the CI
//! `bench-smoke` job runs the tier under both and fails on any diff — only wall-clock
//! changes.  E17 additionally performs its own 1-vs-4-thread sweep to report speedups.
//!
//! `--par-cutoff N` (or `--par-cutoff=N`) overrides the sequential-fallback cutoff of the
//! sharded paths (default ~2k vertices).  `--par-cutoff 0` forces even tiny graphs through
//! the sharded executor and the parallel bucket phase — the CI cross-executor gate uses it
//! so the smoke tier genuinely exercises the parallel code on every experiment.
//!
//! `--chunk-size N` (or `--chunk-size=N`) overrides the work-stealing chunk size of the
//! sharded executor (default 1024 frontier vertices per steal).  Results are bit-identical
//! at every chunk size — the CI diff leg runs a non-default value to prove it — only the
//! steal granularity (and thus load balance) changes.
//!
//! `--seed N` (or `--seed=N`) sets the process-wide experiment seed (default 42) that
//! randomized contenders derive their PRNGs from — currently E22's HKMT headliner.  For a
//! fixed seed every table is bit-identical across executors and thread counts; the CI
//! `congest-smoke` job runs E22 under both executors with the same seed and diffs the rows.
//!
//! `--perf-out FILE` (or `--perf-out=FILE`) additionally writes the performance-tracking
//! rows (the experiments in `arbcolor_bench::perf::PERF_EXPERIMENTS` — currently the
//! E17/E18 scale and routing races, the E19/E20 ingestion and dynamic-recoloring
//! workloads, the E21 frontier-collapse trace, the E22 CONGEST bandwidth race, the E23
//! per-phase cost breakdown, the E24 palette-engine race, and the E25 sustained-update
//! service benchmark) as one machine-readable JSON document (schema
//! `arbcolor-perf-v1`).  The CI `bench-smoke` job archives one per PR under the
//! `BENCH_PR<N>.json` naming scheme and the `perf_gate` binary diffs its deterministic
//! columns against the committed baseline of the previous PR, failing the build on
//! regressions (wall-clock columns stay advisory).
//!
//! `--trace-out FILE` (or `--trace-out=FILE`) installs an observability collector
//! (`arbcolor_runtime::obs`) for the whole run and writes a Chrome trace-event JSON file on
//! exit: every executor run and every instrumented driver phase becomes a nested slice
//! (load the file at `ui.perfetto.dev` or `chrome://tracing`), and traced rounds become
//! instant events.  A per-phase summary table and the metrics registry (run counters plus
//! power-of-two round/message histograms) are printed to stderr.  The CI `trace-smoke` job
//! validates the file's schema and slice nesting with `jq` on every pull request.

use arbcolor_bench::experiments::{self, SizeClass};
use arbcolor_bench::perf::{PerfDoc, PERF_EXPERIMENTS};
use arbcolor_bench::Row;
use arbcolor_runtime::{
    obs, set_default_chunk_size, set_default_executor, set_default_sequential_cutoff, ExecutorKind,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");

    // Collect positionals while pulling out `--flag VALUE` options (with `=` forms).
    let mut par: Option<&str> = None;
    let mut par_cutoff: Option<&str> = None;
    let mut chunk_size: Option<&str> = None;
    let mut perf_out: Option<&str> = None;
    let mut seed: Option<&str> = None;
    let mut trace_out: Option<&str> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        for (flag, slot) in [
            ("--par", &mut par),
            ("--par-cutoff", &mut par_cutoff),
            ("--chunk-size", &mut chunk_size),
            ("--perf-out", &mut perf_out),
            ("--seed", &mut seed),
            ("--trace-out", &mut trace_out),
        ] {
            if arg == flag {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{flag} expects a value (e.g. --par 4, --perf-out perf.json)");
                    std::process::exit(1);
                };
                *slot = Some(value.as_str());
                i += 1; // skip the value
            } else if let Some(value) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
                *slot = Some(value);
            }
        }
        if !arg.starts_with("--") {
            positional.push(arg);
        }
        i += 1;
    }
    let parse_flag = |flag: &str, value: Option<&str>| -> Option<usize> {
        value.map(|v| {
            v.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got {v:?}");
                std::process::exit(1);
            })
        })
    };
    if let Some(cutoff) = parse_flag("--par-cutoff", par_cutoff) {
        set_default_sequential_cutoff(cutoff);
    }
    if let Some(chunk) = parse_flag("--chunk-size", chunk_size) {
        set_default_chunk_size(chunk);
    }
    if let Some(threads) = parse_flag("--par", par) {
        set_default_executor(if threads > 1 {
            ExecutorKind::sharded(threads)
        } else {
            ExecutorKind::Sequential
        });
    }
    if let Some(value) = seed {
        let parsed = value.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("--seed expects a number, got {value:?}");
            std::process::exit(1);
        });
        experiments::set_experiment_seed(parsed);
    }

    // `--trace-out`: record every executor run and driver phase for the whole invocation.
    let collector = trace_out.map(|_| obs::SpanCollector::new());
    let _recording = collector.as_ref().map(obs::install);

    // The experiment selection: `all`, one id, or a comma-separated list (`E17,E18`;
    // empty segments from trailing commas are ignored).
    let which: Vec<String> = positional
        .first()
        .map(|s| {
            s.split(',').map(|id| id.trim().to_uppercase()).filter(|id| !id.is_empty()).collect()
        })
        .unwrap_or_else(|| vec!["ALL".to_string()]);
    if which.is_empty() {
        eprintln!("empty experiment selection; known ids are E1..E25 or 'all'");
        std::process::exit(1);
    }
    let all = which.iter().any(|id| id == "ALL");
    let sz = if smoke {
        SizeClass::Smoke
    } else {
        SizeClass::Scale(positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(1))
    };

    // Filter the lazy catalog first so selecting one experiment runs only that experiment.
    let catalog = experiments::catalog();
    let unknown: Vec<&String> =
        which.iter().filter(|w| *w != "ALL" && !catalog.iter().any(|(id, _)| id == w)).collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment id(s) {unknown:?}; known ids are E1..E25 or 'all'");
        std::process::exit(1);
    }
    let selected: Vec<_> =
        catalog.into_iter().filter(|(id, _)| all || which.iter().any(|w| w == id)).collect();
    let mut perf_rows: Vec<Row> = Vec::new();
    let mut perf_ids: Vec<String> = Vec::new();
    for (id, run) in selected {
        let rows = run(sz);
        if json {
            println!("{}", Row::to_json_lines(&rows));
        } else {
            println!("\n## {id}\n");
            println!("{}", Row::to_markdown(&rows));
        }
        if perf_out.is_some() && PERF_EXPERIMENTS.contains(&id) {
            perf_ids.push(id.to_string());
            perf_rows.extend(rows);
        }
    }
    if let Some(path) = perf_out {
        if perf_rows.is_empty() {
            eprintln!(
                "--perf-out: no perf rows collected (the selection {which:?} excludes \
                 {PERF_EXPERIMENTS:?}); writing an empty document to {path}"
            );
        }
        let doc = PerfDoc::new(if smoke { "smoke" } else { "scale" }, perf_ids, perf_rows);
        let body = serde_json::to_string_pretty(&doc).expect("perf rows are serializable");
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write --perf-out file {path}: {e}");
            std::process::exit(1);
        });
    }
    if let (Some(path), Some(collector)) = (trace_out, collector.as_ref()) {
        std::fs::write(path, obs::chrome_trace_json(collector)).unwrap_or_else(|e| {
            eprintln!("cannot write --trace-out file {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("{}", obs::summary_table(collector));
        let metrics = collector.metrics();
        if !metrics.is_empty() {
            eprintln!("{}", metrics.render());
        }
        eprintln!("wrote {} spans to {path} (load at ui.perfetto.dev)", collector.len());
    }
}
