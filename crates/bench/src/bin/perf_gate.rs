//! The CI perf-regression gate: diffs two `--perf-out` documents.
//!
//! Usage:
//!   cargo run --release -p arbcolor_bench --bin perf_gate -- BENCH_PR4.json BENCH_PR5.json
//!
//! The first argument is the committed baseline of the previous PR, the second the fresh
//! document the current build produced.  Deterministic columns (colors, rounds, messages,
//! frontier/repair counts, legality) **gate**: any worsening exits non-zero with a report.
//! Wall-clock and speedup columns are advisory — logged with their drift ratio, never
//! gated, because CI hardware varies run to run.  Rows that exist on only one side are
//! reported but do not fail the gate (workloads come and go; the baseline is updated in
//! the same PR that changes them) — unless *no* row matches at all, which would disable
//! the gate silently and therefore fails it loudly instead.

use arbcolor_bench::perf::{compare_docs, PerfDoc};

fn load(path: &str) -> PerfDoc {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    PerfDoc::parse(&text).unwrap_or_else(|e| {
        eprintln!("perf_gate: {path} is not a valid perf document: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: perf_gate BASELINE.json CURRENT.json");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    if baseline.size != current.size {
        eprintln!(
            "perf_gate: size tiers differ (baseline {:?}, current {:?}) — not comparable",
            baseline.size, current.size
        );
        std::process::exit(2);
    }
    let comparison = compare_docs(&baseline, &current);
    print!("{}", comparison.report());
    if comparison.matched_rows == 0 && !baseline.rows.is_empty() {
        // A blanket workload rename (or an empty current selection) would otherwise pass
        // vacuously with the whole gate disabled.
        eprintln!(
            "perf_gate: no current row matched any of the {} baseline rows — if the \
             workload labels were renamed on purpose, update the committed baseline in the \
             same PR",
            baseline.rows.len()
        );
        std::process::exit(1);
    }
    if comparison.is_pass() {
        println!(
            "perf gate PASS: {} of {} baseline rows matched and gated, no deterministic \
             regressions ({} current rows total)",
            comparison.matched_rows,
            baseline.rows.len(),
            current.rows.len()
        );
    } else {
        println!(
            "perf gate FAIL: {} deterministic regression(s) against {baseline_path}",
            comparison.regressions.len()
        );
        std::process::exit(1);
    }
}
