//! Experiment harness reproducing every claim of the paper (see DESIGN.md §5 for the
//! experiment index and EXPERIMENTS.md for the recorded results).
//!
//! Each experiment function returns a vector of [`Row`]s; the `experiments` binary prints them
//! as markdown tables and JSON lines.  The same functions back the Criterion benchmarks, which
//! time representative configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod perf;
pub mod row;

pub use datasets::{fixture_datasets, Dataset};
pub use experiments::SizeClass;
pub use perf::PerfDoc;
pub use row::Row;
