//! Error type of the core algorithms.

use arbcolor_decompose::DecomposeError;
use arbcolor_graph::GraphError;
use arbcolor_runtime::RuntimeError;
use std::error::Error;
use std::fmt;

/// Errors raised by the paper's procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
    /// An invariant guaranteed by the paper's analysis was found violated at run time.
    InvariantViolated {
        /// Description of the violated invariant.
        reason: String,
    },
    /// Error from a substrate algorithm.
    Decompose(DecomposeError),
    /// Error from the graph layer.
    Graph(GraphError),
    /// Error from the LOCAL-model runtime.
    Runtime(RuntimeError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            CoreError::InvariantViolated { reason } => write!(f, "invariant violated: {reason}"),
            CoreError::Decompose(e) => write!(f, "substrate error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Decompose(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecomposeError> for CoreError {
    fn from(e: DecomposeError) -> Self {
        CoreError::Decompose(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<RuntimeError> for CoreError {
    fn from(e: RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::InvalidParameter { reason: "k = 0".to_string() };
        assert!(e.to_string().contains("k = 0"));
        let e: CoreError = GraphError::NotAcyclic.into();
        assert!(e.source().is_some());
        let e: CoreError = DecomposeError::InvalidParameter { reason: "x".into() }.into();
        assert!(e.to_string().contains("substrate"));
        let e: CoreError = RuntimeError::RoundLimitExceeded { limit: 1, still_active: 1 }.into();
        assert!(e.to_string().contains("runtime"));
    }
}
