//! The **Ghaffari–Kuhn** deterministic `(deg+1)`-list coloring driver (arXiv:2011.04511),
//! the repository's second headline algorithm next to Procedure Legal-Coloring.
//!
//! Ghaffari and Kuhn showed that a deterministic distributed algorithm can `(Δ+1)`-color (and
//! more generally `(deg+1)`-list color) every graph in `O(log² Δ · log n)` rounds, without
//! network decomposition — where Barenboim–Elkin is parameterized by arboricity, Ghaffari–Kuhn
//! is parameterized by degree, which makes the two algorithms natural contenders on the same
//! inputs.  This module implements the list-coloring pipeline the paper is built from, in the
//! structure of Kuhn's recursive list coloring (arXiv:1907.03797):
//!
//! 1. **Local list generation** — every vertex derives its private list from local knowledge
//!    only ([`ColorLists::degree_plus_one`]; any instance with greedy slack is accepted).
//! 2. **Defective-coloring-based degree reduction** — each recursion level computes a
//!    defective coloring of the current subgraph (`O(log* n)` rounds) and folds its classes
//!    into `O(log Δ)` announcement slots, so that every vertex coordinates with all but a
//!    small fraction of its neighbors when choosing a half of the color space.
//! 3. **Recursive color-space halving** — the color space is split in two; scheduled by the
//!    slots, every vertex commits to the half with the larger remaining margin (its palette
//!    share there minus the neighbors already committed there).  The two halves are disjoint
//!    sub-instances that recurse *in parallel*; after `O(log Δ)` levels the color space is
//!    constant and the instance is finished by a greedy list sweep over a legal schedule.
//!
//! A vertex whose committed half cannot guarantee a proper greedy completion (its palette
//! share is at most the number of same-half neighbors) *defers*: it drops out of the
//! recursion and is colored at the very end by one cleanup sweep from its original list,
//! which always succeeds because the original lists have greedy slack.  The deferral rule
//! makes legality and list-membership **unconditional**; the recursion only has to keep the
//! deferred set small.
//!
//! **Deviation from the paper.**  Ghaffari–Kuhn derandomize a one-round random color trial
//! via the method of conditional expectations; this reproduction instead derandomizes the
//! half-choice through the defective-coloring schedule above, which preserves the paper's
//! building blocks (defective colorings, list slack, color-space recursion) and its
//! `O(log² Δ · log n)` round envelope on the generator suite (asserted by the property
//! tests and tracked by experiment E16), but not the exact constant-factor analysis.

use crate::error::CoreError;
use crate::list_coloring::ColorLists;
use crate::report::ColoringRun;
use arbcolor_decompose::defective::defective_coloring;
use arbcolor_decompose::linial::linial_coloring;
use arbcolor_decompose::reduction::kw_reduce;
use arbcolor_graph::{ColorPool, Coloring, Graph, InducedSubgraph, Vertex};
use arbcolor_runtime::algorithms::{
    HalvingSplit, ListColorSchedule, ScheduledListColor, SplitChoice, SplitSlot,
};
use arbcolor_runtime::{obs, parallel_max, run_algorithm, CostLedger, RoundReport};

/// Color-space size at or below which an instance is finished by a direct greedy list sweep
/// (its maximum degree is below this bound too, because lists have greedy slack).
const BASE_SPACE: u64 = 8;

/// Upper bound on the number of announcement slots of one halving phase.
const MAX_SLOTS: usize = 64;

/// One sub-instance of the recursion: a set of original-graph vertices, their remaining
/// lists (a flat [`ColorPool`], one list per kept vertex in order), and the color-space
/// interval `[lo, hi)` the lists live in.
struct Instance {
    vertices: Vec<Vertex>,
    lists: ColorPool,
    lo: u64,
    hi: u64,
}

/// The `(deg+1)`-list coloring entry point: every vertex generates the local list
/// `{0, …, deg(v)}`, so the result is a legal coloring with at most `Δ + 1` colors in which
/// low-degree vertices hold low colors.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn ghaffari_kuhn_coloring(graph: &Graph) -> Result<ColoringRun, CoreError> {
    ghaffari_kuhn_list_coloring(graph, &ColorLists::degree_plus_one(graph))
}

/// The classical `(Δ+1)`-coloring entry point: every vertex lists the full `{0, …, Δ}`.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn ghaffari_kuhn_delta_plus_one(graph: &Graph) -> Result<ColoringRun, CoreError> {
    ghaffari_kuhn_list_coloring(graph, &ColorLists::delta_plus_one(graph))
}

/// Solves an arbitrary list-coloring instance with greedy slack (`|Ψ(v)| ≥ deg(v) + 1`).
///
/// The returned [`ColoringRun`] carries the coloring (verified legal and list-respecting),
/// the color-space bound as `palette_bound`, and the per-level cost breakdown.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the instance does not cover the graph or lacks
/// greedy slack; propagates substrate errors.
pub fn ghaffari_kuhn_list_coloring(
    graph: &Graph,
    lists: &ColorLists,
) -> Result<ColoringRun, CoreError> {
    if lists.n() != graph.n() {
        return Err(CoreError::InvalidParameter {
            reason: format!(
                "instance covers {} vertices but the graph has {}",
                lists.n(),
                graph.n()
            ),
        });
    }
    if !lists.has_greedy_slack(graph) {
        return Err(CoreError::InvalidParameter {
            reason: format!(
                "the instance lacks greedy slack (min |Ψ(v)| − deg(v) − 1 = {})",
                lists.min_slack(graph)
            ),
        });
    }
    let space = lists.color_space();
    let mut ledger = CostLedger::new();
    let mut colors: Vec<Option<u64>> = vec![None; graph.n()];
    let mut deferred: Vec<Vertex> = Vec::new();
    let mut active = vec![Instance {
        vertices: graph.vertices().collect(),
        lists: lists.pool().clone(),
        lo: 0,
        hi: space,
    }];
    let mut level = 0usize;

    while !active.is_empty() {
        // One observability span per halving level; the executor runs of the level
        // (defective colorings, the scheduled bipartition, leaf sweeps) nest inside it.
        let level_span = obs::phase(format!("level-{level}"));
        let mut splitters = Vec::new();
        let mut leaf_reports = Vec::new();
        let mut next = Vec::new();
        for inst in active {
            if inst.vertices.is_empty() {
                continue;
            }
            let sub = InducedSubgraph::new(graph, &inst.vertices);
            if inst.hi - inst.lo <= BASE_SPACE || sub.graph.m() == 0 {
                let (leaf_colors, report) = scheduled_sweep(&sub.graph, inst.lists, None)?;
                for (child, c) in leaf_colors.into_iter().enumerate() {
                    colors[sub.map.to_parent(child)] = Some(c);
                }
                leaf_reports.push(report);
            } else {
                splitters.push((inst, sub));
            }
        }

        // One halving phase per splitter: a defective-coloring schedule followed by the
        // scheduled bipartition.  All instances of a level are vertex-disjoint and proceed
        // concurrently, alongside the leaves finished at this level.
        let mut split_reports = Vec::new();
        for (inst, sub) in splitters {
            let mid = inst.lo + (inst.hi - inst.lo) / 2;
            let delta = sub.graph.max_degree().max(1);
            let num_slots = ((((delta + 2) as f64).log2().ceil() as usize) * 2).clamp(2, MAX_SLOTS);
            let defective = defective_coloring(&sub.graph, num_slots)?;
            let slots: Vec<SplitSlot> = (0..sub.graph.n())
                .map(|child| {
                    let class = defective.output.coloring.color(child) as usize;
                    let list = inst.lists.list(child);
                    let low_count = list.partition_point(|&c| c < mid);
                    SplitSlot {
                        slot: class % num_slots,
                        low_count,
                        high_count: list.len() - low_count,
                        tie_high: (class / num_slots) % 2 == 1,
                    }
                })
                .collect();
            let result = run_algorithm(&sub.graph, &HalvingSplit::new(&slots, num_slots))?;
            split_reports.push(defective.output.report.then(result.report));

            let mut low =
                Instance { vertices: Vec::new(), lists: ColorPool::new(), lo: inst.lo, hi: mid };
            let mut high =
                Instance { vertices: Vec::new(), lists: ColorPool::new(), lo: mid, hi: inst.hi };
            for (child, choice) in result.outputs.iter().enumerate() {
                let parent = sub.map.to_parent(child);
                let list = inst.lists.list(child);
                let low_count = list.partition_point(|&c| c < mid);
                match choice {
                    SplitChoice::Low => {
                        low.vertices.push(parent);
                        low.lists.push_slice(&list[..low_count]);
                    }
                    SplitChoice::High => {
                        high.vertices.push(parent);
                        high.lists.push_slice(&list[low_count..]);
                    }
                    SplitChoice::Deferred => deferred.push(parent),
                }
            }
            if !low.vertices.is_empty() {
                next.push(low);
            }
            if !high.vertices.is_empty() {
                next.push(high);
            }
        }

        let level_report = parallel_max(&leaf_reports).alongside(parallel_max(&split_reports));
        if level_report != RoundReport::zero() {
            ledger.push(format!("level-{level}"), level_report);
        }
        level_span.charge(level_report);
        drop(level_span);
        active = next;
        level += 1;
    }

    // Deferred vertices are colored last, from their *original* lists, avoiding the final
    // colors of their already-colored neighbors; the original greedy slack guarantees success.
    if !deferred.is_empty() {
        let cleanup_span = obs::phase("deferred-cleanup");
        let sub = InducedSubgraph::new(graph, &deferred);
        let mut cleanup_lists = ColorPool::new();
        let mut forbidden = ColorPool::new();
        for child in 0..sub.graph.n() {
            let parent = sub.map.to_parent(child);
            cleanup_lists.push_slice(lists.list(parent));
            forbidden.push_iter(graph.neighbors(parent).iter().filter_map(|&u| colors[u]));
        }
        let (cleanup_colors, report) = scheduled_sweep(&sub.graph, cleanup_lists, Some(forbidden))?;
        for (child, c) in cleanup_colors.into_iter().enumerate() {
            colors[sub.map.to_parent(child)] = Some(c);
        }
        cleanup_span.charge(report);
        ledger.push("deferred-cleanup", report);
    }

    let colors: Vec<u64> =
        colors.into_iter().map(|c| c.expect("the recursion covers every vertex")).collect();
    let coloring = Coloring::new(graph, colors)?;
    lists.verify(graph, &coloring)?;
    Ok(ColoringRun::new(coloring, space, ledger))
}

/// Greedily list colors a (sub)graph over a legal schedule: Linial plus Kuhn–Wattenhofer
/// produce a `(Δ+1)`-coloring whose classes become the announcement slots of one
/// [`ScheduledListColor`] sweep.  `forbidden` carries externally excluded colors per vertex.
///
/// The list and forbidden pools are moved into the run's [`ListColorSchedule`] arena
/// wholesale — no per-vertex list is ever copied.
fn scheduled_sweep(
    graph: &Graph,
    lists: ColorPool,
    forbidden: Option<ColorPool>,
) -> Result<(Vec<u64>, RoundReport), CoreError> {
    let forbidden = forbidden.unwrap_or_else(|| ColorPool::empty_lists(graph.n()));
    let (slots, schedule_report) = if graph.m() == 0 {
        (vec![0usize; graph.n()], RoundReport::zero())
    } else {
        let linial = linial_coloring(graph)?;
        let reduced = kw_reduce(graph, &linial.coloring)?;
        let slots = (0..graph.n()).map(|v| reduced.coloring.color(v) as usize).collect();
        (slots, linial.report.then(reduced.report))
    };
    let schedule = ListColorSchedule::new(slots, lists, forbidden);
    let result = run_algorithm(graph, &ScheduledListColor::new(&schedule))?;
    obs::record_palette(schedule.stats());
    let mut out = Vec::with_capacity(graph.n());
    for (v, chosen) in result.outputs.into_iter().enumerate() {
        match chosen {
            Some(c) => out.push(c),
            None => {
                return Err(CoreError::InvariantViolated {
                    reason: format!("vertex {v} exhausted its list during a scheduled sweep"),
                })
            }
        }
    }
    Ok((out, schedule_report.then(result.report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    /// The empirical `O(log² Δ · log n)` round envelope asserted across the generator suite.
    fn round_budget(graph: &Graph) -> usize {
        let log_delta = ((graph.max_degree() + 2) as f64).log2();
        let log_n = ((graph.n() + 2) as f64).log2();
        (6.0 * log_delta * log_delta * log_n).ceil() as usize + 24
    }

    fn check(graph: &Graph) -> ColoringRun {
        let run = ghaffari_kuhn_coloring(graph).unwrap();
        assert!(run.coloring.is_legal(graph));
        assert!(
            run.colors_used <= graph.max_degree() + 1,
            "{} colors exceed Δ + 1 = {}",
            run.colors_used,
            graph.max_degree() + 1
        );
        assert!(
            run.report.rounds <= round_budget(graph),
            "{} rounds exceed the O(log² Δ · log n) budget {} (n = {}, Δ = {})",
            run.report.rounds,
            round_budget(graph),
            graph.n(),
            graph.max_degree()
        );
        run
    }

    #[test]
    fn colors_forest_unions_within_delta_plus_one_and_budget() {
        for (n, a, seed) in [(300usize, 3usize, 11u64), (500, 5, 13)] {
            let g = generators::union_of_random_forests(n, a, seed).unwrap().with_shuffled_ids(7);
            check(&g);
        }
    }

    #[test]
    fn colors_dense_and_irregular_families() {
        let graphs = vec![
            generators::gnp(300, 0.05, 17).unwrap().with_shuffled_ids(3),
            generators::star_forest_union(400, 2, 4, 19).unwrap().with_shuffled_ids(4),
            generators::barabasi_albert(400, 3, 23).unwrap().with_shuffled_ids(5),
            generators::complete(40).unwrap().with_shuffled_ids(6),
            generators::grid(12, 15).unwrap().with_shuffled_ids(8),
        ];
        for g in &graphs {
            check(g);
        }
    }

    #[test]
    fn delta_plus_one_entry_point_matches_the_classical_problem() {
        let g = generators::gnp(250, 0.06, 29).unwrap().with_shuffled_ids(9);
        let run = ghaffari_kuhn_delta_plus_one(&g).unwrap();
        assert!(run.coloring.is_legal(&g));
        assert!(run.colors_used <= g.max_degree() + 1);
        assert_eq!(run.palette_bound, g.max_degree() as u64 + 1);
    }

    #[test]
    fn respects_arbitrary_lists_with_slack() {
        // Shifted, interleaved lists: vertex v may only use colors ≡ v (mod 2) plus a shared
        // overflow block, sized to deg(v) + 2.
        let g = generators::union_of_random_forests(200, 3, 31).unwrap().with_shuffled_ids(10);
        let lists: Vec<Vec<u64>> = g
            .vertices()
            .map(|v| {
                let size = g.degree(v) as u64 + 2;
                (0..size).map(|i| 2 * i + (v as u64 % 2)).collect()
            })
            .collect();
        let instance = ColorLists::new(&g, lists).unwrap();
        let run = ghaffari_kuhn_list_coloring(&g, &instance).unwrap();
        instance.verify(&g, &run.coloring).unwrap();
    }

    #[test]
    fn rejects_instances_without_slack() {
        let g = generators::complete(5).unwrap();
        let skinny = ColorLists::new(&g, vec![vec![0, 1]; 5]).unwrap();
        assert!(matches!(
            ghaffari_kuhn_list_coloring(&g, &skinny),
            Err(CoreError::InvalidParameter { .. })
        ));
        let wrong_size = ColorLists::new(&generators::path(2).unwrap(), vec![vec![0]; 2]).unwrap();
        assert!(ghaffari_kuhn_list_coloring(&g, &wrong_size).is_err());
    }

    #[test]
    fn handles_trivial_graphs() {
        let empty = Graph::empty(6);
        let run = ghaffari_kuhn_coloring(&empty).unwrap();
        assert_eq!(run.colors_used, 1);
        assert_eq!(run.report.rounds, 0);
        let single = Graph::empty(1);
        assert_eq!(ghaffari_kuhn_coloring(&single).unwrap().colors_used, 1);
        let none = Graph::empty(0);
        assert_eq!(ghaffari_kuhn_coloring(&none).unwrap().colors_used, 0);
    }

    #[test]
    fn is_deterministic() {
        let g = generators::barabasi_albert(300, 3, 37).unwrap().with_shuffled_ids(11);
        let a = ghaffari_kuhn_coloring(&g).unwrap();
        let b = ghaffari_kuhn_coloring(&g).unwrap();
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.report, b.report);
    }
}
