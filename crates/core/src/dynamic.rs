//! Dynamic graphs: batched edge mutations with localized recoloring.
//!
//! A production coloring service rarely gets to re-color the world on every topology
//! change.  [`DynamicColoring`] maintains a legal `(deg+1)`-bounded coloring across batches
//! of [`GraphUpdate`]s — mixed edge insertions and removals — by repairing only the
//! **conflict frontier**, the vertices incident to a newly monochromatic edge:
//!
//! 1. the batch is folded into a last-write-wins overlay and applied to the CSR through
//!    [`Graph::patched`], an incremental merge that keeps identifiers stable and is
//!    bit-identical to a from-scratch rebuild without re-sorting the whole edge list;
//! 2. the frontier is collected by checking exactly the genuinely new edges — removals
//!    never create conflicts, so deletion-only batches are repair-free by construction;
//! 3. if the [`RepairPolicy`] selects a local repair, the induced subgraph on the frontier
//!    is re-colored with the Ghaffari–Kuhn `(deg+1)`-list driver under
//!    [`run_algorithm`](arbcolor_runtime::run_algorithm), where each frontier
//!    vertex lists `{0, …, deg(v)}` minus the colors held by its non-frontier neighbors —
//!    the list sizes stay ≥ subgraph-degree + 1, so the instance always has greedy slack,
//!    and any solution is legal against both repaired and untouched neighbors;
//! 4. if the policy escalates (by default: frontier above a threshold), the driver falls
//!    back to a full re-coloring of the new graph;
//! 5. legality of the *entire* coloring is independently re-verified after every batch.
//!
//! Deletions free palette slack without spending it: after edges vanish, the maintained
//! coloring may use far more colors than the shrunken maximum degree warrants.
//! [`DynamicColoring::compact`] re-tightens the palette with a deterministic greedy
//! descending-color sweep (every vertex ends at a color ≤ its degree, so the palette lands
//! within `Δ+1`) followed by a rank relabeling that removes holes; no vertex's color ever
//! increases.  [`DynamicColoring::with_auto_compact`] folds that sweep into `apply`
//! whenever a batch with removals leaves the palette looser than `Δ+1`.
//!
//! Every step is deterministic and runs on whatever executor the process-wide
//! [`ExecutorKind`](arbcolor_runtime::ExecutorKind) switch selects, so repair sequences are
//! bit-identical across the sequential, sharded, and reference simulators — experiment E20
//! asserts exactly that, and E25 replays mixed sustained-update workloads against the same
//! invariant.  When an [`obs`] collector is installed, every batch
//! decomposes into `dynamic-apply` / `csr-patch` / repair phase spans and feeds the
//! `dynamic.*` metrics counters.
//!
//! ```
//! use arbcolor::dynamic::{DynamicColoring, GraphUpdate};
//! use arbcolor_graph::Graph;
//!
//! # fn main() -> Result<(), arbcolor::CoreError> {
//! let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)])?;
//! let mut dynamic = DynamicColoring::new(g)?;
//! let batch = dynamic.apply(&[
//!     GraphUpdate::InsertEdges(vec![(3, 4), (0, 4)]),
//!     GraphUpdate::RemoveEdges(vec![(1, 2)]),
//! ])?;
//! assert_eq!(batch.new_edges, 2);
//! assert_eq!(batch.removed_edges, 1);
//! assert!(dynamic.coloring().is_legal(dynamic.graph()));
//! let delta = dynamic.compact();
//! assert!(delta.colors_after <= delta.colors_before);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use crate::error::CoreError;
use crate::ghaffari_kuhn::{ghaffari_kuhn_coloring, ghaffari_kuhn_list_coloring};
use crate::list_coloring::ColorLists;
use arbcolor_graph::{Color, Coloring, Graph, InducedSubgraph, PaletteSet, Vertex};
use arbcolor_runtime::{obs, RoundReport};

/// One batched mutation of the maintained graph.
///
/// Batches are applied **in order** with last-write-wins semantics per edge: an edge
/// removed and later re-inserted in the same [`DynamicColoring::apply`] call ends up
/// present.  Inserting a present edge and removing an absent one are no-ops (they count
/// toward [`BatchOutcome::submitted_edges`] but not toward the new/removed tallies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Insert the given undirected edges.  Endpoint order and duplicates are irrelevant.
    InsertEdges(Vec<(Vertex, Vertex)>),
    /// Remove the given undirected edges.  Endpoint order and duplicates are irrelevant.
    RemoveEdges(Vec<(Vertex, Vertex)>),
}

impl GraphUpdate {
    /// The edge list carried by this update.
    pub fn edges(&self) -> &[(Vertex, Vertex)] {
        match self {
            GraphUpdate::InsertEdges(edges) | GraphUpdate::RemoveEdges(edges) => edges,
        }
    }

    /// Whether this update inserts (rather than removes) its edges.
    pub fn is_insert(&self) -> bool {
        matches!(self, GraphUpdate::InsertEdges(_))
    }
}

/// How the driver decides between a frontier-local repair and a full re-coloring.
///
/// Selected explicitly via [`DynamicColoring::with_repair_policy`]; the default is
/// [`RepairPolicy::Auto`] with [`DynamicColoring::default_threshold`].  A batch whose
/// frontier is empty is always absorbed as [`RepairStrategy::NoConflict`], whatever the
/// policy says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPolicy {
    /// Repair locally while the frontier has at most `frontier_threshold` vertices, fall
    /// back to a full re-coloring above it.
    Auto {
        /// Frontiers larger than this trigger a full re-coloring.
        frontier_threshold: usize,
    },
    /// Always repair the frontier locally, however large it grows.  The localized list
    /// instance always has greedy slack, so this is safe — just potentially slower than a
    /// full re-coloring once the frontier covers most of the graph.
    AlwaysLocal,
    /// Re-color the whole graph on every conflicting batch.
    AlwaysFull,
}

/// How a batch of mutations was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// No new edge was monochromatic; the old coloring is still legal.
    NoConflict,
    /// Only the conflict frontier was re-colored (list coloring on the induced subgraph).
    LocalRepair,
    /// The policy escalated; the whole graph was re-colored.
    FullRecolor,
}

/// The palette change produced by one [`DynamicColoring::compact`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionDelta {
    /// Distinct colors in use before the sweep.
    pub colors_before: usize,
    /// Distinct colors in use after the sweep (never more than `colors_before`).
    pub colors_after: usize,
    /// Vertices whose color changed during the sweep.
    pub recolored: usize,
}

/// Per-batch summary returned by [`DynamicColoring::apply`].
///
/// This is the stable observable surface of the dynamic driver: every field is
/// deterministic (bit-identical across executors and across replays of the same update
/// stream), so perf baselines and replay harnesses may diff outcomes directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Total edges submitted across the batch's updates, before de-duplication and
    /// overlay resolution.
    pub submitted_edges: usize,
    /// Distinct edges that were genuinely added to the graph.
    pub new_edges: usize,
    /// Distinct edges that were genuinely removed from the graph.
    pub removed_edges: usize,
    /// Vertices on the conflict frontier (incident to a newly monochromatic edge).
    pub frontier: usize,
    /// The vertices whose color changed during conflict repair, in ascending order.
    /// Compaction recolorings are reported separately in [`BatchOutcome::compaction`].
    pub repaired: Vec<Vertex>,
    /// The strategy the policy chose for this batch.
    pub strategy: RepairStrategy,
    /// The palette change of the auto-compaction sweep, when one ran (see
    /// [`DynamicColoring::with_auto_compact`]); `None` otherwise.
    pub compaction: Option<CompactionDelta>,
    /// Simulated LOCAL cost of the repair (zero for [`RepairStrategy::NoConflict`]).
    pub report: RoundReport,
}

impl BatchOutcome {
    /// Number of vertices whose color changed during conflict repair.
    pub fn repaired_vertices(&self) -> usize {
        self.repaired.len()
    }
}

/// A legal coloring maintained across batched edge insertions and removals.
#[derive(Debug, Clone)]
pub struct DynamicColoring {
    graph: Graph,
    coloring: Coloring,
    policy: RepairPolicy,
    auto_compact: bool,
}

impl DynamicColoring {
    /// The default frontier threshold, as a fraction of `n`: above `n/4` frontier vertices
    /// the localized instance saves little over a full re-coloring.
    pub fn default_threshold(n: usize) -> usize {
        (n / 4).max(8)
    }

    /// Colors `graph` from scratch (Ghaffari–Kuhn `(deg+1)`-list coloring) and starts
    /// maintaining it.
    ///
    /// # Errors
    ///
    /// Propagates the initial coloring's errors.
    pub fn new(graph: Graph) -> Result<Self, CoreError> {
        let run = ghaffari_kuhn_coloring(&graph)?;
        Self::from_parts(graph, run.coloring)
    }

    /// Starts maintaining an existing coloring (e.g. one loaded alongside an ingested
    /// dataset).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvariantViolated`] if `coloring` is not legal on `graph`.
    pub fn from_parts(graph: Graph, coloring: Coloring) -> Result<Self, CoreError> {
        if !coloring.is_legal(&graph) {
            return Err(CoreError::InvariantViolated {
                reason: "dynamic driver seeded with an illegal coloring".to_string(),
            });
        }
        let policy = RepairPolicy::Auto { frontier_threshold: Self::default_threshold(graph.n()) };
        Ok(DynamicColoring { graph, coloring, policy, auto_compact: false })
    }

    /// Selects how conflicting batches are repaired (see [`RepairPolicy`]).
    #[must_use]
    pub fn with_repair_policy(mut self, policy: RepairPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active repair policy.
    pub fn repair_policy(&self) -> RepairPolicy {
        self.policy
    }

    /// Enables (or disables) automatic palette compaction: after any batch that removed
    /// edges and left the maximum color above the new maximum degree, `apply` runs a
    /// [`compact`](DynamicColoring::compact) sweep and reports its
    /// [`CompactionDelta`] in [`BatchOutcome::compaction`].
    #[must_use]
    pub fn with_auto_compact(mut self, enabled: bool) -> Self {
        self.auto_compact = enabled;
        self
    }

    /// Overrides the frontier threshold above which a batch triggers a full re-coloring.
    #[deprecated(
        since = "0.2.0",
        note = "select the strategy explicitly with \
                `with_repair_policy(RepairPolicy::Auto { frontier_threshold })`"
    )]
    #[must_use]
    pub fn with_frontier_threshold(self, threshold: usize) -> Self {
        self.with_repair_policy(RepairPolicy::Auto { frontier_threshold: threshold })
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The maintained coloring (always legal on [`DynamicColoring::graph`]).
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// Applies one batch of insertions to the graph and repairs the coloring.
    #[deprecated(since = "0.2.0", note = "use `apply(&[GraphUpdate::InsertEdges(..)])`")]
    pub fn insert_edges(&mut self, edges: &[(Vertex, Vertex)]) -> Result<BatchOutcome, CoreError> {
        self.apply(&[GraphUpdate::InsertEdges(edges.to_vec())])
    }

    /// Applies one batch of [`GraphUpdate`]s — mixed insertions and removals — and repairs
    /// the coloring.
    ///
    /// Updates resolve in order with last-write-wins semantics per edge; the net effect is
    /// applied to the CSR in one [`Graph::patched`] merge.  Removals never create
    /// conflicts, so only the genuinely new edges feed the conflict frontier.
    ///
    /// # Errors
    ///
    /// Returns the graph layer's typed errors for invalid edges (out-of-range endpoints,
    /// self-loops) before any state changes, propagates the repair coloring's errors, and
    /// returns [`CoreError::InvariantViolated`] if the post-repair legality check fails (a
    /// driver bug by construction).
    pub fn apply(&mut self, updates: &[GraphUpdate]) -> Result<BatchOutcome, CoreError> {
        let span = obs::phase("dynamic-apply");

        // Fold the batch into a last-write-wins overlay over canonical edges, validating
        // every submitted edge up front so failed batches leave the state untouched.
        let mut submitted_edges = 0usize;
        let mut overlay: BTreeMap<(Vertex, Vertex), bool> = BTreeMap::new();
        for update in updates {
            for &(u, v) in update.edges() {
                submitted_edges += 1;
                let key = self.validated_canonical(u, v)?;
                overlay.insert(key, update.is_insert());
            }
        }

        // Resolve the overlay against the current graph into the net insert/remove sets.
        let mut to_insert: Vec<(Vertex, Vertex)> = Vec::new();
        let mut to_remove: Vec<(Vertex, Vertex)> = Vec::new();
        for (&(u, v), &present) in &overlay {
            match (present, self.graph.has_edge(u, v)) {
                (true, false) => to_insert.push((u, v)),
                (false, true) => to_remove.push((u, v)),
                _ => {}
            }
        }
        let new_graph = {
            let _patch = obs::phase("csr-patch");
            self.graph.patched(&to_insert, &to_remove)?
        };

        // The conflict frontier: endpoints of newly monochromatic edges.  Checking the new
        // edges (not the whole graph) is what makes small batches cheap; removals cannot
        // make a legal coloring illegal.
        let mut frontier: Vec<Vertex> = to_insert
            .iter()
            .filter(|&&(u, v)| self.coloring.color(u) == self.coloring.color(v))
            .flat_map(|&(u, v)| [u, v])
            .collect();
        frontier.sort_unstable();
        frontier.dedup();

        let escalate = match self.policy {
            RepairPolicy::Auto { frontier_threshold } => frontier.len() > frontier_threshold,
            RepairPolicy::AlwaysLocal => false,
            RepairPolicy::AlwaysFull => true,
        };
        let (repaired, strategy, report) = if frontier.is_empty() {
            self.graph = new_graph;
            (Vec::new(), RepairStrategy::NoConflict, RoundReport::zero())
        } else if escalate {
            let run = {
                let _full = obs::phase("full-recolor");
                ghaffari_kuhn_coloring(&new_graph)?
            };
            let repaired: Vec<Vertex> = self
                .coloring
                .colors()
                .iter()
                .zip(run.coloring.colors())
                .enumerate()
                .filter(|(_, (old, new))| old != new)
                .map(|(v, _)| v)
                .collect();
            self.graph = new_graph;
            self.coloring = run.coloring;
            (repaired, RepairStrategy::FullRecolor, run.report)
        } else {
            let _local = obs::phase("frontier-repair");
            let (repaired, report) = self.repair_frontier(&new_graph, &frontier)?;
            self.graph = new_graph;
            (repaired, RepairStrategy::LocalRepair, report)
        };
        span.charge(report);

        let mut outcome = BatchOutcome {
            submitted_edges,
            new_edges: to_insert.len(),
            removed_edges: to_remove.len(),
            frontier: frontier.len(),
            repaired,
            strategy,
            compaction: None,
            report,
        };

        if self.auto_compact
            && outcome.removed_edges > 0
            && self.coloring.max_color() as usize > self.graph.max_degree()
        {
            outcome.compaction = Some(self.compact());
        }

        // Independent post-condition: the maintained coloring is legal on the new graph.
        if !self.coloring.is_legal(&self.graph) {
            return Err(CoreError::InvariantViolated {
                reason: format!(
                    "repair left {} monochromatic edges",
                    self.coloring.conflicts(&self.graph).len()
                ),
            });
        }

        obs::incr_counter("dynamic.batches", 1);
        obs::incr_counter("dynamic.new_edges", outcome.new_edges as u64);
        obs::incr_counter("dynamic.removed_edges", outcome.removed_edges as u64);
        obs::incr_counter("dynamic.repaired", outcome.repaired.len() as u64);
        obs::observe_value("dynamic.frontier_per_batch", outcome.frontier as u64);
        Ok(outcome)
    }

    /// Re-tightens the palette after deletions freed slack: deterministic greedy sweeps
    /// in descending color order move every vertex to the smallest color its neighborhood
    /// permits (never a larger one) until a pass changes nothing, then a rank relabeling
    /// closes the remaining holes.  Idempotent: a second call is a no-op.
    ///
    /// Guarantees, unconditionally:
    ///
    /// * legality is preserved (each move avoids all current neighbor colors, and the
    ///   relabeling is injective);
    /// * no vertex's color increases, so the maximum color never grows;
    /// * after the sweep every vertex sits at a color ≤ its degree, so the palette ends
    ///   within `max_degree + 1` colors and is hole-free (`max_color == distinct - 1`).
    ///
    /// The sweep is centralized and executor-independent, so compaction is bit-identical
    /// across executors and replays by construction.
    pub fn compact(&mut self) -> CompactionDelta {
        let _span = obs::phase("compaction");
        let colors_before = self.coloring.distinct_colors();
        let initial = self.coloring.colors().to_vec();

        // Sweep to a fixpoint: descending current color, ties by ascending vertex index,
        // so the loosest vertices move first, into the slack the tight ones never
        // occupied.  Each improving pass strictly decreases the (integer) sum of colors,
        // so the loop terminates; in practice two or three passes suffice.
        let mut palette = PaletteSet::new(self.graph.max_degree() as u64 + 1);
        loop {
            let mut order: Vec<Vertex> = (0..self.graph.n()).collect();
            order.sort_unstable_by_key(|&v| (std::cmp::Reverse(self.coloring.color(v)), v));
            let mut moved = false;
            for &v in &order {
                palette.clear();
                for &u in self.graph.neighbors(v) {
                    palette.strike(self.coloring.color(u));
                }
                let free = palette
                    .first_unstruck()
                    .expect("deg(v) neighbors cannot strike all deg(v)+1 candidates");
                if free < self.coloring.color(v) {
                    self.coloring.set(v, free);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }

        // Close the holes: relabel each used color by its rank.  rank(c) ≤ c, so this is
        // still a per-vertex weak decrease, and injectivity preserves legality.
        let max = self.coloring.max_color() as usize;
        let mut used = vec![false; max + 1];
        for &c in self.coloring.colors() {
            used[c as usize] = true;
        }
        let mut rank = vec![0 as Color; max + 1];
        let mut next = 0 as Color;
        for (c, &in_use) in used.iter().enumerate() {
            rank[c] = next;
            if in_use {
                next += 1;
            }
        }
        let mut recolored = 0usize;
        for v in 0..self.graph.n() {
            let relabeled = rank[self.coloring.color(v) as usize];
            if relabeled != self.coloring.color(v) {
                self.coloring.set(v, relabeled);
            }
            if self.coloring.color(v) != initial[v] {
                recolored += 1;
            }
        }

        let delta = CompactionDelta {
            colors_before,
            colors_after: self.coloring.distinct_colors(),
            recolored,
        };
        obs::incr_counter("dynamic.compactions", 1);
        obs::incr_counter("dynamic.compaction_recolored", recolored as u64);
        delta
    }

    /// Validates one submitted edge against the current graph and returns it in canonical
    /// `u < v` order.
    fn validated_canonical(&self, u: Vertex, v: Vertex) -> Result<(Vertex, Vertex), CoreError> {
        let n = self.graph.n();
        if u >= n {
            return Err(arbcolor_graph::GraphError::VertexOutOfRange { vertex: u, n }.into());
        }
        if v >= n {
            return Err(arbcolor_graph::GraphError::VertexOutOfRange { vertex: v, n }.into());
        }
        if u == v {
            return Err(arbcolor_graph::GraphError::SelfLoop { vertex: u }.into());
        }
        Ok(if u < v { (u, v) } else { (v, u) })
    }

    /// Re-colors the induced subgraph on `frontier` with a list-coloring instance that is
    /// compatible with every non-frontier neighbor.  Returns the ascending list of
    /// vertices that changed color and the simulated cost.
    fn repair_frontier(
        &mut self,
        new_graph: &Graph,
        frontier: &[Vertex],
    ) -> Result<(Vec<Vertex>, RoundReport), CoreError> {
        let sub = InducedSubgraph::new(new_graph, frontier);
        let lists: Vec<Vec<Color>> = frontier
            .iter()
            .map(|&v| {
                // {0, …, deg(v)} minus the colors of v's neighbors outside the frontier.
                // At most deg(v) − deg_sub(v) removals hit the base list, so at least
                // deg_sub(v) + 1 colors survive: the instance always has greedy slack.
                let mut list: Vec<Color> = (0..=new_graph.degree(v) as Color).collect();
                let blocked: Vec<Color> = new_graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| sub.map.to_child(u).is_none())
                    .map(|&u| self.coloring.color(u))
                    .collect();
                list.retain(|c| !blocked.contains(c));
                list
            })
            .collect();
        let instance = ColorLists::new(&sub.graph, lists)?;
        let run = ghaffari_kuhn_list_coloring(&sub.graph, &instance)?;
        let mut repaired = Vec::new();
        for (child, &parent) in frontier.iter().enumerate() {
            let new_color = run.coloring.color(child);
            if self.coloring.color(parent) != new_color {
                self.coloring.set(parent, new_color);
                repaired.push(parent);
            }
        }
        Ok((repaired, run.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn no_conflict_batches_change_nothing() {
        let g = generators::cycle(8).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        let before = dynamic.coloring().clone();
        // Chords between vertices the cycle coloring already separates.
        let batch: Vec<(Vertex, Vertex)> = (0..4)
            .flat_map(|i| [(i, i + 3)])
            .filter(|&(u, v)| dynamic.coloring().color(u) != dynamic.coloring().color(v))
            .collect();
        assert!(!batch.is_empty());
        let outcome = dynamic.apply(&[GraphUpdate::InsertEdges(batch)]).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::NoConflict);
        assert_eq!(outcome.repaired_vertices(), 0);
        assert_eq!(dynamic.coloring(), &before);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn local_repair_touches_only_the_frontier() {
        let g = generators::union_of_random_forests(400, 3, 11).unwrap().with_shuffled_ids(5);
        let mut dynamic = DynamicColoring::new(g).unwrap();
        let before = dynamic.coloring().clone();
        // Force conflicts: connect same-colored vertices.
        let colors = dynamic.coloring().colors().to_vec();
        let mut batch = Vec::new();
        for v in 1..dynamic.graph().n() {
            if batch.len() >= 6 {
                break;
            }
            if colors[v] == colors[0] && !dynamic.graph().has_edge(0, v) {
                batch.push((0usize, v));
            }
        }
        assert!(!batch.is_empty(), "no same-colored pair found");
        let batch_len = batch.len();
        let outcome = dynamic.apply(&[GraphUpdate::InsertEdges(batch)]).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::LocalRepair);
        assert!(outcome.frontier <= 2 * batch_len);
        assert!(outcome.repaired_vertices() >= 1);
        assert!(outcome.repaired_vertices() <= outcome.frontier);
        // The repaired set is exactly the vertices whose color changed.
        let changed: Vec<Vertex> = dynamic
            .coloring()
            .colors()
            .iter()
            .zip(before.colors())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(v, _)| v)
            .collect();
        assert_eq!(outcome.repaired, changed);
        assert!(changed.len() <= outcome.frontier);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn the_auto_policy_escalates_oversized_frontiers() {
        let g = generators::path(40).unwrap();
        let mut dynamic = DynamicColoring::new(g)
            .unwrap()
            .with_repair_policy(RepairPolicy::Auto { frontier_threshold: 1 });
        let colors = dynamic.coloring().colors().to_vec();
        let mut batch = Vec::new();
        for u in 0..dynamic.graph().n() {
            for v in (u + 1)..dynamic.graph().n() {
                if colors[u] == colors[v] && !dynamic.graph().has_edge(u, v) && batch.len() < 4 {
                    batch.push((u, v));
                }
            }
        }
        assert!(batch.len() >= 2);
        let outcome = dynamic.apply(&[GraphUpdate::InsertEdges(batch)]).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::FullRecolor);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn explicit_policies_override_the_threshold() {
        let build_batch = |dynamic: &DynamicColoring| {
            let colors = dynamic.coloring().colors().to_vec();
            let mut batch = Vec::new();
            for u in 0..dynamic.graph().n() {
                for v in (u + 1)..dynamic.graph().n() {
                    if colors[u] == colors[v] && !dynamic.graph().has_edge(u, v) && batch.len() < 4
                    {
                        batch.push((u, v));
                    }
                }
            }
            batch
        };

        let g = generators::path(40).unwrap();
        let mut local =
            DynamicColoring::new(g.clone()).unwrap().with_repair_policy(RepairPolicy::AlwaysLocal);
        let batch = build_batch(&local);
        assert!(batch.len() >= 2);
        let outcome = local.apply(&[GraphUpdate::InsertEdges(batch)]).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::LocalRepair);
        assert!(local.coloring().is_legal(local.graph()));

        let mut full =
            DynamicColoring::new(g).unwrap().with_repair_policy(RepairPolicy::AlwaysFull);
        let batch = build_batch(&full);
        let outcome = full.apply(&[GraphUpdate::InsertEdges(batch)]).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::FullRecolor);
        assert!(full.coloring().is_legal(full.graph()));
    }

    #[test]
    fn removals_never_conflict_and_are_counted() {
        let g = generators::complete(6).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        let outcome =
            dynamic.apply(&[GraphUpdate::RemoveEdges(vec![(0, 1), (2, 3), (0, 1)])]).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::NoConflict);
        assert_eq!(outcome.submitted_edges, 3);
        assert_eq!(outcome.removed_edges, 2);
        assert_eq!(outcome.new_edges, 0);
        assert_eq!(dynamic.graph().m(), 13);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
        // Removing an absent edge is a no-op, not an error.
        let outcome = dynamic.apply(&[GraphUpdate::RemoveEdges(vec![(0, 1)])]).unwrap();
        assert_eq!(outcome.removed_edges, 0);
    }

    #[test]
    fn updates_resolve_in_order_with_last_write_wins() {
        let g = generators::cycle(6).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        let outcome = dynamic
            .apply(&[
                GraphUpdate::InsertEdges(vec![(0, 2)]),
                GraphUpdate::RemoveEdges(vec![(0, 2), (3, 4)]),
                GraphUpdate::InsertEdges(vec![(3, 4)]),
            ])
            .unwrap();
        // (0, 2) inserted then removed: net nothing.  (3, 4) removed then re-inserted:
        // net nothing.  The graph is unchanged.
        assert_eq!(outcome.new_edges, 0);
        assert_eq!(outcome.removed_edges, 0);
        assert_eq!(dynamic.graph().m(), 6);
        assert!(dynamic.graph().has_edge(3, 4));
        assert!(!dynamic.graph().has_edge(0, 2));
    }

    #[test]
    fn compaction_reclaims_slack_after_deletions() {
        // A clique forces 8 colors; deleting most of it leaves a sparse graph that needs
        // far fewer.
        let g = generators::complete(8).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        assert_eq!(dynamic.coloring().distinct_colors(), 8);
        let doomed: Vec<(Vertex, Vertex)> = dynamic
            .graph()
            .edges()
            .iter()
            .copied()
            .filter(|&(u, v)| v != u + 1) // keep the path 0-1-2-…-7
            .collect();
        dynamic.apply(&[GraphUpdate::RemoveEdges(doomed)]).unwrap();
        assert_eq!(dynamic.coloring().distinct_colors(), 8, "deletions alone free no colors");
        let delta = dynamic.compact();
        assert_eq!(delta.colors_before, 8);
        assert!(delta.colors_after <= dynamic.graph().max_degree() + 1);
        assert_eq!(delta.colors_after, dynamic.coloring().distinct_colors());
        // Hole-free palette: max color == distinct - 1.
        assert_eq!(dynamic.coloring().max_color() as usize + 1, delta.colors_after);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn compaction_never_increases_colors_or_any_vertex() {
        for seed in 0..4u64 {
            for (family, g) in arbcolor_graph::generators::seeded_suite(48, seed) {
                let mut dynamic = DynamicColoring::new(g).unwrap();
                // Delete every third edge to open slack, then compact repeatedly.
                let doomed: Vec<(Vertex, Vertex)> =
                    dynamic.graph().edges().iter().copied().step_by(3).collect();
                dynamic.apply(&[GraphUpdate::RemoveEdges(doomed)]).unwrap();
                let before_colors = dynamic.coloring().colors().to_vec();
                let before_distinct = dynamic.coloring().distinct_colors();
                let delta = dynamic.compact();
                assert!(
                    delta.colors_after <= before_distinct,
                    "distinct colors grew on {family} (seed {seed})"
                );
                assert!(
                    dynamic
                        .coloring()
                        .colors()
                        .iter()
                        .zip(&before_colors)
                        .all(|(after, before)| after <= before),
                    "a vertex color grew on {family} (seed {seed})"
                );
                assert!(delta.colors_after <= dynamic.graph().max_degree() + 1);
                assert!(dynamic.coloring().is_legal(dynamic.graph()));
                // Idempotence: a second sweep has nothing left to reclaim.
                let again = dynamic.compact();
                assert_eq!(again.colors_after, delta.colors_after);
            }
        }
    }

    #[test]
    fn auto_compact_rides_along_with_deletion_batches() {
        let g = generators::complete(8).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap().with_auto_compact(true);
        let doomed: Vec<(Vertex, Vertex)> =
            dynamic.graph().edges().iter().copied().filter(|&(u, v)| v != u + 1).collect();
        let outcome = dynamic.apply(&[GraphUpdate::RemoveEdges(doomed)]).unwrap();
        let delta = outcome.compaction.expect("deletions freed slack, so a sweep must run");
        assert!(delta.colors_after < delta.colors_before);
        assert!(dynamic.coloring().distinct_colors() <= dynamic.graph().max_degree() + 1);
        // Insert-only batches never auto-compact.
        let outcome = dynamic.apply(&[GraphUpdate::InsertEdges(vec![(0, 2)])]).unwrap();
        assert!(outcome.compaction.is_none());
    }

    #[test]
    fn invalid_batches_surface_typed_errors() {
        let g = generators::cycle(6).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        assert!(dynamic.apply(&[GraphUpdate::InsertEdges(vec![(0, 99)])]).is_err());
        assert!(dynamic.apply(&[GraphUpdate::InsertEdges(vec![(2, 2)])]).is_err());
        // Invalid removals are rejected up front too, even for absent edges.
        assert!(dynamic.apply(&[GraphUpdate::RemoveEdges(vec![(0, 99)])]).is_err());
        assert!(dynamic.apply(&[GraphUpdate::RemoveEdges(vec![(3, 3)])]).is_err());
        // The failed batches left the state untouched and legal.
        assert_eq!(dynamic.graph().n(), 6);
        assert_eq!(dynamic.graph().m(), 6);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn identifiers_survive_rebuilds() {
        let g = generators::cycle(10).unwrap().with_shuffled_ids(3);
        let ids = g.ids().to_vec();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        dynamic
            .apply(&[
                GraphUpdate::InsertEdges(vec![(0, 5)]),
                GraphUpdate::RemoveEdges(vec![(1, 2)]),
            ])
            .unwrap();
        assert_eq!(dynamic.graph().ids(), &ids[..]);
    }

    #[test]
    fn seeding_with_an_illegal_coloring_is_rejected() {
        let g = generators::cycle(4).unwrap();
        let illegal = Coloring::constant(&g);
        assert!(DynamicColoring::from_parts(g, illegal).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn the_deprecated_shims_forward_to_the_new_api() {
        let g = generators::cycle(8).unwrap();
        let mut via_shim = DynamicColoring::new(g.clone()).unwrap().with_frontier_threshold(2);
        assert_eq!(via_shim.repair_policy(), RepairPolicy::Auto { frontier_threshold: 2 });
        let mut via_apply = DynamicColoring::new(g)
            .unwrap()
            .with_repair_policy(RepairPolicy::Auto { frontier_threshold: 2 });
        let batch = [(0usize, 4usize), (1, 5)];
        let a = via_shim.insert_edges(&batch).unwrap();
        let b = via_apply.apply(&[GraphUpdate::InsertEdges(batch.to_vec())]).unwrap();
        assert_eq!(a, b);
        assert_eq!(via_shim.coloring(), via_apply.coloring());
    }
}
