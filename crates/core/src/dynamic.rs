//! Dynamic graphs: batched edge insertions with localized recoloring.
//!
//! A production coloring service rarely gets to re-color the world on every topology
//! change.  [`DynamicColoring`] maintains a legal `(deg+1)`-bounded coloring across batches
//! of edge insertions by repairing only the **conflict frontier** — the vertices incident
//! to a newly monochromatic edge:
//!
//! 1. the CSR graph is rebuilt with the batch applied (identifiers are preserved, so the
//!    LOCAL model's view of every untouched vertex is unchanged);
//! 2. the frontier is collected by checking exactly the inserted edges;
//! 3. if the frontier is small, the induced subgraph on the frontier is re-colored with the
//!    Ghaffari–Kuhn `(deg+1)`-list driver under
//!    [`run_algorithm`](arbcolor_runtime::run_algorithm), where each frontier
//!    vertex lists `{0, …, deg(v)}` minus the colors held by its non-frontier neighbors —
//!    the list sizes stay ≥ subgraph-degree + 1, so the instance always has greedy slack,
//!    and any solution is legal against both repaired and untouched neighbors;
//! 4. if the frontier exceeds the configured threshold, the driver falls back to a full
//!    re-coloring of the new graph (the localized instance would contend with most of the
//!    graph anyway);
//! 5. legality of the *entire* coloring is independently re-verified after every batch.
//!
//! Every step is deterministic and runs on whatever executor the process-wide
//! [`ExecutorKind`](arbcolor_runtime::ExecutorKind) switch selects, so repair sequences are
//! bit-identical across the sequential, sharded, and reference simulators — experiment E20
//! asserts exactly that.
//!
//! ```
//! use arbcolor::dynamic::DynamicColoring;
//! use arbcolor_graph::Graph;
//!
//! # fn main() -> Result<(), arbcolor::CoreError> {
//! let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)])?;
//! let mut dynamic = DynamicColoring::new(g)?;
//! let batch = dynamic.insert_edges(&[(3, 4), (0, 4)])?;
//! assert!(batch.repaired_vertices <= dynamic.graph().n());
//! assert!(dynamic.coloring().is_legal(dynamic.graph()));
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::ghaffari_kuhn::{ghaffari_kuhn_coloring, ghaffari_kuhn_list_coloring};
use crate::list_coloring::ColorLists;
use arbcolor_graph::{Color, Coloring, Graph, GraphBuilder, InducedSubgraph, Vertex};
use arbcolor_runtime::RoundReport;

/// How a batch of insertions was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// No inserted edge was monochromatic; the old coloring is still legal.
    NoConflict,
    /// Only the conflict frontier was re-colored (list coloring on the induced subgraph).
    LocalRepair,
    /// The frontier exceeded the threshold; the whole graph was re-colored.
    FullRecolor,
}

/// Per-batch summary returned by [`DynamicColoring::insert_edges`].
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Edges submitted in the batch (before de-duplication).
    pub inserted_edges: usize,
    /// Edges of the batch that were genuinely new to the graph.
    pub new_edges: usize,
    /// Vertices on the conflict frontier (incident to a newly monochromatic edge).
    pub frontier: usize,
    /// Vertices whose color actually changed.
    pub repaired_vertices: usize,
    /// The strategy the driver chose.
    pub strategy: RepairStrategy,
    /// Simulated LOCAL cost of the repair (zero for [`RepairStrategy::NoConflict`]).
    pub report: RoundReport,
}

/// A legal coloring maintained across batched edge insertions.
#[derive(Debug, Clone)]
pub struct DynamicColoring {
    graph: Graph,
    coloring: Coloring,
    /// Frontiers larger than this fall back to a full re-coloring.
    frontier_threshold: usize,
}

impl DynamicColoring {
    /// The default frontier threshold, as a fraction of `n`: above `n/4` frontier vertices
    /// the localized instance saves little over a full re-coloring.
    pub fn default_threshold(n: usize) -> usize {
        (n / 4).max(8)
    }

    /// Colors `graph` from scratch (Ghaffari–Kuhn `(deg+1)`-list coloring) and starts
    /// maintaining it.
    ///
    /// # Errors
    ///
    /// Propagates the initial coloring's errors.
    pub fn new(graph: Graph) -> Result<Self, CoreError> {
        let run = ghaffari_kuhn_coloring(&graph)?;
        Self::from_parts(graph, run.coloring)
    }

    /// Starts maintaining an existing coloring (e.g. one loaded alongside an ingested
    /// dataset).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvariantViolated`] if `coloring` is not legal on `graph`.
    pub fn from_parts(graph: Graph, coloring: Coloring) -> Result<Self, CoreError> {
        if !coloring.is_legal(&graph) {
            return Err(CoreError::InvariantViolated {
                reason: "dynamic driver seeded with an illegal coloring".to_string(),
            });
        }
        let threshold = Self::default_threshold(graph.n());
        Ok(DynamicColoring { graph, coloring, frontier_threshold: threshold })
    }

    /// Overrides the frontier threshold above which a batch triggers a full re-coloring.
    #[must_use]
    pub fn with_frontier_threshold(mut self, threshold: usize) -> Self {
        self.frontier_threshold = threshold;
        self
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The maintained coloring (always legal on [`DynamicColoring::graph`]).
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// Applies one batch of edge insertions and repairs the coloring.
    ///
    /// # Errors
    ///
    /// Returns the graph layer's typed errors for invalid edges (out-of-range endpoints,
    /// self-loops), propagates the repair coloring's errors, and returns
    /// [`CoreError::InvariantViolated`] if the post-repair legality check fails (a driver
    /// bug by construction).
    pub fn insert_edges(&mut self, edges: &[(Vertex, Vertex)]) -> Result<BatchOutcome, CoreError> {
        // Rebuild the CSR with the batch applied, keeping identifiers stable.
        let mut builder = GraphBuilder::new(self.graph.n());
        builder.add_edges(self.graph.edges().iter().copied())?;
        let old_m = self.graph.m();
        builder.add_edges(edges.iter().copied())?;
        let new_graph = builder.build().with_vertex_ids(self.graph.ids().to_vec())?;
        let new_edges = new_graph.m() - old_m;

        // The conflict frontier: endpoints of newly monochromatic edges.  Checking the
        // batch (not the whole graph) is what makes small batches cheap.
        let mut frontier: Vec<Vertex> = edges
            .iter()
            .filter(|&&(u, v)| u != v && self.coloring.color(u) == self.coloring.color(v))
            .flat_map(|&(u, v)| [u, v])
            .collect();
        frontier.sort_unstable();
        frontier.dedup();

        let outcome = if frontier.is_empty() {
            self.graph = new_graph;
            BatchOutcome {
                inserted_edges: edges.len(),
                new_edges,
                frontier: 0,
                repaired_vertices: 0,
                strategy: RepairStrategy::NoConflict,
                report: RoundReport::zero(),
            }
        } else if frontier.len() > self.frontier_threshold {
            let run = ghaffari_kuhn_coloring(&new_graph)?;
            let repaired = self
                .coloring
                .colors()
                .iter()
                .zip(run.coloring.colors())
                .filter(|(old, new)| old != new)
                .count();
            self.graph = new_graph;
            self.coloring = run.coloring;
            BatchOutcome {
                inserted_edges: edges.len(),
                new_edges,
                frontier: frontier.len(),
                repaired_vertices: repaired,
                strategy: RepairStrategy::FullRecolor,
                report: run.report,
            }
        } else {
            let (repaired, report) = self.repair_frontier(&new_graph, &frontier)?;
            self.graph = new_graph;
            BatchOutcome {
                inserted_edges: edges.len(),
                new_edges,
                frontier: frontier.len(),
                repaired_vertices: repaired,
                strategy: RepairStrategy::LocalRepair,
                report,
            }
        };

        // Independent post-condition: the maintained coloring is legal on the new graph.
        if !self.coloring.is_legal(&self.graph) {
            return Err(CoreError::InvariantViolated {
                reason: format!(
                    "repair left {} monochromatic edges",
                    self.coloring.conflicts(&self.graph).len()
                ),
            });
        }
        Ok(outcome)
    }

    /// Re-colors the induced subgraph on `frontier` with a list-coloring instance that is
    /// compatible with every non-frontier neighbor.  Returns how many vertices changed
    /// color and the simulated cost.
    fn repair_frontier(
        &mut self,
        new_graph: &Graph,
        frontier: &[Vertex],
    ) -> Result<(usize, RoundReport), CoreError> {
        let sub = InducedSubgraph::new(new_graph, frontier);
        let lists: Vec<Vec<Color>> = frontier
            .iter()
            .map(|&v| {
                // {0, …, deg(v)} minus the colors of v's neighbors outside the frontier.
                // At most deg(v) − deg_sub(v) removals hit the base list, so at least
                // deg_sub(v) + 1 colors survive: the instance always has greedy slack.
                let mut list: Vec<Color> = (0..=new_graph.degree(v) as Color).collect();
                let blocked: Vec<Color> = new_graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| sub.map.to_child(u).is_none())
                    .map(|&u| self.coloring.color(u))
                    .collect();
                list.retain(|c| !blocked.contains(c));
                list
            })
            .collect();
        let instance = ColorLists::new(&sub.graph, lists)?;
        let run = ghaffari_kuhn_list_coloring(&sub.graph, &instance)?;
        let mut repaired = 0usize;
        for (child, &parent) in frontier.iter().enumerate() {
            let new_color = run.coloring.color(child);
            if self.coloring.color(parent) != new_color {
                self.coloring.set(parent, new_color);
                repaired += 1;
            }
        }
        Ok((repaired, run.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn no_conflict_batches_change_nothing() {
        let g = generators::cycle(8).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        let before = dynamic.coloring().clone();
        // Chords between vertices the cycle coloring already separates.
        let batch: Vec<(Vertex, Vertex)> = (0..4)
            .flat_map(|i| [(i, i + 3)])
            .filter(|&(u, v)| dynamic.coloring().color(u) != dynamic.coloring().color(v))
            .collect();
        assert!(!batch.is_empty());
        let outcome = dynamic.insert_edges(&batch).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::NoConflict);
        assert_eq!(outcome.repaired_vertices, 0);
        assert_eq!(dynamic.coloring(), &before);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn local_repair_touches_only_the_frontier() {
        let g = generators::union_of_random_forests(400, 3, 11).unwrap().with_shuffled_ids(5);
        let mut dynamic = DynamicColoring::new(g).unwrap();
        let before = dynamic.coloring().clone();
        // Force conflicts: connect same-colored vertices.
        let colors = dynamic.coloring().colors().to_vec();
        let mut batch = Vec::new();
        for v in 1..dynamic.graph().n() {
            if batch.len() >= 6 {
                break;
            }
            if colors[v] == colors[0] && !dynamic.graph().has_edge(0, v) {
                batch.push((0usize, v));
            }
        }
        assert!(!batch.is_empty(), "no same-colored pair found");
        let outcome = dynamic.insert_edges(&batch).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::LocalRepair);
        assert!(outcome.frontier <= 2 * batch.len());
        assert!(outcome.repaired_vertices >= 1);
        assert!(outcome.repaired_vertices <= outcome.frontier);
        // Non-frontier vertices kept their colors.
        let unchanged =
            dynamic.coloring().colors().iter().zip(before.colors()).filter(|(a, b)| a == b).count();
        assert!(unchanged >= dynamic.graph().n() - outcome.frontier);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn oversized_frontiers_fall_back_to_full_recolor() {
        let g = generators::path(40).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap().with_frontier_threshold(1);
        let colors = dynamic.coloring().colors().to_vec();
        let mut batch = Vec::new();
        for u in 0..dynamic.graph().n() {
            for v in (u + 1)..dynamic.graph().n() {
                if colors[u] == colors[v] && !dynamic.graph().has_edge(u, v) && batch.len() < 4 {
                    batch.push((u, v));
                }
            }
        }
        assert!(batch.len() >= 2);
        let outcome = dynamic.insert_edges(&batch).unwrap();
        assert_eq!(outcome.strategy, RepairStrategy::FullRecolor);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn invalid_batches_surface_typed_errors() {
        let g = generators::cycle(6).unwrap();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        assert!(dynamic.insert_edges(&[(0, 99)]).is_err());
        assert!(dynamic.insert_edges(&[(2, 2)]).is_err());
        // The failed batches left the state untouched and legal.
        assert_eq!(dynamic.graph().n(), 6);
        assert!(dynamic.coloring().is_legal(dynamic.graph()));
    }

    #[test]
    fn identifiers_survive_rebuilds() {
        let g = generators::cycle(10).unwrap().with_shuffled_ids(3);
        let ids = g.ids().to_vec();
        let mut dynamic = DynamicColoring::new(g).unwrap();
        dynamic.insert_edges(&[(0, 5)]).unwrap();
        assert_eq!(dynamic.graph().ids(), &ids[..]);
    }

    #[test]
    fn seeding_with_an_illegal_coloring_is_rejected() {
        let g = generators::cycle(4).unwrap();
        let illegal = Coloring::constant(&g);
        assert!(DynamicColoring::from_parts(g, illegal).is_err());
    }
}
