//! Procedure **Arbdefective-Coloring** (Section 3, Corollary 3.6).
//!
//! The composition of Procedure Partial-Orientation and Procedure Simple-Arbdefective: invoked
//! on a graph of arboricity ≤ `a` with integer parameters `k` and `t`, it produces a
//! `⌊a/t + (2+ε)·a/k⌋`-arbdefective `k`-coloring in `O(t² log n)` rounds.  Viewing the color
//! classes as subgraphs, this is a decomposition of the graph into `k` subgraphs of arboricity
//! `O(a/t + a/k)` each — the refinement step that Procedure Legal-Coloring iterates.

use crate::error::CoreError;
use crate::orientation_procs::{partial_orientation, OrientedGraph};
use crate::simple_arbdefective::{simple_arbdefective, ArbdefectiveColoring};
use arbcolor_graph::Graph;
use arbcolor_runtime::CostLedger;

/// Output of Procedure Arbdefective-Coloring.
#[derive(Debug, Clone)]
pub struct ArbdefectiveDecomposition {
    /// The arbdefective coloring (with witnesses) produced by the DAG sweep.
    pub coloring: ArbdefectiveColoring,
    /// The partial orientation it was computed from.
    pub oriented: OrientedGraph,
    /// Per-phase LOCAL cost of the whole procedure.
    pub ledger: CostLedger,
}

impl ArbdefectiveDecomposition {
    /// The guaranteed arbdefect bound `⌊a/t⌋ + ⌊(2+ε)a / k⌋`.
    pub fn arbdefect_bound(&self) -> usize {
        self.coloring.arbdefect_bound
    }
}

/// Runs Procedure Arbdefective-Coloring (Corollary 3.6) with parameters `k` and `t`.
///
/// `arboricity` must be an upper bound on the arboricity of `graph`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `k = 0` or `t = 0`; propagates substrate errors
/// (in particular an under-estimated arboricity bound surfaces as an H-partition error).
///
/// # Examples
///
/// ```
/// use arbcolor_graph::generators;
/// use arbcolor::arbdefective_coloring::arbdefective_coloring;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::union_of_random_forests(300, 4, 1)?.with_shuffled_ids(2);
/// let out = arbdefective_coloring(&g, 4, 2, 2, 1.0)?;
/// assert!(out.coloring.coloring.max_color() < 2); // k = 2 colors
/// assert!(out.arbdefect_bound() <= 4 / 2 + (3 * 4) / 2);
/// # Ok(())
/// # }
/// ```
pub fn arbdefective_coloring(
    graph: &Graph,
    arboricity: usize,
    k: u64,
    t: usize,
    epsilon: f64,
) -> Result<ArbdefectiveDecomposition, CoreError> {
    if k == 0 || t == 0 {
        return Err(CoreError::InvalidParameter {
            reason: format!("k and t must be positive (got k = {k}, t = {t})"),
        });
    }
    let oriented = partial_orientation(graph, arboricity, t, epsilon)?;
    let mut ledger = CostLedger::new();
    ledger.extend(&oriented.ledger);
    let coloring = simple_arbdefective(
        graph,
        &oriented.orientation,
        k,
        oriented.out_degree_bound,
        oriented.deficit_bound,
    )?;
    ledger.push("simple-arbdefective-sweep", coloring.report);
    Ok(ArbdefectiveDecomposition { coloring, oriented, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn corollary_3_6_bounds_hold() {
        let a = 4usize;
        let g = generators::union_of_random_forests(350, a, 5).unwrap().with_shuffled_ids(3);
        for (k, t) in [(2u64, 2usize), (3, 3), (4, 2), (2, 4)] {
            let out = arbdefective_coloring(&g, a, k, t, 1.0).unwrap();
            let claimed = a / t + out.oriented.out_degree_bound / k as usize;
            assert_eq!(out.arbdefect_bound(), claimed);
            // The witnesses certify the bound.
            let worst = out.coloring.verify(&g).unwrap();
            assert!(worst <= claimed);
            // k colors are used.
            assert!(out.coloring.coloring.max_color() < k);
        }
    }

    #[test]
    fn decomposition_view_every_class_has_smaller_degeneracy() {
        let a = 6usize;
        let g = generators::union_of_random_forests(300, a, 7).unwrap().with_shuffled_ids(4);
        let out = arbdefective_coloring(&g, a, 3, 3, 1.0).unwrap();
        // Each color class has arboricity ≤ bound, hence degeneracy ≤ 2·bound.
        let bound = out.arbdefect_bound();
        assert!(out.coloring.coloring.max_class_degeneracy(&g) <= 2 * bound);
        assert!(bound < 3 * a, "the decomposition must make progress (bound {bound} vs a = {a})");
    }

    #[test]
    fn invalid_parameters() {
        let g = generators::path(6).unwrap();
        assert!(arbdefective_coloring(&g, 1, 0, 1, 1.0).is_err());
        assert!(arbdefective_coloring(&g, 1, 1, 0, 1.0).is_err());
    }

    #[test]
    fn rounds_scale_with_t_squared_log_n_not_with_a_log_n() {
        // With t = k = 2 on a graph of larger arboricity the procedure must still finish in
        // rounds proportional to the (small) bucket palette times log n.
        let g = generators::gnp(500, 0.04, 11).unwrap().with_shuffled_ids(12);
        let a = arbcolor_graph::degeneracy::degeneracy(&g);
        let out = arbdefective_coloring(&g, a, 2, 2, 1.0).unwrap();
        let rounds = out.ledger.total().rounds;
        let structural =
            (out.oriented.bucket_palette_bound + 2) * (out.oriented.partition.num_buckets + 2) + 64;
        assert!(rounds <= structural, "rounds {rounds} exceed structural bound {structural}");
    }
}
