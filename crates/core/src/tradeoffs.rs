//! Trading colors for time (Section 5, Theorems 5.2 and 5.3).
//!
//! Both trade-offs first split the graph with Algorithm Arb-Kuhn into subgraphs of small
//! arboricity and then color all subgraphs **in parallel** with the Section 4 machinery, using
//! disjoint palettes:
//!
//! * Theorem 5.2 ([`sub_quadratic_coloring`]): splitting with arbdefect `g = g(a)` gives
//!   `O((a/g)²)` subgraphs of arboricity ≤ `g`; coloring each with `O(g^{1+η})` colors yields
//!   an `O(a²/g^{1−η})`-coloring in `O(log g · log n)` rounds.
//! * Theorem 5.3 ([`color_time_tradeoff`]): splitting with arbdefect `⌊a/t⌋` gives `O(t²)`
//!   subgraphs of arboricity `O(a/t)`; coloring each with `O(a/t)` colors (Theorem 4.3) yields
//!   an `O(a·t)`-coloring in `O((a/t)^µ · log n)` rounds.

use crate::arb_kuhn::arb_kuhn_coloring;
use crate::error::CoreError;
use crate::legal_coloring::{a_power_coloring, o_a_coloring, APowerParams, OaParams};
use crate::report::ColoringRun;
use arbcolor_graph::{Coloring, Graph};
use arbcolor_runtime::CostLedger;

/// Shared driver: split with Arb-Kuhn at arbdefect `split`, color every class in parallel with
/// `color_class`, then merge the class colorings with disjoint palettes of uniform size (the
/// largest class palette actually needed).
fn split_then_color<F>(
    graph: &Graph,
    arboricity: usize,
    split: usize,
    epsilon: f64,
    mut color_class: F,
) -> Result<ColoringRun, CoreError>
where
    F: FnMut(&Graph, usize) -> Result<ColoringRun, CoreError>,
{
    let mut ledger = CostLedger::new();
    let decomposition = arb_kuhn_coloring(graph, arboricity, split, epsilon)?;
    ledger.extend(&decomposition.ledger);
    let class_bound = decomposition.arbdefect_bound.max(1);

    let classes = decomposition.coloring.class_subgraphs(graph);
    let mut class_slots: Vec<u64> = classes.keys().copied().collect();
    class_slots.sort_unstable();

    // Color all classes (conceptually in parallel), remembering each class's inner coloring.
    let mut branch_reports = Vec::new();
    let mut inner_colorings = Vec::new();
    let mut class_palette = 1u64;
    for class_color in &class_slots {
        let sub = &classes[class_color];
        if sub.graph.n() == 0 {
            inner_colorings.push(None);
            continue;
        }
        let inner = color_class(&sub.graph, class_bound)?;
        class_palette = class_palette.max(inner.coloring.max_color() + 1);
        branch_reports.push(inner.report);
        inner_colorings.push(Some(inner));
    }
    ledger.push_parallel("class-coloring", &branch_reports);

    // Merge with disjoint palettes.
    let mut colors = vec![0u64; graph.n()];
    for (slot, class_color) in class_slots.iter().enumerate() {
        let Some(inner) = &inner_colorings[slot] else { continue };
        let sub = &classes[class_color];
        for child in 0..sub.graph.n() {
            colors[sub.map.to_parent(child)] =
                slot as u64 * class_palette + inner.coloring.color(child);
        }
    }

    let coloring = Coloring::new(graph, colors)?;
    if !coloring.is_legal(graph) {
        return Err(CoreError::InvariantViolated {
            reason: "trade-off coloring produced a monochromatic edge".to_string(),
        });
    }
    let palette_bound = class_slots.len() as u64 * class_palette;
    Ok(ColoringRun::new(coloring, palette_bound, ledger))
}

/// Theorem 5.2: an `O(a²/g)`-style coloring in `O(log g · log n)` rounds, where `split_g` is
/// the value `g(a)` of the chosen slowly-growing function.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `split_g == 0`; propagates substrate errors.
pub fn sub_quadratic_coloring(
    graph: &Graph,
    arboricity: usize,
    split_g: usize,
    eta: f64,
    epsilon: f64,
) -> Result<ColoringRun, CoreError> {
    if split_g == 0 {
        return Err(CoreError::InvalidParameter { reason: "g(a) must be positive".to_string() });
    }
    split_then_color(graph, arboricity, split_g, epsilon, |class, bound| {
        a_power_coloring(class, bound, APowerParams { eta, epsilon })
    })
}

/// Theorem 5.3: an `O(a·t)`-coloring in `O((a/t)^µ · log n)` rounds.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `t == 0` or `t > arboricity`; propagates
/// substrate errors.
pub fn color_time_tradeoff(
    graph: &Graph,
    arboricity: usize,
    t: usize,
    mu: f64,
    epsilon: f64,
) -> Result<ColoringRun, CoreError> {
    if t == 0 || t > arboricity.max(1) {
        return Err(CoreError::InvalidParameter {
            reason: format!("t must satisfy 1 ≤ t ≤ a (got t = {t}, a = {arboricity})"),
        });
    }
    let split = (arboricity / t).max(1);
    split_then_color(graph, arboricity, split, epsilon, |class, bound| {
        o_a_coloring(class, bound, OaParams { mu, epsilon })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn sub_quadratic_coloring_is_legal_and_beats_a_squared() {
        let a = 8usize;
        let g = generators::union_of_random_forests(700, a, 3).unwrap().with_shuffled_ids(4);
        let run = sub_quadratic_coloring(&g, a, 2, 1.0, 1.0).unwrap();
        assert!(run.coloring.is_legal(&g));
        // The whole point: strictly fewer than the Linial-style a² ⋅ constant colors.  Use the
        // generous threshold 9·(3a)² that Linial's palette would occupy for this graph.
        let linial_like = 9 * (3 * a) * (3 * a);
        assert!(
            run.colors_used < linial_like,
            "{} colors should be below the quadratic regime {linial_like}",
            run.colors_used
        );
    }

    #[test]
    fn color_time_tradeoff_is_legal_across_t() {
        let a = 6usize;
        let g = generators::union_of_random_forests(500, a, 13).unwrap().with_shuffled_ids(5);
        for t in [1usize, 2, 3, 6] {
            let run = color_time_tradeoff(&g, a, t, 0.5, 1.0).unwrap();
            assert!(run.coloring.is_legal(&g), "t = {t}");
            assert!(run.colors_used as u64 <= run.palette_bound);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let g = generators::path(8).unwrap();
        assert!(sub_quadratic_coloring(&g, 1, 0, 1.0, 1.0).is_err());
        assert!(color_time_tradeoff(&g, 2, 0, 0.5, 1.0).is_err());
        assert!(color_time_tradeoff(&g, 2, 5, 0.5, 1.0).is_err());
    }

    #[test]
    fn larger_t_means_more_colors_but_smaller_class_work() {
        let a = 8usize;
        let g = generators::union_of_random_forests(600, a, 29).unwrap().with_shuffled_ids(7);
        let fine = color_time_tradeoff(&g, a, 1, 0.5, 1.0).unwrap();
        let coarse = color_time_tradeoff(&g, a, a, 0.5, 1.0).unwrap();
        assert!(fine.coloring.is_legal(&g));
        assert!(coarse.coloring.is_legal(&g));
        assert!(fine.colors_used as u64 <= fine.palette_bound);
        assert!(coarse.colors_used as u64 <= coarse.palette_bound);
    }
}
