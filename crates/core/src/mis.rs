//! Maximal independent set via coloring (Section 1.2).
//!
//! Linial's classical reduction: given a legal `k`-coloring, sweep the color classes in order;
//! a vertex joins the MIS when its class comes up and none of its neighbors has joined yet.
//! Each class costs one round, so the total is `k` rounds on top of the coloring.  Combining
//! the sweep with the `O(a)`-coloring of Theorem 4.3 reproduces the paper's MIS bound:
//! `O(a + a^µ log n)` rounds on graphs of arboricity `a`.

use crate::error::CoreError;
use crate::legal_coloring::{o_a_coloring, OaParams};
use arbcolor_graph::{Coloring, Graph};
use arbcolor_runtime::{run_algorithm, Algorithm, CostLedger, Inbox, NodeCtx, Outbox, Status};

/// The class-sweep MIS algorithm (node-program factory).
#[derive(Debug, Clone)]
pub struct MisSweep<'a> {
    /// The slot (normalized color) of every vertex.
    slots: &'a [u64],
}

/// Node program of [`MisSweep`].
#[derive(Debug, Clone)]
pub struct MisSweepNode {
    slot: u64,
    round: u64,
    blocked: bool,
    in_mis: bool,
}

impl arbcolor_runtime::node::NodeProgram for MisSweepNode {
    type Msg = ();
    type Output = bool;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<()>) -> Status {
        self.round = 0;
        if self.slot == 0 {
            self.in_mis = true;
            outbox.broadcast(());
            Status::Halted
        } else {
            // Counts rounds until its slot comes up, so it must be stepped every round,
            // mail or not: self-schedule while active.
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, ()>, outbox: &mut Outbox<()>) -> Status {
        self.round += 1;
        if !inbox.is_empty() {
            self.blocked = true;
        }
        if self.round == self.slot {
            if !self.blocked {
                self.in_mis = true;
                outbox.broadcast(());
            }
            Status::Halted
        } else {
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> bool {
        self.in_mis
    }
}

impl Algorithm for MisSweep<'_> {
    type Node = MisSweepNode;

    fn node(&self, ctx: &NodeCtx) -> MisSweepNode {
        MisSweepNode { slot: self.slots[ctx.vertex], round: 0, blocked: false, in_mis: false }
    }

    fn name(&self) -> &'static str {
        "mis-class-sweep"
    }
}

/// The result of an MIS computation.
#[derive(Debug, Clone)]
pub struct MisResult {
    /// Membership flags, indexed by vertex.
    pub in_mis: Vec<bool>,
    /// Size of the independent set.
    pub size: usize,
    /// Per-phase LOCAL cost (coloring phases plus the class sweep).
    pub ledger: CostLedger,
}

impl MisResult {
    /// Checks independence and maximality against `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvariantViolated`] describing the first violation found.
    pub fn verify(&self, graph: &Graph) -> Result<(), CoreError> {
        for &(u, v) in graph.edges() {
            if self.in_mis[u] && self.in_mis[v] {
                return Err(CoreError::InvariantViolated {
                    reason: format!("vertices {u} and {v} are adjacent and both in the MIS"),
                });
            }
        }
        for v in graph.vertices() {
            if !self.in_mis[v] && !graph.neighbors(v).iter().any(|&u| self.in_mis[u]) {
                return Err(CoreError::InvariantViolated {
                    reason: format!("vertex {v} is not in the MIS and has no MIS neighbor"),
                });
            }
        }
        Ok(())
    }
}

/// Computes an MIS from an existing legal coloring by sweeping the color classes.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the coloring is not legal; propagates runtime
/// errors.
pub fn mis_from_coloring(graph: &Graph, coloring: &Coloring) -> Result<MisResult, CoreError> {
    if !coloring.is_legal(graph) {
        return Err(CoreError::InvalidParameter {
            reason: "the MIS class sweep requires a legal coloring".to_string(),
        });
    }
    let (normalized, _) = coloring.normalized();
    let slots: Vec<u64> = normalized.colors().to_vec();
    let algorithm = MisSweep { slots: &slots };
    let result = run_algorithm(graph, &algorithm)?;
    let in_mis = result.outputs;
    let size = in_mis.iter().filter(|&&b| b).count();
    let mut ledger = CostLedger::new();
    ledger.push("mis-class-sweep", result.report);
    let mis = MisResult { in_mis, size, ledger };
    mis.verify(graph)?;
    Ok(mis)
}

/// The paper's MIS result (§1.2): an MIS in `O(a + a^µ log n)` rounds on graphs of arboricity
/// at most `a`, obtained by combining the `O(a)`-coloring of Theorem 4.3 with the class sweep.
///
/// # Errors
///
/// Propagates coloring and runtime errors.
pub fn mis_bounded_arboricity(
    graph: &Graph,
    arboricity: usize,
    mu: f64,
    epsilon: f64,
) -> Result<MisResult, CoreError> {
    let coloring_run = o_a_coloring(graph, arboricity, OaParams { mu, epsilon })?;
    let mut mis = mis_from_coloring(graph, &coloring_run.coloring)?;
    let mut ledger = CostLedger::new();
    ledger.extend(&coloring_run.ledger);
    ledger.extend(&mis.ledger);
    mis.ledger = ledger;
    Ok(mis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn mis_from_two_coloring_of_a_path() {
        let g = generators::path(10).unwrap();
        let coloring = Coloring::new(&g, (0..10).map(|v| (v % 2) as u64).collect()).unwrap();
        let mis = mis_from_coloring(&g, &coloring).unwrap();
        mis.verify(&g).unwrap();
        assert_eq!(mis.size, 5, "even vertices form the MIS when swept first");
    }

    #[test]
    fn mis_requires_a_legal_coloring() {
        let g = generators::cycle(4).unwrap();
        let bad = Coloring::constant(&g);
        assert!(matches!(mis_from_coloring(&g, &bad), Err(CoreError::InvalidParameter { .. })));
    }

    #[test]
    fn mis_on_bounded_arboricity_graphs() {
        for (a, n) in [(2usize, 300usize), (4, 500)] {
            let g = generators::union_of_random_forests(n, a, 7).unwrap().with_shuffled_ids(3);
            let mis = mis_bounded_arboricity(&g, a, 0.5, 1.0).unwrap();
            mis.verify(&g).unwrap();
            assert!(mis.size > 0);
            // Rounds are O(colors + a^µ log n); sanity-check against a generous bound.
            let logn = (g.n() as f64).log2().ceil() as usize;
            assert!(
                mis.ledger.total().rounds <= 500 * logn,
                "rounds {} look unbounded",
                mis.ledger.total().rounds
            );
        }
    }

    #[test]
    fn mis_on_star_has_hub_or_all_leaves() {
        let g = generators::star(50).unwrap().with_shuffled_ids(5);
        let coloring =
            Coloring::new(&g, (0..50).map(|v| if v == 0 { 0u64 } else { 1 }).collect()).unwrap();
        let mis = mis_from_coloring(&g, &coloring).unwrap();
        mis.verify(&g).unwrap();
        assert!(mis.in_mis[0]);
        assert_eq!(mis.size, 1);
    }

    #[test]
    fn empty_graph_mis_is_everything() {
        let g = arbcolor_graph::Graph::empty(6);
        let coloring = Coloring::constant(&g);
        let mis = mis_from_coloring(&g, &coloring).unwrap();
        assert_eq!(mis.size, 6);
    }
}
