//! Procedure **Legal-Coloring** (Algorithm 2) and the parameter selections of Section 4.
//!
//! The driver maintains a partition of the input graph into vertex-disjoint subgraphs, all
//! with the same arboricity bound `α` (initially the whole graph with `α = a`).  While
//! `α > p`, Procedure Arbdefective-Coloring with `k = t = p` is invoked **in parallel** on
//! every subgraph, refining each into `p` subgraphs of arboricity at most
//! `⌊α/p⌋ + ⌊(2+ε)α/p⌋`; after the loop every subgraph has arboricity ≤ `p` and is legally
//! colored with `⌊(2+ε)α⌋ + 1` colors using its own palette (Lemma 2.2(1)).  The disjoint
//! palettes make the union a legal coloring of the original graph.
//!
//! Parameter selections reproduced here:
//!
//! | Entry point | Paper statement | Colors | Rounds |
//! |---|---|---|---|
//! | [`one_shot_coloring`] | Lemma 4.1 | `O(a)` | `O(a^{2/3} log n)` |
//! | [`o_a_coloring`] | Theorem 4.3 / Corollary 4.4 | `O(a)` | `O(a^µ log n)` |
//! | [`a_power_coloring`] | Corollary 4.6 | `O(a^{1+η})` | `O(log a · log n)` |
//! | [`a_one_plus_o1_coloring`] | Theorem 4.5 | `a^{1+o(1)}` | `O(f(a) log a log n)` |
//! | [`sparse_delta_plus_one`] | Corollary 4.7 | `≤ Δ + 1` when `a ≤ Δ^{1−ν}` | `O(log a · log n)` |

use crate::arbdefective_coloring::arbdefective_coloring;
use crate::error::CoreError;
use crate::report::ColoringRun;
use arbcolor_decompose::arb_linear::arboricity_linear_coloring;
use arbcolor_decompose::hpartition::degree_threshold;
use arbcolor_graph::{Coloring, Graph, InducedSubgraph, PartitionScratch};
use arbcolor_runtime::{obs, parallel_max, CostLedger, RoundReport};

/// Parameters of the raw Legal-Coloring driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalColoringParams {
    /// The refinement parameter `p` of Algorithm 2 (`k = t = p` in every invocation of
    /// Procedure Arbdefective-Coloring).
    pub p: usize,
    /// The `ε` of the H-partitions.
    pub epsilon: f64,
}

/// Parameters for [`o_a_coloring`] (Theorem 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OaParams {
    /// The exponent `µ` in the `O(a^µ log n)` running time.
    pub mu: f64,
    /// The `ε` of the H-partitions.
    pub epsilon: f64,
}

/// Parameters for [`a_power_coloring`] (Corollary 4.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct APowerParams {
    /// The exponent `η` in the `O(a^{1+η})` color bound.
    pub eta: f64,
    /// The `ε` of the H-partitions.
    pub epsilon: f64,
}

/// Reusable buffers for the phase loop of Procedure Legal-Coloring.
///
/// Every phase of Algorithm 2 re-partitions the graph into the current decomposition's
/// subgraphs and refines the group assignment; without scratch reuse each phase re-walks the
/// CSR with fresh parent-sized allocations (`O(phases · groups · n)` in total).  The scratch
/// holds the decomposition buffers ([`PartitionScratch`]), the next-phase group assignment,
/// and the per-branch cost reports, so the loop allocates them once.
#[derive(Debug, Default)]
struct PhaseScratch {
    partition: PartitionScratch,
    next_group: Vec<usize>,
    branch_reports: Vec<RoundReport>,
    /// Per-branch "h-partition" ledger entries of the current refinement iteration, kept
    /// alongside the branch totals so the iteration's cost can be attributed to
    /// observability spans (H-partition share vs. the rest of the arbdefective work).
    branch_hpartitions: Vec<RoundReport>,
}

/// Runs Procedure Legal-Coloring (Algorithm 2) with an explicit refinement parameter `p`.
///
/// `arboricity` must be an upper bound on the arboricity of `graph`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `p < 2`, and propagates substrate errors.
pub fn legal_coloring(
    graph: &Graph,
    arboricity: usize,
    params: LegalColoringParams,
) -> Result<ColoringRun, CoreError> {
    let LegalColoringParams { p, epsilon } = params;
    if p < 2 {
        return Err(CoreError::InvalidParameter {
            reason: format!("the refinement parameter p must be at least 2, got {p}"),
        });
    }
    let mut ledger = CostLedger::new();
    let arboricity = arboricity.max(1);

    // `group[v]` identifies the subgraph of the current decomposition that contains `v`.
    let mut group: Vec<usize> = vec![0; graph.n()];
    let mut num_groups = 1usize;
    let mut alpha = arboricity;
    let mut scratch = PhaseScratch::default();

    // --- The while-loop of Algorithm 2 (lines 4–16). ---
    while alpha > p {
        let new_alpha = alpha / p + degree_threshold(alpha, epsilon) / p;
        if new_alpha >= alpha {
            // The parameter p is too small to make progress on this α; stop refining and let
            // the final coloring pay for the larger palette instead of looping forever.
            break;
        }
        let subgraphs =
            InducedSubgraph::partition_with(graph, &group, num_groups, &mut scratch.partition);
        scratch.branch_reports.clear();
        scratch.branch_hpartitions.clear();
        scratch.next_group.clear();
        scratch.next_group.extend_from_slice(&group);
        for (g_index, sub) in subgraphs.iter().enumerate() {
            if sub.graph.n() == 0 {
                continue;
            }
            let refined = arbdefective_coloring(&sub.graph, alpha, p as u64, p, epsilon)?;
            scratch.branch_reports.push(refined.ledger.total());
            scratch.branch_hpartitions.push(
                refined
                    .ledger
                    .phases()
                    .iter()
                    .find(|phase| phase.name == "h-partition")
                    .map(|phase| phase.report)
                    .unwrap_or_default(),
            );
            for child in 0..sub.graph.n() {
                let color = refined.coloring.coloring.color(child) as usize;
                scratch.next_group[sub.map.to_parent(child)] = g_index * p + color;
            }
        }
        // Attribute the iteration's cost to observability spans: the H-partition share
        // (parallel-max over the branches' "h-partition" entries) plus the exact residual
        // (the remaining arbdefective work), which `then`-compose back to the iteration's
        // ledger entry — so the phase rollup sums to the headline report bit-exactly.
        let iteration_total = parallel_max(&scratch.branch_reports);
        let hpartition_share = parallel_max(&scratch.branch_hpartitions);
        obs::record_leaf("h-partition", hpartition_share);
        obs::record_leaf("arbdefective", obs::residual(iteration_total, hpartition_share));
        ledger.push_parallel("refine", &scratch.branch_reports);
        std::mem::swap(&mut group, &mut scratch.next_group);
        num_groups *= p;
        alpha = new_alpha;
    }

    // --- Final coloring of the low-arboricity subgraphs (lines 17–20). ---
    let final_span = obs::phase("legal-coloring");
    let palette = degree_threshold(alpha, epsilon) as u64 + 1;
    let subgraphs =
        InducedSubgraph::partition_with(graph, &group, num_groups, &mut scratch.partition);
    scratch.branch_reports.clear();
    let mut colors = vec![0u64; graph.n()];
    for (g_index, sub) in subgraphs.iter().enumerate() {
        if sub.graph.n() == 0 {
            continue;
        }
        let inner = arboricity_linear_coloring(&sub.graph, alpha, epsilon)?;
        scratch.branch_reports.push(inner.report);
        for child in 0..sub.graph.n() {
            colors[sub.map.to_parent(child)] =
                g_index as u64 * palette + inner.coloring.color(child);
        }
    }
    final_span.charge(parallel_max(&scratch.branch_reports));
    drop(final_span);
    ledger.push_parallel("final-legal-coloring", &scratch.branch_reports);

    let coloring = Coloring::new(graph, colors)?;
    if !coloring.is_legal(graph) {
        return Err(CoreError::InvariantViolated {
            reason: "Legal-Coloring produced a monochromatic edge".to_string(),
        });
    }
    let palette_bound = num_groups as u64 * palette;
    Ok(ColoringRun::new(coloring, palette_bound, ledger))
}

/// Lemma 4.1: a single invocation of Procedure Arbdefective-Coloring with
/// `k = t = ⌈a^{1/3}⌉` followed by a parallel legal coloring of the classes — an
/// `O(a)`-coloring in `O(a^{2/3} log n)` rounds.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn one_shot_coloring(
    graph: &Graph,
    arboricity: usize,
    epsilon: f64,
) -> Result<ColoringRun, CoreError> {
    let arboricity = arboricity.max(1);
    let k = (arboricity as f64).powf(1.0 / 3.0).ceil() as usize;
    let k = k.max(1);
    let mut ledger = CostLedger::new();
    let refined = arbdefective_coloring(graph, arboricity, k as u64, k, epsilon)?;
    ledger.extend(&refined.ledger);
    let class_bound = refined.arbdefect_bound().max(1);
    let palette = degree_threshold(class_bound, epsilon) as u64 + 1;

    let mut colors = vec![0u64; graph.n()];
    let mut branch_reports = Vec::new();
    for (class_color, sub) in refined.coloring.coloring.class_subgraphs(graph) {
        if sub.graph.n() == 0 {
            continue;
        }
        let inner = arboricity_linear_coloring(&sub.graph, class_bound, epsilon)?;
        branch_reports.push(inner.report);
        for child in 0..sub.graph.n() {
            colors[sub.map.to_parent(child)] = class_color * palette + inner.coloring.color(child);
        }
    }
    ledger.push_parallel("class-legal-coloring", &branch_reports);
    let coloring = Coloring::new(graph, colors)?;
    if !coloring.is_legal(graph) {
        return Err(CoreError::InvariantViolated {
            reason: "one-shot coloring produced a monochromatic edge".to_string(),
        });
    }
    Ok(ColoringRun::new(coloring, k as u64 * palette, ledger))
}

/// Theorem 4.3 / Corollary 4.4: an `O(a)`-coloring in `O(a^µ log n)` rounds, via
/// `p = ⌈a^{µ/2}⌉`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `µ` is not in `(0, 1)`.
pub fn o_a_coloring(
    graph: &Graph,
    arboricity: usize,
    params: OaParams,
) -> Result<ColoringRun, CoreError> {
    if !(params.mu > 0.0 && params.mu < 1.0) {
        return Err(CoreError::InvalidParameter {
            reason: format!("µ must lie in (0, 1), got {}", params.mu),
        });
    }
    let a = arboricity.max(1) as f64;
    let p = a.powf(params.mu / 2.0).ceil() as usize;
    // Algorithm 2 needs p large enough that (3+ε)/p < 1; the paper assumes p ≥ 16 w.l.o.g.
    let p = p.max(6);
    legal_coloring(graph, arboricity, LegalColoringParams { p, epsilon: params.epsilon })
}

/// Corollary 4.6 (the headline result): an `O(a^{1+η})`-coloring in `O(log a · log n)` rounds,
/// via the constant refinement parameter `p = 2^{⌈1/η⌉}`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `η ≤ 0`.
pub fn a_power_coloring(
    graph: &Graph,
    arboricity: usize,
    params: APowerParams,
) -> Result<ColoringRun, CoreError> {
    if params.eta <= 0.0 || params.eta.is_nan() {
        return Err(CoreError::InvalidParameter {
            reason: format!("η must be positive, got {}", params.eta),
        });
    }
    let exponent = (1.0 / params.eta).ceil().min(16.0) as u32;
    let p = 2usize.saturating_pow(exponent).max(6);
    legal_coloring(graph, arboricity, LegalColoringParams { p, epsilon: params.epsilon })
}

/// Theorem 4.5: an `a^{1+o(1)}`-coloring in `O(f(a) · log a · log n)` rounds for the slowly
/// growing function `f(a) = ⌈log₂(a + 2)⌉`, via `p = ⌈√f(a)⌉`.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn a_one_plus_o1_coloring(
    graph: &Graph,
    arboricity: usize,
    epsilon: f64,
) -> Result<ColoringRun, CoreError> {
    let f = ((arboricity.max(1) + 2) as f64).log2().ceil().max(4.0);
    let p = (f.sqrt().ceil() as usize).max(6);
    legal_coloring(graph, arboricity, LegalColoringParams { p, epsilon })
}

/// Corollary 4.7: for graphs with `a ≤ Δ^{1−ν}` the `O(a^{1+η})`-coloring of Corollary 4.6
/// (with `η < ν/(1−ν)` so that `a^{1+η} = o(Δ)`) already uses at most `Δ + 1` colors, i.e. it
/// *is* a `(Δ+1)`-coloring, obtained in `O(log a · log n)` rounds.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `ν` is not in `(0, 1)`; propagates substrate
/// errors.  If the sparsity premise `a ≤ Δ^{1−ν}` does not hold for the given bound, the
/// coloring is still legal but may use more than `Δ + 1` colors — the caller can check
/// [`ColoringRun::colors_used`].
pub fn sparse_delta_plus_one(
    graph: &Graph,
    arboricity: usize,
    nu: f64,
    epsilon: f64,
) -> Result<ColoringRun, CoreError> {
    if !(nu > 0.0 && nu < 1.0) {
        return Err(CoreError::InvalidParameter {
            reason: format!("ν must lie in (0, 1), got {nu}"),
        });
    }
    let eta = (nu / (1.0 - nu)) / 2.0;
    a_power_coloring(graph, arboricity, APowerParams { eta, epsilon })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::{degeneracy, generators};

    #[test]
    fn legal_coloring_is_legal_and_uses_o_of_a_colors() {
        for (a, n) in [(3usize, 300usize), (5, 400)] {
            let g = generators::union_of_random_forests(n, a, 17).unwrap().with_shuffled_ids(2);
            let run = legal_coloring(&g, a, LegalColoringParams { p: 6, epsilon: 1.0 }).unwrap();
            assert!(run.coloring.is_legal(&g));
            assert!(run.colors_used as u64 <= run.palette_bound);
            // O(a) colors with a modest constant (the paper's constant is (3+ε)^{4/µ+1}).
            assert!(
                run.colors_used <= 60 * a,
                "used {} colors for arboricity {a}",
                run.colors_used
            );
        }
    }

    #[test]
    fn rejects_tiny_p_and_bad_mu() {
        let g = generators::path(10).unwrap();
        assert!(legal_coloring(&g, 1, LegalColoringParams { p: 1, epsilon: 1.0 }).is_err());
        assert!(o_a_coloring(&g, 1, OaParams { mu: 0.0, epsilon: 1.0 }).is_err());
        assert!(o_a_coloring(&g, 1, OaParams { mu: 1.5, epsilon: 1.0 }).is_err());
        assert!(a_power_coloring(&g, 1, APowerParams { eta: 0.0, epsilon: 1.0 }).is_err());
        assert!(sparse_delta_plus_one(&g, 1, 0.0, 1.0).is_err());
    }

    #[test]
    fn one_shot_coloring_matches_lemma_4_1() {
        let a = 8usize;
        let g = generators::union_of_random_forests(400, a, 23).unwrap().with_shuffled_ids(3);
        let run = one_shot_coloring(&g, a, 1.0).unwrap();
        assert!(run.coloring.is_legal(&g));
        assert!(run.colors_used <= 40 * a, "used {} colors", run.colors_used);
    }

    #[test]
    fn headline_corollary_4_6_few_colors_and_polylog_rounds() {
        let a = 4usize;
        let g = generators::union_of_random_forests(800, a, 31).unwrap().with_shuffled_ids(5);
        let run = a_power_coloring(&g, a, APowerParams { eta: 0.5, epsilon: 1.0 }).unwrap();
        assert!(run.coloring.is_legal(&g));
        // O(a^{1.5}) colors with a constant: a = 4 → 8, allow the paper's (3+ε)^{O(1)} factor.
        assert!(run.colors_used <= 80 * 8, "used {} colors", run.colors_used);
        // Rounds are polylogarithmic in n for constant a — loose sanity bound.
        let logn = (g.n() as f64).log2().ceil() as usize;
        assert!(
            run.report.rounds <= 200 * logn,
            "rounds {} not polylogarithmic (log n = {logn})",
            run.report.rounds
        );
    }

    #[test]
    fn o_a_coloring_trades_time_for_colors() {
        let a = 9usize;
        let g = generators::union_of_random_forests(500, a, 41).unwrap().with_shuffled_ids(6);
        let slow = o_a_coloring(&g, a, OaParams { mu: 0.9, epsilon: 1.0 }).unwrap();
        let fast_colors = a_power_coloring(&g, a, APowerParams { eta: 1.0, epsilon: 1.0 }).unwrap();
        assert!(slow.coloring.is_legal(&g));
        assert!(fast_colors.coloring.is_legal(&g));
        // The O(a)-coloring uses at most as many colors (up to slack) as the O(a^2)-style one,
        // and both are legal; the interesting comparison (rounds vs colors) is exercised by
        // the benchmark harness.
        assert!(slow.colors_used <= fast_colors.palette_bound as usize + 60 * a);
    }

    #[test]
    fn sparse_graphs_get_fewer_than_delta_colors() {
        // Star-forest unions: arboricity ≤ 2 but Δ in the hundreds (Corollary 4.7 regime).
        let g = generators::star_forest_union(900, 2, 3, 3).unwrap().with_shuffled_ids(8);
        let a = degeneracy::degeneracy(&g).max(1);
        let run = sparse_delta_plus_one(&g, a, 0.5, 1.0).unwrap();
        assert!(run.coloring.is_legal(&g));
        assert!(
            run.colors_used <= g.max_degree() + 1,
            "{} colors but Δ + 1 = {}",
            run.colors_used,
            g.max_degree() + 1
        );
    }

    #[test]
    fn a_one_plus_o1_is_legal() {
        let a = 5usize;
        let g = generators::union_of_random_forests(400, a, 51).unwrap().with_shuffled_ids(9);
        let run = a_one_plus_o1_coloring(&g, a, 1.0).unwrap();
        assert!(run.coloring.is_legal(&g));
        assert!(run.colors_used <= 100 * a);
    }

    #[test]
    fn works_when_arboricity_bound_is_below_p() {
        // α ≤ p: the while-loop never runs and the final coloring does all the work.
        let g = generators::random_tree(200, 3).unwrap().with_shuffled_ids(11);
        let run = legal_coloring(&g, 1, LegalColoringParams { p: 8, epsilon: 1.0 }).unwrap();
        assert!(run.coloring.is_legal(&g));
        assert!(run.colors_used <= 4);
    }
}
