//! Algorithm **Arb-Kuhn** (Section 5): arbdefective colorings via low-agreement polynomial
//! families, with collisions counted only against *parents*.
//!
//! The algorithm first computes an acyclic complete orientation `σ` with out-degree
//! `A = ⌊(2+ε)a⌋` (Lemma 2.4, `O(log n)` rounds) and then runs `O(log* n)` iterations of
//! Procedure **Arb-Recolor** (Algorithm 3): a vertex of current color `χ` with parents colored
//! `y_1, …, y_δ` (δ ≤ A) picks `α` minimizing `|{i : ϕ_χ(α) = ϕ_{y_i}(α)}|` and adopts the
//! pair color `(α, ϕ_χ(α))`.  Lemma 5.1 bounds the number of parents that can end up sharing
//! the vertex's new color, so after the whole schedule every color class induces a subgraph in
//! which each vertex has at most `d` parents — an acyclic orientation with out-degree ≤ `d`,
//! i.e. arboricity ≤ `d` (Lemma 2.5): a `d`-arbdefective `O((a/d)²)`-coloring in `O(log n)`
//! rounds.

use crate::error::CoreError;
use arbcolor_decompose::forests::bounded_outdegree_orientation;
use arbcolor_decompose::linial::{RecolorSchedule, RecolorStep};
use arbcolor_graph::{Coloring, Graph, Orientation};
use arbcolor_runtime::{run_algorithm, Algorithm, CostLedger, Inbox, NodeCtx, Outbox, Status};
use std::collections::HashMap;

/// The Arb-Recolor iteration driver (node-program factory).
#[derive(Debug, Clone)]
pub struct ArbRecolorAlgorithm<'a> {
    graph: &'a Graph,
    orientation: &'a Orientation,
    schedule: &'a RecolorSchedule,
}

/// Node program of [`ArbRecolorAlgorithm`].
#[derive(Debug, Clone)]
pub struct ArbRecolorNode {
    parent_ports: Vec<usize>,
    steps: Vec<RecolorStep>,
    color: u64,
    iteration: usize,
}

impl arbcolor_runtime::node::NodeProgram for ArbRecolorNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        if self.steps.is_empty() {
            return Status::Halted;
        }
        outbox.broadcast(self.color);
        // `iteration` advances every round (isolated vertices included), so self-schedule
        // while active rather than relying on incoming mail.
        ctx.wake_next_round();
        Status::Active
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, u64>, outbox: &mut Outbox<u64>) -> Status {
        let family = &self.steps[self.iteration].family;
        // Only the parents' colors matter for Arb-Recolor.
        let parent_colors: Vec<u64> =
            self.parent_ports.iter().filter_map(|&p| inbox.from_port(p).copied()).collect();
        let mut best_alpha = 0u64;
        let mut best = usize::MAX;
        for alpha in 0..family.q {
            let own = family.evaluate(self.color, alpha);
            let collisions = parent_colors
                .iter()
                .filter(|&&y| y != self.color && family.evaluate(y, alpha) == own)
                .count();
            if collisions < best {
                best = collisions;
                best_alpha = alpha;
                if best == 0 {
                    break;
                }
            }
        }
        self.color = family.pair_color(self.color, best_alpha);
        self.iteration += 1;
        if self.iteration == self.steps.len() {
            Status::Halted
        } else {
            outbox.broadcast(self.color);
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.color
    }
}

impl Algorithm for ArbRecolorAlgorithm<'_> {
    type Node = ArbRecolorNode;

    fn node(&self, ctx: &NodeCtx) -> ArbRecolorNode {
        let v = ctx.vertex;
        ArbRecolorNode {
            parent_ports: self.orientation.parent_ports(self.graph, v).collect(),
            steps: self.schedule.steps.clone(),
            color: self.graph.id(v) - 1,
            iteration: 0,
        }
    }

    fn name(&self) -> &'static str {
        "arb-recolor"
    }
}

/// Output of [`arb_kuhn_coloring`].
#[derive(Debug, Clone)]
pub struct ArbKuhnColoring {
    /// The arbdefective coloring.
    pub coloring: Coloring,
    /// The guaranteed arbdefect bound (sum of the schedule's per-iteration budgets, ≤ the
    /// requested target).
    pub arbdefect_bound: usize,
    /// Upper bound on the palette (`q²` of the last iteration).
    pub palette_bound: u64,
    /// The orientation used to define parents.
    pub orientation: Orientation,
    /// Per-class witness orientations (restrictions of `orientation` to the classes).
    pub witnesses: HashMap<u64, Orientation>,
    /// Per-phase LOCAL cost.
    pub ledger: CostLedger,
}

impl ArbKuhnColoring {
    /// Re-checks the witnesses, returning the worst per-class out-degree.
    ///
    /// # Errors
    ///
    /// Returns an error if a witness violates the arbdefect bound.
    pub fn verify(&self, graph: &Graph) -> Result<usize, CoreError> {
        self.coloring
            .verify_arbdefect_witness(graph, &self.witnesses, self.arbdefect_bound)
            .map_err(CoreError::from)
    }
}

/// Computes a `d`-arbdefective coloring with an `O((a/d)²·polylog)` palette in `O(log n)`
/// rounds (Algorithm Arb-Kuhn; Theorem 5.2's building block).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `target_arbdefect` is 0 and the graph has edges
/// that would force a defect — a target of 0 is allowed and simply yields a legal coloring.
/// Propagates substrate errors.
pub fn arb_kuhn_coloring(
    graph: &Graph,
    arboricity: usize,
    target_arbdefect: usize,
    epsilon: f64,
) -> Result<ArbKuhnColoring, CoreError> {
    let mut ledger = CostLedger::new();
    let bounded = bounded_outdegree_orientation(graph, arboricity.max(1), epsilon)?;
    ledger.push("orientation", bounded.report);

    let id_space = graph.ids().iter().copied().max().unwrap_or(1);
    let schedule =
        RecolorSchedule::build(id_space, bounded.out_degree_bound, target_arbdefect as u64);
    let algorithm =
        ArbRecolorAlgorithm { graph, orientation: &bounded.orientation, schedule: &schedule };
    let result = run_algorithm(graph, &algorithm)?;
    ledger.push("arb-recolor", result.report);
    let coloring = Coloring::new(graph, result.outputs)?;
    let arbdefect_bound = schedule.total_budget() as usize;

    let mut witnesses = HashMap::new();
    for (class_color, sub) in coloring.class_subgraphs(graph) {
        if sub.graph.m() == 0 {
            continue;
        }
        let restricted =
            bounded.orientation.restrict_to(graph, &sub.graph, sub.map.parent_vertices());
        // The global orientation is complete, so the restriction to an induced subgraph is
        // complete as well.
        witnesses.insert(class_color, restricted);
    }

    let out = ArbKuhnColoring {
        coloring,
        arbdefect_bound,
        palette_bound: schedule.final_colors(),
        orientation: bounded.orientation,
        witnesses,
        ledger,
    };
    let worst = out.verify(graph).map_err(|e| CoreError::InvariantViolated {
        reason: format!("Lemma 5.1 witness check failed: {e}"),
    })?;
    debug_assert!(worst <= arbdefect_bound);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn arbdefect_stays_within_target() {
        let a = 6usize;
        let g = generators::union_of_random_forests(600, a, 19).unwrap().with_shuffled_ids(4);
        for d in [0usize, 1, 2, 4] {
            let out = arb_kuhn_coloring(&g, a, d, 1.0).unwrap();
            assert!(out.arbdefect_bound <= d);
            let worst = out.verify(&g).unwrap();
            assert!(worst <= d, "worst class out-degree {worst} exceeds target {d}");
        }
    }

    #[test]
    fn zero_target_yields_a_legal_coloring() {
        let g = generators::union_of_random_forests(400, 3, 5).unwrap().with_shuffled_ids(2);
        let out = arb_kuhn_coloring(&g, 3, 0, 1.0).unwrap();
        assert!(out.coloring.is_legal(&g) || out.coloring.max_class_degeneracy(&g) == 0);
    }

    #[test]
    fn larger_target_gives_smaller_palette() {
        let a = 8usize;
        let g = generators::union_of_random_forests(1500, a, 7).unwrap().with_shuffled_ids(6);
        let fine = arb_kuhn_coloring(&g, a, 1, 1.0).unwrap();
        let coarse = arb_kuhn_coloring(&g, a, a, 1.0).unwrap();
        assert!(
            coarse.palette_bound <= fine.palette_bound,
            "coarse {} vs fine {}",
            coarse.palette_bound,
            fine.palette_bound
        );
    }

    #[test]
    fn rounds_are_logarithmic() {
        let g = generators::union_of_random_forests(1000, 4, 9).unwrap().with_shuffled_ids(8);
        let out = arb_kuhn_coloring(&g, 4, 2, 1.0).unwrap();
        let logn = (g.n() as f64).log2().ceil() as usize;
        assert!(
            out.ledger.total().rounds <= 6 * logn + 20,
            "rounds {} exceed O(log n)",
            out.ledger.total().rounds
        );
    }
}
