//! Randomized `(deg+1)`-list coloring in CONGEST, after Halldórsson–Kuhn–Maus–Tonoyan
//! (arXiv:2012.14169).
//!
//! HKMT show that `(deg+1)`-list coloring — the workhorse subproblem of the deterministic
//! pipelines in this crate — admits a randomized CONGEST algorithm whose messages stay at
//! `O(log n)` bits.  This module implements the algorithm's backbone as a genuine
//! [`NodeProgram`] so it runs on the simulator under CONGEST accounting
//! ([`CostMode::Congest`](arbcolor_runtime::CostMode)) and serves as the repo's first
//! *randomized* registry headliner, racing the two deterministic ones bit-for-bit on the
//! bandwidth columns:
//!
//! 1. **Multi-trial color sampling** ([`RandomTrials`]).  Trials alternate two rounds.  In a
//!    *propose* round every uncolored vertex draws a uniform candidate from its remaining
//!    list and announces it; in the *resolve* round it keeps the candidate iff no neighbor
//!    proposed the same color, announces the adoption, and halts.  Adopted colors are
//!    struck from the neighbors' lists at the start of their next propose round, so every
//!    message is a single color value — `O(log n)` bits.  Randomness is **per-vertex
//!    seeded**: vertex `v` draws from `ChaCha8(seed ⊕ mix(id(v)))`, so the execution is a
//!    deterministic function of `(graph, lists, seed)` and bit-identical across the
//!    sequential, work-stealing, and reference executors at any thread count.
//! 2. **Deterministic fallback.**  The greedy slack `|Ψ(v)| ≥ deg(v) + 1` is preserved under
//!    trial coloring (each colored neighbor removes at most one list entry *and* one unit
//!    of induced degree), so the leftover instance after `O(log n)` trials — empty with
//!    high probability, small otherwise — is finished by the existing
//!    [`ghaffari_kuhn_list_coloring`] machinery on the induced subgraph.
//! 3. **Unconditional re-verification.**  Whatever the random trials did, the final
//!    coloring is checked against the lists and the graph before it is returned; a bad
//!    coloring is a [`CoreError::InvariantViolated`], never a silent result.

use crate::error::CoreError;
use crate::ghaffari_kuhn::ghaffari_kuhn_list_coloring;
use crate::list_coloring::ColorLists;
use crate::report::ColoringRun;
use arbcolor_graph::{Coloring, Graph, InducedSubgraph, PaletteSet, PaletteStats, Vertex};
use arbcolor_runtime::{
    obs, run_algorithm, Algorithm, CostLedger, Inbox, MessageCost, NodeCtx, NodeProgram, Outbox,
    Status,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A message of the trial protocol: a color candidate or a permanent adoption.
///
/// Both variants carry one color value, so the measured width is `O(log n)` whenever the
/// color space is polynomial in `n` — exactly the CONGEST regime HKMT target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialMsg {
    /// The sender proposes this color in the current trial.
    Propose(u64),
    /// The sender has permanently adopted this color (and halts).
    Keep(u64),
}

impl MessageCost for TrialMsg {
    /// One tag bit to separate the variants, plus the measured width of the color.
    fn encoded_bits(&self) -> u64 {
        match self {
            TrialMsg::Propose(c) | TrialMsg::Keep(c) => 1 + c.encoded_bits(),
        }
    }
}

/// The multi-trial sampling phase of HKMT as a distributed algorithm: after the trial
/// budget is exhausted a vertex gives up and leaves itself to the deterministic fallback
/// (output `None`).
///
/// Nodes borrow their list straight from the instance's flat pool and mark adopted
/// neighbor colors in a position-indexed [`PaletteSet`] instead of compacting a cloned
/// `Vec`; candidate draws select the `k`-th surviving position by popcount, which is
/// bit-identical to drawing from the compacted list.
#[derive(Debug)]
pub struct RandomTrials<'a> {
    /// Global seed; per-vertex generators are derived from it and the vertex identifier.
    seed: u64,
    /// Maximum number of trials before a vertex defers to the fallback.
    trials: usize,
    /// The list-coloring instance (one palette per vertex).
    lists: &'a ColorLists,
    /// Reuse counters fed by the nodes; flushed by the driver after the run.  Shared by
    /// refcount because the nodes outlive the `&self` borrow of [`Algorithm::node`].
    stats: Arc<PaletteStats>,
}

impl<'a> RandomTrials<'a> {
    /// Creates the sampling phase over `lists` with the given seed and trial budget.
    pub fn new(seed: u64, trials: usize, lists: &'a ColorLists) -> Self {
        RandomTrials { seed, trials, lists, stats: Arc::new(PaletteStats::default()) }
    }

    /// The reuse counters fed by this algorithm's nodes.
    pub fn stats(&self) -> &PaletteStats {
        &self.stats
    }
}

/// Phase alternation of the trial protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Strike newly adopted neighbor colors, draw, and announce a candidate.
    Propose,
    /// Keep the candidate unless a neighbor proposed the same color.
    Resolve,
}

/// Per-vertex state of [`RandomTrials`].
#[derive(Debug, Clone)]
pub struct TrialNode<'a> {
    rng: ChaCha8Rng,
    /// The vertex's full sorted list, borrowed from the instance pool.
    list: &'a [u64],
    /// List *positions* whose colors were adopted by a neighbor.
    struck: PaletteSet,
    /// Number of surviving positions (`list.len() − struck_count`).
    live: usize,
    stats: Arc<PaletteStats>,
    candidate: u64,
    color: Option<u64>,
    phase: Phase,
    trial: usize,
    trials: usize,
}

impl TrialNode<'_> {
    /// Draws a fresh candidate from the surviving positions and broadcasts it.
    ///
    /// `select_unstruck(k)` returns the `k`-th surviving position in ascending order —
    /// exactly the element `compacted[k]` of the old remove-as-you-go `Vec`, so the draw
    /// (and the whole rng stream) is bit-identical to the pre-bitset path.
    fn propose(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<TrialMsg>) -> Status {
        let k = self.rng.gen_range(0..self.live) as u64;
        let pos = self.struck.select_unstruck(k).expect("live > 0 surviving positions");
        self.candidate = self.list[pos as usize];
        self.stats.record_pick_only();
        outbox.broadcast(TrialMsg::Propose(self.candidate));
        self.phase = Phase::Resolve;
        ctx.wake_next_round();
        Status::Active
    }
}

impl NodeProgram for TrialNode<'_> {
    type Msg = TrialMsg;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<TrialMsg>) -> Status {
        if self.live == 0 {
            // Defensive: an uncolorable vertex defers to the fallback's validation.
            return Status::Halted;
        }
        if ctx.degree == 0 {
            self.color = Some(self.list[0]);
            return Status::Halted;
        }
        self.propose(ctx, outbox)
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        inbox: &Inbox<'_, TrialMsg>,
        outbox: &mut Outbox<TrialMsg>,
    ) -> Status {
        match self.phase {
            Phase::Resolve => {
                // Uncolored vertices act in lockstep, so a resolve round sees proposals
                // only; adoptions announced this round arrive in the next propose round.
                let conflict = inbox
                    .iter()
                    .any(|(_, m)| matches!(m, TrialMsg::Propose(c) if *c == self.candidate));
                if !conflict {
                    self.color = Some(self.candidate);
                    outbox.broadcast(TrialMsg::Keep(self.candidate));
                    return Status::Halted;
                }
                self.trial += 1;
                if self.trial >= self.trials {
                    // Out of trials: leave this vertex to the deterministic fallback.
                    return Status::Halted;
                }
                self.phase = Phase::Propose;
                ctx.wake_next_round();
                Status::Active
            }
            Phase::Propose => {
                for (_, m) in inbox.iter() {
                    if let TrialMsg::Keep(c) = m {
                        // Striking a position is idempotent, so a color adopted by two
                        // neighbors (legal across resolve generations) is removed once —
                        // same behavior as the old remove + failing re-search.
                        if let Ok(at) = self.list.binary_search(c) {
                            if self.struck.strike(at as u64) {
                                self.live -= 1;
                                self.stats.record_strikes(1);
                            }
                        }
                    }
                }
                if self.live == 0 {
                    return Status::Halted;
                }
                self.propose(ctx, outbox)
            }
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> Option<u64> {
        self.color
    }
}

impl<'a> Algorithm for RandomTrials<'a> {
    type Node = TrialNode<'a>;

    fn node(&self, ctx: &NodeCtx) -> TrialNode<'a> {
        // Seed per vertex from (global seed, vertex identifier): the draw sequence belongs
        // to the vertex, not to any scheduling order, which is what makes the randomized
        // execution bit-identical across executors and thread counts.
        let rng = ChaCha8Rng::seed_from_u64(self.seed ^ ctx.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let list = self.lists.list(ctx.vertex);
        TrialNode {
            rng,
            list,
            struck: PaletteSet::new(list.len() as u64),
            live: list.len(),
            stats: Arc::clone(&self.stats),
            candidate: 0,
            color: None,
            phase: Phase::Propose,
            trial: 0,
            trials: self.trials.max(1),
        }
    }

    fn name(&self) -> &'static str {
        "hkmt-random-trials"
    }
}

/// The default trial budget for an `n`-vertex graph: `⌈log2 n⌉ + 2`, so the sampling phase
/// runs `O(log n)` rounds and leaves (with high probability) nothing to the fallback.
pub fn default_trials(n: usize) -> usize {
    n.max(2).next_power_of_two().trailing_zeros() as usize + 2
}

/// HKMT randomized `(deg+1)`-list coloring: seeded multi-trial sampling, deterministic GK
/// fallback for the leftover instance, legality re-verified unconditionally.
///
/// For a fixed `seed` the result is a deterministic function of the instance — bit-identical
/// colors, rounds, messages, and bandwidth across all executors.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the instance does not cover the graph or lacks
/// greedy slack, [`CoreError::InvariantViolated`] if the final coloring fails verification,
/// and propagates runtime errors (including CONGEST budget violations).
pub fn hkmt_list_coloring(
    graph: &Graph,
    lists: &ColorLists,
    seed: u64,
) -> Result<ColoringRun, CoreError> {
    if lists.n() != graph.n() {
        return Err(CoreError::InvalidParameter {
            reason: format!(
                "instance covers {} vertices but the graph has {}",
                lists.n(),
                graph.n()
            ),
        });
    }
    if !lists.has_greedy_slack(graph) {
        return Err(CoreError::InvalidParameter {
            reason: format!(
                "the instance lacks greedy slack (min |Ψ(v)| − deg(v) − 1 = {})",
                lists.min_slack(graph)
            ),
        });
    }

    let mut ledger = CostLedger::new();
    let trials_span = obs::phase("random-trials");
    let trials = RandomTrials::new(seed, default_trials(graph.n()), lists);
    let sampling = run_algorithm(graph, &trials)?;
    obs::record_palette(trials.stats());
    ledger.push("random-trials", sampling.report);
    trials_span.charge(sampling.report);
    drop(trials_span);
    let mut colors: Vec<Option<u64>> = sampling.outputs;

    // Deterministic fallback on the leftover: trial coloring preserves greedy slack (a
    // colored neighbor removes at most one list entry and exactly one unit of induced
    // degree), so the reduced instance is a valid GK input.
    let leftover: Vec<Vertex> = graph.vertices().filter(|&v| colors[v].is_none()).collect();
    if !leftover.is_empty() {
        // GK's own level spans nest inside this one; the depth-1 rollup only sees
        // "gk-fallback", so there is no double counting.
        let fallback_span = obs::phase("gk-fallback");
        let sub = InducedSubgraph::new(graph, &leftover);
        // One strike-set scratch reused across all leftover vertices: strike the colors
        // adopted around `parent`, filter its list with word lookups, epoch-clear, repeat.
        let stats = PaletteStats::default();
        let mut taken = PaletteSet::new(lists.color_space());
        let reduced: Vec<Vec<u64>> = (0..sub.graph.n())
            .map(|child| {
                let parent = sub.map.to_parent(child);
                let mut struck = 0;
                for &u in graph.neighbors(parent) {
                    if let Some(c) = colors[u] {
                        if taken.strike(c) {
                            struck += 1;
                        }
                    }
                }
                stats.record_strikes(struck);
                let list: Vec<u64> =
                    lists.list(parent).iter().copied().filter(|&c| !taken.is_struck(c)).collect();
                stats.record_words_cleared(taken.clear());
                list
            })
            .collect();
        obs::record_palette(&stats);
        let sub_lists = ColorLists::new(&sub.graph, reduced)?;
        let fallback = ghaffari_kuhn_list_coloring(&sub.graph, &sub_lists)?;
        for child in 0..sub.graph.n() {
            colors[sub.map.to_parent(child)] = Some(fallback.coloring.color(child));
        }
        ledger.push("gk-fallback", fallback.report);
        fallback_span.charge(fallback.report);
        drop(fallback_span);
    }

    let colors: Vec<u64> = colors
        .into_iter()
        .map(|c| {
            c.ok_or_else(|| CoreError::InvariantViolated {
                reason: "a vertex left the trials uncolored and outside the fallback".into(),
            })
        })
        .collect::<Result<_, _>>()?;
    let coloring = Coloring::new(graph, colors)?;
    lists.verify(graph, &coloring)?;
    Ok(ColoringRun::new(coloring, lists.color_space(), ledger))
}

/// The `(deg+1)` entry point: every vertex lists `{0, …, deg(v)}`, so the result uses at
/// most `Δ + 1` colors.
///
/// # Errors
///
/// See [`hkmt_list_coloring`].
pub fn hkmt_coloring(graph: &Graph, seed: u64) -> Result<ColoringRun, CoreError> {
    hkmt_list_coloring(graph, &ColorLists::degree_plus_one(graph), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn trial_message_width_is_one_tag_bit_plus_the_color() {
        assert_eq!(TrialMsg::Propose(0).encoded_bits(), 2);
        assert_eq!(TrialMsg::Keep(5).encoded_bits(), 4);
        assert_eq!(TrialMsg::Propose(255).encoded_bits(), 9);
    }

    #[test]
    fn colors_legally_within_delta_plus_one_on_mixed_graphs() {
        for (i, g) in [
            generators::cycle(24).unwrap().with_shuffled_ids(3),
            generators::gnp(60, 0.15, 7).unwrap().with_shuffled_ids(9),
            generators::complete(9).unwrap(),
            generators::star(17).unwrap(),
        ]
        .into_iter()
        .enumerate()
        {
            let run = hkmt_coloring(&g, 1000 + i as u64).unwrap();
            assert!(run.coloring.is_legal(&g));
            assert!(run.colors_used <= g.max_degree() + 1);
            assert!(run.report.rounds >= 1);
            assert!(run.report.total_bits > 0, "trial messages must be accounted");
        }
    }

    #[test]
    fn fixed_seed_is_reproducible_and_seeds_differ() {
        let g = generators::gnp(50, 0.2, 11).unwrap().with_shuffled_ids(4);
        let a = hkmt_coloring(&g, 42).unwrap();
        let b = hkmt_coloring(&g, 42).unwrap();
        assert_eq!(a.coloring.colors(), b.coloring.colors());
        assert_eq!(a.report, b.report);
        // Different seeds still produce legal colorings (and usually different ones).
        let c = hkmt_coloring(&g, 43).unwrap();
        assert!(c.coloring.is_legal(&g));
    }

    #[test]
    fn respects_custom_lists() {
        let g = generators::path(6).unwrap();
        let lists: Vec<Vec<u64>> =
            (0..6).map(|v| (10..13).map(|c| c + (v as u64 % 2)).collect()).collect();
        let lists = ColorLists::new(&g, lists).unwrap();
        let run = hkmt_list_coloring(&g, &lists, 7).unwrap();
        assert!(lists.verify(&g, &run.coloring).is_ok());
    }

    #[test]
    fn isolated_vertices_color_in_zero_rounds() {
        let g = Graph::empty(4);
        let run = hkmt_coloring(&g, 5).unwrap();
        assert!(run.coloring.is_legal(&g));
        assert_eq!(run.report.total_bits, 0);
    }
}
