//! Procedure **Simple-Arbdefective** (Section 3, Theorem 3.2).
//!
//! Input: an acyclic *partial* orientation `σ` with out-degree at most `m` and deficit at most
//! `τ`, and an integer `k > 0`.  Every vertex waits until all of its parents (heads of its
//! outgoing edges) have selected a color, then selects the color of `{0, …, k−1}` used by the
//! fewest parents and announces it.  By the pigeonhole principle at most `⌊m/k⌋` parents share
//! the selected color, so together with the ≤ `τ` unoriented incident edges each color class
//! admits an acyclic orientation of out-degree ≤ `τ + ⌊m/k⌋` — i.e. the result is a
//! `(τ + ⌊m/k⌋)`-arbdefective `k`-coloring (Lemma 2.5 + Lemma 3.1).  The number of rounds is
//! the *length* of the orientation.

use crate::error::CoreError;
use arbcolor_graph::{Coloring, Graph, Orientation};
use arbcolor_runtime::{run_algorithm, Algorithm, Inbox, NodeCtx, Outbox, RoundReport, Status};
use std::collections::HashMap;

/// The Simple-Arbdefective DAG-sweep algorithm (node-program factory).
#[derive(Debug, Clone)]
pub struct SimpleArbdefective<'a> {
    graph: &'a Graph,
    orientation: &'a Orientation,
    k: u64,
}

impl<'a> SimpleArbdefective<'a> {
    /// Creates the algorithm for a graph, an acyclic partial orientation of that graph, and a
    /// number of colors `k`.
    pub fn new(graph: &'a Graph, orientation: &'a Orientation, k: u64) -> Self {
        SimpleArbdefective { graph, orientation, k }
    }
}

/// Node program of [`SimpleArbdefective`].
#[derive(Debug, Clone)]
pub struct SimpleArbdefectiveNode {
    /// Ports of this vertex's parents (edges oriented away from the vertex).
    parent_ports: Vec<usize>,
    /// Colors received so far from parents.
    parent_colors: Vec<u64>,
    k: u64,
    chosen: Option<u64>,
}

impl SimpleArbdefectiveNode {
    fn choose(&mut self) -> u64 {
        // Pick the color of {0, …, k−1} used by the fewest parents.
        let mut counts = vec![0usize; self.k as usize];
        for &c in &self.parent_colors {
            counts[c as usize] += 1;
        }
        let best = counts
            .iter()
            .enumerate()
            .min_by_key(|&(_, &count)| count)
            .map(|(color, _)| color as u64)
            .unwrap_or(0);
        self.chosen = Some(best);
        best
    }
}

impl arbcolor_runtime::node::NodeProgram for SimpleArbdefectiveNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, _ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        if self.parent_ports.is_empty() {
            let c = self.choose();
            outbox.broadcast(c);
            Status::Halted
        } else {
            // Purely mail-driven: progress happens only when parent mail arrives, so no
            // wakeup is needed — delivery marks this vertex in the frontier.
            Status::Active
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<u64>,
    ) -> Status {
        for (port, &color) in inbox.iter() {
            if self.parent_ports.contains(&port) {
                self.parent_colors.push(color);
            }
        }
        if self.parent_colors.len() == self.parent_ports.len() {
            let c = self.choose();
            outbox.broadcast(c);
            Status::Halted
        } else {
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.chosen.unwrap_or(0)
    }
}

impl Algorithm for SimpleArbdefective<'_> {
    type Node = SimpleArbdefectiveNode;

    fn node(&self, ctx: &NodeCtx) -> SimpleArbdefectiveNode {
        let parent_ports: Vec<usize> =
            self.orientation.parent_ports(self.graph, ctx.vertex).collect();
        SimpleArbdefectiveNode { parent_ports, parent_colors: Vec::new(), k: self.k, chosen: None }
    }

    fn name(&self) -> &'static str {
        "simple-arbdefective"
    }
}

/// An arbdefective coloring together with its per-class witness orientations.
#[derive(Debug, Clone)]
pub struct ArbdefectiveColoring {
    /// The coloring with `k` colors.
    pub coloring: Coloring,
    /// Number of colors `k`.
    pub k: u64,
    /// The guaranteed arbdefect bound `τ + ⌊m/k⌋`.
    pub arbdefect_bound: usize,
    /// For every color class, a complete acyclic orientation of the class subgraph whose
    /// out-degree certifies the arbdefect bound (Lemmas 2.5 and 3.1).
    pub witnesses: HashMap<u64, Orientation>,
    /// LOCAL cost of the sweep.
    pub report: RoundReport,
}

impl ArbdefectiveColoring {
    /// Re-checks the witnesses against the graph, returning the worst per-class out-degree.
    ///
    /// # Errors
    ///
    /// Returns an error if a witness is missing, cyclic, incomplete or exceeds the bound.
    pub fn verify(&self, graph: &Graph) -> Result<usize, CoreError> {
        self.coloring
            .verify_arbdefect_witness(graph, &self.witnesses, self.arbdefect_bound)
            .map_err(CoreError::from)
    }
}

/// Runs Procedure Simple-Arbdefective (Theorem 3.2).
///
/// `out_degree_bound` and `deficit_bound` are the parameters `m` and `τ` of the orientation
/// (the caller obtained them from Procedure Complete-/Partial-Orientation); they are used to
/// compute the guaranteed arbdefect bound `τ + ⌊m/k⌋`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `k = 0` or the orientation is cyclic, and
/// [`CoreError::InvariantViolated`] if (contrary to Theorem 3.2) a witness exceeds the bound.
pub fn simple_arbdefective(
    graph: &Graph,
    orientation: &Orientation,
    k: u64,
    out_degree_bound: usize,
    deficit_bound: usize,
) -> Result<ArbdefectiveColoring, CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidParameter { reason: "k must be positive".to_string() });
    }
    if !orientation.is_acyclic(graph) {
        return Err(CoreError::InvalidParameter {
            reason: "Simple-Arbdefective requires an acyclic orientation".to_string(),
        });
    }
    let algorithm = SimpleArbdefective::new(graph, orientation, k);
    let result = run_algorithm(graph, &algorithm)?;
    let coloring = Coloring::new(graph, result.outputs)?;
    let arbdefect_bound = deficit_bound + out_degree_bound / k as usize;

    // Build the per-class witnesses: restrict the orientation to each class subgraph and
    // complete it acyclically (Lemma 3.1).  Each vertex has at most ⌊m/k⌋ parents and at most
    // τ unoriented edges inside its class, so the completed out-degree is ≤ τ + ⌊m/k⌋.
    let mut witnesses = HashMap::new();
    for (class_color, sub) in coloring.class_subgraphs(graph) {
        if sub.graph.m() == 0 {
            continue;
        }
        let restricted = orientation.restrict_to(graph, &sub.graph, sub.map.parent_vertices());
        let completed = restricted.complete_acyclically(&sub.graph)?;
        witnesses.insert(class_color, completed);
    }

    let colored =
        ArbdefectiveColoring { coloring, k, arbdefect_bound, witnesses, report: result.report };
    let worst = colored.verify(graph).map_err(|e| CoreError::InvariantViolated {
        reason: format!("Theorem 3.2 witness check failed: {e}"),
    })?;
    debug_assert!(worst <= arbdefect_bound);
    Ok(colored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_decompose::forests::bounded_outdegree_orientation;
    use arbcolor_graph::generators;

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::cycle(4).unwrap();
        let o = Orientation::unoriented(&g);
        assert!(matches!(
            simple_arbdefective(&g, &o, 0, 1, 1),
            Err(CoreError::InvalidParameter { .. })
        ));
        let mut cyclic = Orientation::unoriented(&g);
        cyclic.orient_towards(&g, 0, 1).unwrap();
        cyclic.orient_towards(&g, 1, 2).unwrap();
        cyclic.orient_towards(&g, 2, 3).unwrap();
        cyclic.orient_towards(&g, 3, 0).unwrap();
        assert!(matches!(
            simple_arbdefective(&g, &cyclic, 2, 1, 0),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn complete_orientation_gives_floor_m_over_k_arbdefect() {
        for k in [1u64, 2, 3, 5] {
            let g = generators::union_of_random_forests(250, 3, 11).unwrap().with_shuffled_ids(4);
            let bounded = bounded_outdegree_orientation(&g, 3, 1.0).unwrap();
            let out = simple_arbdefective(&g, &bounded.orientation, k, bounded.out_degree_bound, 0)
                .unwrap();
            assert_eq!(out.arbdefect_bound, bounded.out_degree_bound / k as usize);
            assert!(out.coloring.max_color() < k);
            let worst = out.verify(&g).unwrap();
            assert!(worst <= out.arbdefect_bound);
        }
    }

    #[test]
    fn rounds_are_bounded_by_orientation_length() {
        let g = generators::union_of_random_forests(300, 2, 5).unwrap().with_shuffled_ids(9);
        let bounded = bounded_outdegree_orientation(&g, 2, 1.0).unwrap();
        let length = bounded.orientation.length(&g).unwrap();
        let out =
            simple_arbdefective(&g, &bounded.orientation, 2, bounded.out_degree_bound, 0).unwrap();
        assert!(
            out.report.rounds <= length + 1,
            "sweep took {} rounds on an orientation of length {length}",
            out.report.rounds
        );
    }

    #[test]
    fn partial_orientation_adds_deficit_to_the_bound() {
        let g = generators::gnp(100, 0.08, 3).unwrap().with_shuffled_ids(2);
        // Leave every edge unoriented: deficit = Δ, out-degree 0; with k = 1 all vertices get
        // the same color and the bound must absorb the whole degree.
        let o = Orientation::unoriented(&g);
        let out = simple_arbdefective(&g, &o, 1, 0, g.max_degree()).unwrap();
        assert_eq!(out.arbdefect_bound, g.max_degree());
        // Nobody waits for parents: the only cost is the single round in which the (already
        // final) choices are flushed to the neighbors.
        assert!(out.report.rounds <= 1, "got {} rounds", out.report.rounds);
        out.verify(&g).unwrap();
    }

    #[test]
    fn k_larger_than_out_degree_gives_deficit_only_bound() {
        let g = generators::union_of_random_forests(150, 2, 7).unwrap().with_shuffled_ids(3);
        let bounded = bounded_outdegree_orientation(&g, 2, 1.0).unwrap();
        let k = (bounded.out_degree_bound + 1) as u64;
        let out =
            simple_arbdefective(&g, &bounded.orientation, k, bounded.out_degree_bound, 0).unwrap();
        // ⌊m/k⌋ = 0, so every color class must be a forest-like (arboricity 0 means edgeless).
        assert_eq!(out.arbdefect_bound, 0);
        for (_, sub) in out.coloring.class_subgraphs(&g) {
            assert_eq!(sub.graph.m(), 0, "classes must be independent sets when the bound is 0");
        }
    }
}
