//! A single entry point over all of the paper's coloring modes.
//!
//! Downstream users usually do not care which theorem they are invoking — they have a graph,
//! an idea of its sparsity, and a preference on the colors/time trade-off.  [`ColoringGoal`]
//! names the regimes, [`color`] dispatches to the right Section 4/5 routine, and
//! [`recommend_goal`] picks a sensible default from the measured degeneracy of the graph.

use crate::error::CoreError;
use crate::legal_coloring::{
    a_one_plus_o1_coloring, a_power_coloring, o_a_coloring, one_shot_coloring,
    sparse_delta_plus_one, APowerParams, OaParams,
};
use crate::report::ColoringRun;
use crate::tradeoffs::{color_time_tradeoff, sub_quadratic_coloring};
use arbcolor_graph::{degeneracy, Graph};

/// The coloring regimes exposed by the paper, in decreasing order of palette quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColoringGoal {
    /// `O(a)` colors in `O(a^µ log n)` rounds (Theorem 4.3).
    FewestColors {
        /// The exponent `µ ∈ (0, 1)` of the running time.
        mu: f64,
    },
    /// `O(a)` colors from a single refinement step in `O(a^{2/3} log n)` rounds (Lemma 4.1).
    OneShot,
    /// `a^{1+o(1)}` colors in `O(f(a) log a log n)` rounds (Theorem 4.5).
    AlmostLinearColors,
    /// `O(a^{1+η})` colors in `O(log a · log n)` rounds (Corollary 4.6) — the headline.
    PolylogTime {
        /// The exponent `η > 0` of the palette.
        eta: f64,
    },
    /// At most `Δ + 1` colors on graphs with `a ≤ Δ^{1−ν}` (Corollary 4.7).
    SparseDeltaPlusOne {
        /// The sparsity exponent `ν ∈ (0, 1)`.
        nu: f64,
    },
    /// `O(a²/g)` colors in `O(log g · log n)` rounds (Theorem 5.2).
    SubQuadratic {
        /// The split value `g = g(a)`.
        g: usize,
    },
    /// `O(a·t)` colors in `O((a/t)^µ log n)` rounds (Theorem 5.3).
    ColorTimeTradeoff {
        /// The trade-off parameter `t ∈ [1, a]`.
        t: usize,
        /// The exponent `µ` of the per-class coloring time.
        mu: f64,
    },
}

/// Runs the paper's algorithm for the requested [`ColoringGoal`].
///
/// `arboricity` must upper-bound the arboricity of `graph` (the degeneracy always works);
/// `epsilon` is the H-partition slack used throughout.
///
/// # Errors
///
/// Propagates parameter and substrate errors from the underlying routine.
///
/// # Examples
///
/// ```
/// use arbcolor_graph::{generators, degeneracy};
/// use arbcolor::goal::{color, ColoringGoal};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::union_of_random_forests(300, 2, 1)?.with_shuffled_ids(2);
/// let a = degeneracy::degeneracy(&g);
/// let run = color(&g, a, ColoringGoal::PolylogTime { eta: 0.5 }, 1.0)?;
/// assert!(run.coloring.is_legal(&g));
/// # Ok(())
/// # }
/// ```
pub fn color(
    graph: &Graph,
    arboricity: usize,
    goal: ColoringGoal,
    epsilon: f64,
) -> Result<ColoringRun, CoreError> {
    match goal {
        ColoringGoal::FewestColors { mu } => {
            o_a_coloring(graph, arboricity, OaParams { mu, epsilon })
        }
        ColoringGoal::OneShot => one_shot_coloring(graph, arboricity, epsilon),
        ColoringGoal::AlmostLinearColors => a_one_plus_o1_coloring(graph, arboricity, epsilon),
        ColoringGoal::PolylogTime { eta } => {
            a_power_coloring(graph, arboricity, APowerParams { eta, epsilon })
        }
        ColoringGoal::SparseDeltaPlusOne { nu } => {
            sparse_delta_plus_one(graph, arboricity, nu, epsilon)
        }
        ColoringGoal::SubQuadratic { g } => {
            sub_quadratic_coloring(graph, arboricity, g, 1.0, epsilon)
        }
        ColoringGoal::ColorTimeTradeoff { t, mu } => {
            color_time_tradeoff(graph, arboricity, t, mu, epsilon)
        }
    }
}

/// Picks a reasonable goal for a graph: the headline `PolylogTime` regime when the graph is
/// genuinely sparse relative to its maximum degree (the paper's sweet spot), and the
/// `FewestColors` regime otherwise.
pub fn recommend_goal(graph: &Graph) -> (usize, ColoringGoal) {
    let a = degeneracy::degeneracy(graph).max(1);
    let delta = graph.max_degree().max(1);
    if (a * a) < delta {
        (a, ColoringGoal::PolylogTime { eta: 0.5 })
    } else {
        (a, ColoringGoal::FewestColors { mu: 0.5 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn every_goal_produces_a_legal_coloring() {
        let g = generators::union_of_random_forests(250, 3, 5).unwrap().with_shuffled_ids(6);
        let goals = [
            ColoringGoal::FewestColors { mu: 0.5 },
            ColoringGoal::OneShot,
            ColoringGoal::AlmostLinearColors,
            ColoringGoal::PolylogTime { eta: 0.5 },
            ColoringGoal::SparseDeltaPlusOne { nu: 0.5 },
            ColoringGoal::SubQuadratic { g: 2 },
            ColoringGoal::ColorTimeTradeoff { t: 2, mu: 0.5 },
        ];
        for goal in goals {
            let run = color(&g, 3, goal, 1.0).unwrap_or_else(|e| panic!("{goal:?}: {e}"));
            assert!(run.coloring.is_legal(&g), "{goal:?} produced an illegal coloring");
        }
    }

    #[test]
    fn recommendation_prefers_polylog_time_on_sparse_high_degree_graphs() {
        let stars = generators::star_forest_union(500, 2, 3, 7).unwrap();
        let (a, goal) = recommend_goal(&stars);
        assert!(a <= 4);
        assert!(matches!(goal, ColoringGoal::PolylogTime { .. }));

        let dense = generators::complete(30).unwrap();
        let (_, goal) = recommend_goal(&dense);
        assert!(matches!(goal, ColoringGoal::FewestColors { .. }));
    }

    #[test]
    fn recommended_goal_runs_end_to_end() {
        let g = generators::barabasi_albert(400, 2, 9).unwrap().with_shuffled_ids(10);
        let (a, goal) = recommend_goal(&g);
        let run = color(&g, a, goal, 1.0).unwrap();
        assert!(run.coloring.is_legal(&g));
        assert!(run.colors_used < g.max_degree());
    }
}
