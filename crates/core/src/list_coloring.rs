//! List-coloring instances: per-vertex color lists with slack and membership validation.
//!
//! The second headline algorithm of this repository, [`crate::ghaffari_kuhn`], solves the
//! `(deg+1)`-**list coloring** problem (Ghaffari–Kuhn, arXiv:2011.04511; the recursive
//! list-coloring viewpoint follows Kuhn, arXiv:1907.03797): every vertex `v` holds a private
//! list `Ψ(v)` of allowed colors with `|Ψ(v)| ≥ deg(v) + 1`, and the goal is a legal coloring
//! in which every vertex is colored from its own list.  The classical `(Δ+1)`-coloring problem
//! is the special case `Ψ(v) = {0, …, Δ}`; the `(deg+1)`-instance `Ψ(v) = {0, …, deg(v)}` is
//! the harder, fully local variant (a vertex generates its list from its own degree, with no
//! global knowledge beyond the color-space bound).
//!
//! [`ColorLists`] is the shared instance type: it owns the per-vertex lists — stored as one
//! CSR-shaped [`ColorPool`] (an offsets array plus a flat colors array, the same layout as
//! the graph's neighbor-id table), with the sorted/deduplicated invariant guaranteed at
//! construction — checks the greedy-slack condition, and independently verifies that a
//! produced coloring is both legal and list-respecting.

use crate::error::CoreError;
use arbcolor_graph::{Color, ColorPool, Coloring, Graph, Vertex};

/// A list-coloring instance: one sorted, deduplicated color list per vertex of a specific
/// [`Graph`], stored in a flat [`ColorPool`].
///
/// Like [`Coloring`], the instance does not hold a reference to its graph; the same graph
/// value must be passed to the query methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorLists {
    pool: ColorPool,
}

impl ColorLists {
    /// Creates an instance from one list per vertex.  Lists are sorted and deduplicated;
    /// every vertex must receive at least one color.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the number of lists differs from the number
    /// of vertices or some list is empty.
    pub fn new(graph: &Graph, lists: Vec<Vec<Color>>) -> Result<Self, CoreError> {
        if lists.len() != graph.n() {
            return Err(CoreError::InvalidParameter {
                reason: format!("got {} lists for {} vertices", lists.len(), graph.n()),
            });
        }
        let total = lists.iter().map(Vec::len).sum();
        let mut pool = ColorPool::with_capacity(lists.len(), total);
        for (v, list) in lists.into_iter().enumerate() {
            if list.is_empty() {
                return Err(CoreError::InvalidParameter {
                    reason: format!("vertex {v} has an empty color list"),
                });
            }
            pool.push_iter(list);
            pool.sort_dedup_list(v);
        }
        Ok(ColorLists { pool })
    }

    /// The uniform `(Δ+1)`-coloring instance: every vertex lists `{0, …, Δ}`.
    pub fn delta_plus_one(graph: &Graph) -> Self {
        let delta = graph.max_degree() as Color;
        let mut pool = ColorPool::with_capacity(graph.n(), graph.n() * (delta as usize + 1));
        for _ in 0..graph.n() {
            pool.push_iter(0..=delta);
        }
        ColorLists { pool }
    }

    /// The locally generated `(deg+1)`-list instance: vertex `v` lists `{0, …, deg(v)}`.
    ///
    /// Every list is contained in `{0, …, Δ}`, so any solution uses at most `Δ + 1` colors.
    pub fn degree_plus_one(graph: &Graph) -> Self {
        let mut pool = ColorPool::with_capacity(graph.n(), 2 * graph.m() + graph.n());
        for v in graph.vertices() {
            pool.push_iter(0..=graph.degree(v) as Color);
        }
        ColorLists { pool }
    }

    /// The list of vertex `v`, sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn list(&self, v: Vertex) -> &[Color] {
        self.pool.list(v)
    }

    /// The underlying flat pool of all lists, indexed by vertex.
    pub fn pool(&self) -> &ColorPool {
        &self.pool
    }

    /// Iterates over the lists in vertex order.
    pub fn iter(&self) -> impl Iterator<Item = &[Color]> + '_ {
        self.pool.iter()
    }

    /// Number of vertices covered by this instance.
    pub fn n(&self) -> usize {
        self.pool.len()
    }

    /// One more than the largest listed color: every solution lives in `[0, color_space)`.
    pub fn color_space(&self) -> u64 {
        self.pool.iter().filter_map(|l| l.last().copied()).max().map_or(0, |c| c + 1)
    }

    /// The minimum greedy slack `|Ψ(v)| − deg(v) − 1` over all vertices.  The `(deg+1)`-list
    /// coloring problem requires this to be non-negative.
    pub fn min_slack(&self, graph: &Graph) -> i64 {
        graph
            .vertices()
            .map(|v| self.pool.list(v).len() as i64 - graph.degree(v) as i64 - 1)
            .min()
            .unwrap_or(0)
    }

    /// Whether every vertex satisfies the greedy-slack condition `|Ψ(v)| ≥ deg(v) + 1`.
    pub fn has_greedy_slack(&self, graph: &Graph) -> bool {
        self.min_slack(graph) >= 0
    }

    /// Independently checks that `coloring` is legal on `graph` and colors every vertex from
    /// its own list.  Both checks short-circuit on the first violation — no conflict vector
    /// is materialized.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvariantViolated`] naming the first offending vertex or edge.
    pub fn verify(&self, graph: &Graph, coloring: &Coloring) -> Result<(), CoreError> {
        for v in graph.vertices() {
            if self.pool.list(v).binary_search(&coloring.color(v)).is_err() {
                return Err(CoreError::InvariantViolated {
                    reason: format!(
                        "vertex {v} is colored {} but its list is {:?}",
                        coloring.color(v),
                        self.pool.list(v)
                    ),
                });
            }
            for &u in graph.neighbors(v) {
                if u > v && coloring.color(u) == coloring.color(v) {
                    return Err(CoreError::InvariantViolated {
                        reason: format!("edge ({v}, {u}) is monochromatic"),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn construction_sorts_dedups_and_rejects_bad_shapes() {
        let g = generators::path(3).unwrap();
        let lists = ColorLists::new(&g, vec![vec![5, 1, 5], vec![2, 0], vec![3]]).unwrap();
        assert_eq!(lists.list(0), &[1, 5]);
        assert_eq!(lists.color_space(), 6);
        assert!(ColorLists::new(&g, vec![vec![1]]).is_err());
        assert!(ColorLists::new(&g, vec![vec![1], vec![], vec![2]]).is_err());
    }

    #[test]
    fn pool_layout_matches_the_per_vertex_views() {
        let g = generators::path(3).unwrap();
        let lists = ColorLists::new(&g, vec![vec![5, 1, 5], vec![2, 0], vec![3]]).unwrap();
        assert_eq!(lists.pool().len(), 3);
        assert_eq!(lists.pool().total_colors(), 5, "duplicates are gone from the flat pool");
        let collected: Vec<&[u64]> = lists.iter().collect();
        assert_eq!(collected, vec![&[1u64, 5][..], &[0, 2][..], &[3][..]]);
    }

    #[test]
    fn canonical_instances_have_greedy_slack() {
        let g = generators::union_of_random_forests(200, 3, 7).unwrap().with_shuffled_ids(2);
        let uniform = ColorLists::delta_plus_one(&g);
        let local = ColorLists::degree_plus_one(&g);
        assert!(uniform.has_greedy_slack(&g));
        assert!(local.has_greedy_slack(&g));
        assert_eq!(local.min_slack(&g), 0);
        assert_eq!(uniform.color_space(), g.max_degree() as u64 + 1);
        assert!(local.color_space() <= uniform.color_space());
        for v in g.vertices() {
            assert_eq!(local.list(v).len(), g.degree(v) + 1);
        }
    }

    #[test]
    fn verify_checks_membership_and_legality() {
        let g = generators::path(2).unwrap();
        let lists = ColorLists::new(&g, vec![vec![0, 1], vec![0, 1]]).unwrap();
        let good = Coloring::new(&g, vec![0, 1]).unwrap();
        assert!(lists.verify(&g, &good).is_ok());
        let monochromatic = Coloring::new(&g, vec![1, 1]).unwrap();
        assert!(lists.verify(&g, &monochromatic).is_err());
        let off_list = Coloring::new(&g, vec![0, 2]).unwrap();
        assert!(lists.verify(&g, &off_list).is_err());
    }
}
