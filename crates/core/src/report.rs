//! Uniform execution summaries returned by the top-level coloring entry points.

use arbcolor_graph::{Coloring, Graph};
use arbcolor_runtime::{CostLedger, RoundReport};
use serde::{Deserialize, Serialize};

/// The result of running one of the paper's coloring algorithms.
#[derive(Debug, Clone)]
pub struct ColoringRun {
    /// The computed (legal) coloring of the input graph.
    pub coloring: Coloring,
    /// Number of distinct colors actually used.
    pub colors_used: usize,
    /// Theoretical bound on the palette for the chosen parameters.
    pub palette_bound: u64,
    /// Total simulated LOCAL cost.
    pub report: RoundReport,
    /// Per-phase breakdown of the cost.
    pub ledger: CostLedger,
}

impl ColoringRun {
    /// Builds a run summary from its parts, computing `colors_used`.
    pub fn new(coloring: Coloring, palette_bound: u64, ledger: CostLedger) -> Self {
        let colors_used = coloring.distinct_colors();
        let report = ledger.total();
        ColoringRun { coloring, colors_used, palette_bound, report, ledger }
    }

    /// Produces the flat statistics row used by the experiment harness.
    pub fn stats(&self, graph: &Graph) -> RunStats {
        RunStats {
            n: graph.n(),
            m: graph.m(),
            max_degree: graph.max_degree(),
            colors_used: self.colors_used,
            palette_bound: self.palette_bound,
            rounds: self.report.rounds,
            messages: self.report.messages,
            legal: self.coloring.is_legal(graph),
        }
    }
}

/// Flat, serializable summary of a coloring run on a specific graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Maximum degree of the input graph.
    pub max_degree: usize,
    /// Number of distinct colors used.
    pub colors_used: usize,
    /// Theoretical palette bound for the chosen parameters.
    pub palette_bound: u64,
    /// Simulated LOCAL rounds.
    pub rounds: usize,
    /// Messages sent.
    pub messages: usize,
    /// Whether the output coloring is legal.
    pub legal: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn stats_reflect_the_coloring() {
        let g = generators::cycle(6).unwrap();
        let coloring = Coloring::new(&g, vec![0, 1, 0, 1, 0, 1]).unwrap();
        let mut ledger = CostLedger::new();
        ledger.push("phase", RoundReport::new(3, 12));
        let run = ColoringRun::new(coloring, 2, ledger);
        assert_eq!(run.colors_used, 2);
        assert_eq!(run.report, RoundReport::new(3, 12));
        let stats = run.stats(&g);
        assert!(stats.legal);
        assert_eq!(stats.n, 6);
        assert_eq!(stats.rounds, 3);
    }
}
