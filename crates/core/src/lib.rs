//! # arbcolor
//!
//! A from-scratch Rust implementation of **"Deterministic Distributed Vertex Coloring in
//! Polylogarithmic Time"** (Barenboim & Elkin, PODC 2010), on top of a faithful LOCAL-model
//! simulator.
//!
//! The paper answers Linial's long-standing open question: a *deterministic* distributed
//! algorithm can color every graph of arboricity `a` with `O(a^{1+η})` colors in
//! `O(log a · log n)` communication rounds (and with `O(a)` colors in `O(a^µ log n)` rounds),
//! exponentially faster than the previously known polylogarithmic-time algorithms which needed
//! `O(Δ²)` colors.
//!
//! ## The machinery (module map)
//!
//! * [`orientation_procs`] — Procedure **Complete-Orientation** (Lemma 3.3) and Procedure
//!   **Partial-Orientation** (Theorem 3.5): acyclic (partial) orientations with bounded
//!   out-degree, bounded *length* and bounded *deficit*.
//! * [`simple_arbdefective`] — Procedure **Simple-Arbdefective** (Theorem 3.2): a DAG sweep
//!   that turns an acyclic partial orientation into an arbdefective coloring.
//! * [`arbdefective_coloring`] — Procedure **Arbdefective-Coloring** (Corollary 3.6): the
//!   composition of the two procedures above.
//! * [`legal_coloring`] — Procedure **Legal-Coloring** (Algorithm 2; Lemma 4.1, Theorem 4.3,
//!   Corollary 4.4, Theorem 4.5, Corollaries 4.6 and 4.7): the recursive refinement driver
//!   and the parameter selections for every statement in Section 4.
//! * [`arb_kuhn`] — Algorithm **Arb-Kuhn** (Section 5, Lemma 5.1): arbdefective recoloring via
//!   low-agreement polynomial families, counting collisions only against parents.
//! * [`list_coloring`] — the shared `(deg+1)`-list coloring instance type ([`ColorLists`]):
//!   per-vertex color lists with slack and membership validation.
//! * [`ghaffari_kuhn`] — the second headline algorithm (Ghaffari–Kuhn, arXiv:2011.04511):
//!   deterministic `(deg+1)`-list coloring by recursive color-space halving over
//!   defective-coloring schedules, `O(log² Δ · log n)` rounds without network decomposition.
//! * [`hkmt`] — the randomized CONGEST headliner (Halldórsson–Kuhn–Maus–Tonoyan,
//!   arXiv:2012.14169): seeded multi-trial `(deg+1)`-list coloring whose messages stay at
//!   `O(log n)` bits, with a deterministic Ghaffari–Kuhn fallback for the leftover.
//! * [`dynamic`] — batched edge insertions with localized recoloring (conflict-frontier
//!   repair via the Ghaffari–Kuhn list driver, full-recolor fallback).
//! * [`tradeoffs`] — Theorems 5.2 and 5.3: trading colors for time.
//! * [`mis`] — maximal independent set in `O(a + a^µ log n)` rounds via the coloring reduction
//!   (Section 1.2).
//! * [`report`] — uniform execution summaries (colors, rounds, messages, verification).
//!
//! ## Quick start
//!
//! ```
//! use arbcolor_graph::{generators, degeneracy};
//! use arbcolor::legal_coloring::{a_power_coloring, APowerParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A graph with arboricity ≤ 3 but unbounded-looking degree.
//! let g = generators::union_of_random_forests(500, 3, 42)?.with_shuffled_ids(7);
//! let a = degeneracy::degeneracy(&g); // a ≤ degeneracy ≤ 2a − 1
//!
//! // Corollary 4.6: O(a^{1+η}) colors in O(log a · log n) rounds.
//! let run = a_power_coloring(&g, a, APowerParams { eta: 0.5, epsilon: 1.0 })?;
//! assert!(run.coloring.is_legal(&g));
//! println!("{} colors in {} simulated rounds", run.colors_used, run.report.rounds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arb_kuhn;
pub mod arbdefective_coloring;
pub mod dynamic;
pub mod error;
pub mod ghaffari_kuhn;
pub mod goal;
pub mod hkmt;
pub mod legal_coloring;
pub mod list_coloring;
pub mod mis;
pub mod orientation_procs;
pub mod report;
pub mod simple_arbdefective;
pub mod tradeoffs;

pub use error::CoreError;
pub use list_coloring::ColorLists;
pub use report::ColoringRun;
