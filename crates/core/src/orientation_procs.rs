//! Procedure **Complete-Orientation** (Lemma 3.3) and Procedure **Partial-Orientation**
//! (Algorithm 1, Theorem 3.5).
//!
//! Both procedures start from an H-partition of degree `A = ⌊(2+ε)a⌋` and orient every edge
//! towards the endpoint with the lexicographically larger `(bucket, color)` pair, where the
//! per-bucket coloring is
//!
//! * a **legal** `O(a)`-coloring for Complete-Orientation — every edge gets a direction, the
//!   out-degree is at most `A` and the length is `O(a · log n)`;
//! * a **`⌊a/t⌋`-defective `O(t²)`-coloring** for Partial-Orientation — edges joining
//!   same-bucket, same-color vertices stay *unoriented* (that is what the deficit pays for),
//!   the out-degree is at most `A`, the length drops to `O(t² · log n)` and the whole
//!   procedure runs in `O(log n)` rounds.

use crate::error::CoreError;
use arbcolor_decompose::defective::defective_coloring;
use arbcolor_decompose::hpartition::{h_partition, HPartition};
use arbcolor_decompose::linial::linial_coloring;
use arbcolor_decompose::reduction::greedy_reduce;
use arbcolor_graph::{Graph, InducedSubgraph, Orientation, Vertex};
use arbcolor_runtime::{
    default_executor, default_sequential_cutoff, parallel_max, CostLedger, RoundReport, WorkPool,
};

/// An acyclic (partial) orientation produced by one of the orientation procedures, together
/// with the parameters the paper's analysis guarantees for it.
#[derive(Debug, Clone)]
pub struct OrientedGraph {
    /// The orientation.
    pub orientation: Orientation,
    /// Guaranteed upper bound on the out-degree (`⌊(2+ε)a⌋`).
    pub out_degree_bound: usize,
    /// Guaranteed upper bound on the deficit (0 for Complete-Orientation, `⌊a/t⌋` for
    /// Partial-Orientation).
    pub deficit_bound: usize,
    /// Upper bound on the number of colors used inside any single bucket; directed paths can
    /// stay inside a bucket for at most this many edges, so the orientation length is at most
    /// `(bucket_palette_bound + 1) · ℓ` — the `O(a log n)` / `O(t² log n)` bounds of
    /// Lemma 3.3 and Theorem 3.5.
    pub bucket_palette_bound: usize,
    /// The measured length (longest consistently oriented path) of the orientation.
    pub measured_length: usize,
    /// The H-partition both procedures are built on.
    pub partition: HPartition,
    /// Per-phase LOCAL cost.
    pub ledger: CostLedger,
}

impl OrientedGraph {
    /// Total LOCAL cost.
    pub fn report(&self) -> RoundReport {
        self.ledger.total()
    }

    /// Independently re-checks out-degree, deficit and acyclicity against the graph.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvariantViolated`] if a guarantee does not hold.
    pub fn verify(&self, graph: &Graph) -> Result<(), CoreError> {
        if !self.orientation.is_acyclic(graph) {
            return Err(CoreError::InvariantViolated {
                reason: "orientation contains a directed cycle".to_string(),
            });
        }
        let out = self.orientation.max_out_degree(graph);
        if out > self.out_degree_bound {
            return Err(CoreError::InvariantViolated {
                reason: format!("out-degree {out} exceeds bound {}", self.out_degree_bound),
            });
        }
        let deficit = self.orientation.max_deficit(graph);
        if deficit > self.deficit_bound {
            return Err(CoreError::InvariantViolated {
                reason: format!("deficit {deficit} exceeds bound {}", self.deficit_bound),
            });
        }
        Ok(())
    }
}

/// Per-vertex keys `(bucket, color)` used to orient edges.
fn orient_by_keys(graph: &Graph, key: &[(usize, u64)]) -> Orientation {
    let mut orientation = Orientation::unoriented(graph);
    for &(u, v) in graph.edges() {
        if key[u] == key[v] {
            continue; // stays unoriented (only possible in Partial-Orientation)
        }
        let (from, to) = if key[u] < key[v] { (u, v) } else { (v, u) };
        orientation.orient_towards(graph, from, to).expect("endpoints come from the edge list");
    }
    orientation
}

/// Per-vertex `(bucket, color)` keys, the parallel cost of the bucket phase, and the palette
/// size used inside each bucket.
type BucketColorings = (Vec<(usize, u64)>, RoundReport, Vec<usize>);

/// Colors every bucket subgraph with the provided closure and returns the per-vertex
/// `(bucket, color)` keys plus the parallel cost of the bucket phase.
///
/// The H-partition buckets are vertex-disjoint and the LOCAL model already charges them as
/// one parallel phase, so when the process-wide executor configuration has a thread budget
/// (see [`arbcolor_runtime::set_default_executor`]) the buckets are materialized and colored
/// on a [`WorkPool`]; the result is identical either way.  Small graphs stay sequential —
/// the recursive drivers invoke this on many tiny subgraphs, and those should not pay pool
/// setup costs (the same rationale as the sharded executor's sequential cutoff).
fn color_buckets<F>(
    graph: &Graph,
    partition: &HPartition,
    color_bucket: F,
) -> Result<BucketColorings, CoreError>
where
    F: Fn(&Graph) -> Result<(Vec<u64>, RoundReport, usize), CoreError> + Send + Sync,
{
    let threads =
        if graph.n() <= default_sequential_cutoff() { 1 } else { default_executor().threads() };
    let order: Vec<usize> = (0..partition.buckets().len()).collect();
    color_buckets_in_order(graph, partition, &order, threads, color_bucket)
}

/// One bucket's coloring, before it is merged into the per-vertex keys.
type BucketResult = Result<(InducedSubgraph, Vec<u64>, RoundReport, usize), CoreError>;

/// [`color_buckets`] with an explicit bucket processing order and thread budget.
///
/// The buckets are vertex-disjoint and the model charges them as one parallel phase, so
/// neither the order in which the simulator happens to materialize them nor the number of
/// pool threads may ever influence the result; the property tests below drive this with
/// shuffled orders and varying thread counts.
fn color_buckets_in_order<F>(
    graph: &Graph,
    partition: &HPartition,
    order: &[usize],
    threads: usize,
    color_bucket: F,
) -> Result<BucketColorings, CoreError>
where
    F: Fn(&Graph) -> Result<(Vec<u64>, RoundReport, usize), CoreError> + Send + Sync,
{
    let buckets = partition.buckets();
    let selected: Vec<usize> = order.iter().copied().filter(|&b| !buckets[b].is_empty()).collect();
    let color_one = |bucket: usize| -> BucketResult {
        let sub = InducedSubgraph::new(graph, &buckets[bucket]);
        let (colors, report, palette) = color_bucket(&sub.graph)?;
        Ok((sub, colors, report, palette))
    };
    let colored: Vec<BucketResult> = if threads > 1 && selected.len() > 1 {
        WorkPool::new(threads).map(selected, |_, bucket| color_one(bucket))
    } else {
        selected.into_iter().map(color_one).collect()
    };

    // Merge in `order` sequence — deterministic regardless of which worker colored what.
    let mut key: Vec<(usize, u64)> = (0..graph.n()).map(|v| (partition.h_index[v], 0)).collect();
    let mut branch_reports = Vec::new();
    let mut palette_sizes = Vec::new();
    for result in colored {
        let (sub, colors, report, palette) = result?;
        branch_reports.push(report);
        palette_sizes.push(palette);
        for (child, &c) in colors.iter().enumerate() {
            let parent: Vertex = sub.map.to_parent(child);
            key[parent].1 = c;
        }
    }
    Ok((key, parallel_max(&branch_reports), palette_sizes))
}

/// Procedure **Complete-Orientation** (Lemma 3.3): a complete acyclic orientation with
/// out-degree `⌊(2+ε)a⌋` and length `O(a · log n)`.
///
/// # Errors
///
/// Propagates substrate errors; in particular the H-partition rejects under-estimated
/// arboricity bounds.
pub fn complete_orientation(
    graph: &Graph,
    arboricity: usize,
    epsilon: f64,
) -> Result<OrientedGraph, CoreError> {
    let mut ledger = CostLedger::new();
    let partition = h_partition(graph, arboricity, epsilon)?;
    ledger.push("h-partition", partition.report);
    let bound = partition.degree_bound;

    // Legally color every bucket with at most `A + 1` colors (buckets have maximum degree ≤ A).
    let (key, bucket_cost, palettes) = color_buckets(graph, &partition, |bucket| {
        let linial = linial_coloring(bucket)?;
        let palette = bucket.max_degree() as u64 + 1;
        let reduced = greedy_reduce(bucket, &linial.coloring, palette)?;
        let report = linial.report.then(reduced.report);
        Ok((reduced.coloring.colors().to_vec(), report, palette as usize))
    })?;
    ledger.push_parallel("bucket-legal-coloring", &[bucket_cost]);
    // Learning the neighbors' (bucket, color) keys takes one round.
    ledger.push("orientation", RoundReport::new(1, 2 * graph.m()));

    let orientation = orient_by_keys(graph, &key);
    let measured_length = orientation.length(graph)?;
    let oriented = OrientedGraph {
        orientation,
        out_degree_bound: bound,
        deficit_bound: 0,
        bucket_palette_bound: palettes.into_iter().max().unwrap_or(1),
        measured_length,
        partition,
        ledger,
    };
    oriented.verify(graph)?;
    Ok(oriented)
}

/// Procedure **Partial-Orientation** (Algorithm 1, Theorem 3.5): an acyclic partial
/// orientation with out-degree `⌊(2+ε)a⌋`, deficit at most `⌊a/t⌋` and length `O(t² · log n)`,
/// computed in `O(log n)` rounds.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `t = 0`; propagates substrate errors.
pub fn partial_orientation(
    graph: &Graph,
    arboricity: usize,
    t: usize,
    epsilon: f64,
) -> Result<OrientedGraph, CoreError> {
    if t == 0 {
        return Err(CoreError::InvalidParameter { reason: "t must be positive".to_string() });
    }
    let arboricity = arboricity.max(1);
    let mut ledger = CostLedger::new();
    let partition = h_partition(graph, arboricity, epsilon)?;
    ledger.push("h-partition", partition.report);
    let bound = partition.degree_bound;
    let deficit_bound = arboricity / t;

    // Defectively color every bucket: the defect parameter p is chosen per bucket so the
    // defect stays below ⌊a/t⌋ (buckets have maximum degree ≤ A = (2+ε)a, so p = O(t)).
    let (key, bucket_cost, palettes) = color_buckets(graph, &partition, |bucket| {
        let delta = bucket.max_degree();
        if delta == 0 {
            return Ok((vec![0; bucket.n()], RoundReport::zero(), 1));
        }
        let p = if deficit_bound == 0 {
            // A legal coloring is required (defect 0): fall back to Linial on the bucket.
            let linial = linial_coloring(bucket)?;
            return Ok((
                linial.coloring.colors().to_vec(),
                linial.report,
                linial.palette_bound as usize,
            ));
        } else {
            (delta * t).div_ceil(arboricity).max(1)
        };
        let defective = defective_coloring(bucket, p)?;
        if defective.measured_defect > deficit_bound {
            return Err(CoreError::InvariantViolated {
                reason: format!(
                    "bucket defect {} exceeds ⌊a/t⌋ = {deficit_bound}",
                    defective.measured_defect
                ),
            });
        }
        Ok((
            defective.output.coloring.colors().to_vec(),
            defective.output.report,
            defective.output.palette_bound as usize,
        ))
    })?;
    ledger.push_parallel("bucket-defective-coloring", &[bucket_cost]);
    ledger.push("orientation", RoundReport::new(1, 2 * graph.m()));

    let orientation = orient_by_keys(graph, &key);
    let measured_length = orientation.length(graph)?;
    let oriented = OrientedGraph {
        orientation,
        out_degree_bound: bound,
        deficit_bound,
        bucket_palette_bound: palettes.into_iter().max().unwrap_or(1),
        measured_length,
        partition,
        ledger,
    };
    oriented.verify(graph)?;
    Ok(oriented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbcolor_graph::generators;

    #[test]
    fn complete_orientation_matches_lemma_3_3() {
        for (k, n) in [(2usize, 200usize), (3, 300)] {
            let g = generators::union_of_random_forests(n, k, 3).unwrap().with_shuffled_ids(5);
            let oriented = complete_orientation(&g, k, 1.0).unwrap();
            oriented.verify(&g).unwrap();
            assert_eq!(oriented.orientation.unoriented_count(), 0);
            assert_eq!(oriented.deficit_bound, 0);
            // Length bound O(a log n): buckets contribute at most (A + 1) each, crossings ℓ − 1.
            let a_bound = oriented.out_degree_bound;
            let length_bound = (a_bound + 2) * (oriented.partition.num_buckets + 1);
            assert!(
                oriented.measured_length <= length_bound,
                "length {} exceeds O(a log n) bound {length_bound}",
                oriented.measured_length
            );
        }
    }

    #[test]
    fn partial_orientation_matches_theorem_3_5() {
        let k = 4usize;
        let g = generators::union_of_random_forests(400, k, 9).unwrap().with_shuffled_ids(6);
        for t in [1usize, 2, 4] {
            let oriented = partial_orientation(&g, k, t, 1.0).unwrap();
            oriented.verify(&g).unwrap();
            assert_eq!(oriented.deficit_bound, k / t);
            assert!(oriented.orientation.max_deficit(&g) <= k / t);
            assert!(oriented.orientation.max_out_degree(&g) <= oriented.out_degree_bound);
        }
    }

    #[test]
    fn partial_orientation_runs_in_few_rounds() {
        let g = generators::union_of_random_forests(600, 3, 2).unwrap().with_shuffled_ids(8);
        let oriented = partial_orientation(&g, 3, 2, 1.0).unwrap();
        // O(log n) rounds: the H-partition dominates; allow a generous constant.
        let bound = 12 * ((g.n() as f64).log2().ceil() as usize + 2);
        assert!(
            oriented.report().rounds <= bound,
            "rounds {} exceed O(log n) bound {bound}",
            oriented.report().rounds
        );
    }

    #[test]
    fn orientation_length_respects_the_bucket_palette_times_log_n_bound() {
        // The Theorem 3.5 / Lemma 3.3 length argument: a directed path alternates between at
        // most `palette` consecutive same-bucket edges and at most ℓ − 1 bucket crossings.
        let g = generators::gnp(400, 0.05, 7).unwrap().with_shuffled_ids(9);
        let a = arbcolor_graph::degeneracy::degeneracy(&g);
        for oriented in
            [complete_orientation(&g, a, 1.0).unwrap(), partial_orientation(&g, a, 2, 1.0).unwrap()]
        {
            let bound = (oriented.bucket_palette_bound + 1) * (oriented.partition.num_buckets + 1);
            assert!(
                oriented.measured_length <= bound,
                "length {} exceeds structural bound {bound}",
                oriented.measured_length
            );
            assert!(oriented.orientation.max_deficit(&g) <= oriented.deficit_bound);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let g = generators::path(5).unwrap();
        assert!(matches!(
            partial_orientation(&g, 1, 0, 1.0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(complete_orientation(&generators::complete(20).unwrap(), 1, 1.0).is_err());
    }

    mod bucket_order_independence {
        use super::super::*;
        use arbcolor_decompose::linial::linial_coloring;
        use arbcolor_decompose::reduction::greedy_reduce;
        use arbcolor_graph::generators;
        use proptest::prelude::*;

        /// The legal per-bucket coloring closure of Procedure Complete-Orientation.
        fn legal_bucket(bucket: &Graph) -> Result<(Vec<u64>, RoundReport, usize), CoreError> {
            let linial = linial_coloring(bucket)?;
            let palette = bucket.max_degree() as u64 + 1;
            let reduced = greedy_reduce(bucket, &linial.coloring, palette)?;
            let report = linial.report.then(reduced.report);
            Ok((reduced.coloring.colors().to_vec(), report, palette as usize))
        }

        /// Derives a deterministic permutation of `0..len` from a seed (Fisher–Yates with a
        /// SplitMix-style generator).
        fn permutation(len: usize, mut seed: u64) -> Vec<usize> {
            let mut order: Vec<usize> = (0..len).collect();
            for i in (1..len).rev() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (seed >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            order
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            #[test]
            fn processing_order_never_affects_legality_or_palette(
                n in 60usize..160,
                a in 2usize..5,
                seed in 0u64..1_000,
            ) {
                let g = generators::union_of_random_forests(n, a, seed)
                    .expect("valid parameters")
                    .with_shuffled_ids(seed + 1);
                let partition = h_partition(&g, a, 1.0).unwrap();
                let num_buckets = partition.buckets().len();
                let identity: Vec<usize> = (0..num_buckets).collect();
                let reversed: Vec<usize> = identity.iter().rev().copied().collect();
                let shuffled = permutation(num_buckets, seed ^ 0x5DEECE66D);

                let (base_key, base_cost, base_palettes) =
                    color_buckets_in_order(&g, &partition, &identity, 1, legal_bucket).unwrap();
                let base_orientation = orient_by_keys(&g, &base_key);
                prop_assert!(base_orientation.is_acyclic(&g));

                for order in [&reversed, &shuffled] {
                    let (key, cost, palettes) =
                        color_buckets_in_order(&g, &partition, order, 1, legal_bucket).unwrap();
                    // Same per-vertex (bucket, color) keys → same orientation, same legality.
                    prop_assert_eq!(&key, &base_key);
                    prop_assert_eq!(cost, base_cost);
                    prop_assert_eq!(
                        palettes.iter().max(),
                        base_palettes.iter().max(),
                        "palette bound depends on bucket order"
                    );
                    prop_assert_eq!(orient_by_keys(&g, &key), base_orientation.clone());
                }

                // The parallel variant: coloring the buckets on the work pool must return
                // exactly what the sequential path returns for the same processing order,
                // for any thread count.
                for threads in [2usize, 4] {
                    for order in [&identity, &shuffled] {
                        let (seq_key, seq_cost, seq_palettes) =
                            color_buckets_in_order(&g, &partition, order, 1, legal_bucket)
                                .unwrap();
                        let (par_key, par_cost, par_palettes) =
                            color_buckets_in_order(&g, &partition, order, threads, legal_bucket)
                                .unwrap();
                        prop_assert_eq!(&par_key, &seq_key);
                        prop_assert_eq!(par_cost, seq_cost);
                        prop_assert_eq!(&par_palettes, &seq_palettes);
                        prop_assert_eq!(&par_key, &base_key);
                    }
                }

                // The keys double as a legal coloring of the graph (distinct on every edge),
                // which is exactly what the downstream orientation relies on.
                for &(u, v) in g.edges() {
                    prop_assert_ne!(base_key[u], base_key[v]);
                }
            }
        }
    }

    #[test]
    fn figure_1_structure_few_bucket_crossings_on_directed_paths() {
        // Reproduces the structural claim of Figure 1: along any directed path the number of
        // edges crossing between different H-buckets is at most ℓ − 1.
        let g = generators::union_of_random_forests(500, 3, 13).unwrap().with_shuffled_ids(10);
        let oriented = partial_orientation(&g, 3, 3, 1.0).unwrap();
        let path = oriented.orientation.longest_path(&g).unwrap();
        let crossings = path
            .windows(2)
            .filter(|w| oriented.partition.h_index[w[0]] != oriented.partition.h_index[w[1]])
            .count();
        assert!(
            crossings < oriented.partition.num_buckets,
            "{crossings} crossings but only {} buckets",
            oriented.partition.num_buckets
        );
    }
}
