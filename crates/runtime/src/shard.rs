//! Sharded parallel execution of LOCAL algorithms.
//!
//! The LOCAL model charges one round of cost for all vertices acting *in parallel*, but the
//! sequential [`Executor`] simulates every node program on one thread, so
//! wall-clock time scales far worse than the round complexity the algorithms promise.  This
//! module closes that gap without giving up determinism:
//!
//! * [`WorkPool`] — a hand-rolled fixed-size work pool built from `std::thread` and `mpsc`
//!   channels only (the build environment has no registry access, so no rayon).  A pool is
//!   cheap to construct; [`WorkPool::scope`] spawns the workers, runs a closure that may
//!   submit any number of fork/join batches through [`PoolScope::map`], and joins all
//!   workers before returning.
//! * [`ShardedExecutor`] — partitions the vertex set into contiguous shards, keeps one flat
//!   arc-indexed mailbox buffer per shard (the message fabric of
//!   [`network`](crate::network): one slot per port, cleared in O(messages) and refilled
//!   from the merged batches), runs `init`/`round` for each shard's nodes on the pool, and
//!   exchanges cross-shard message batches at a deterministic per-round barrier.  Routing a
//!   message is pure index arithmetic: one mirror-arc read picks the receiver's slot, one
//!   O(1) shard-of division picks the destination batch, and drained batch
//!   vectors are recycled so steady-state rounds allocate nothing.
//! * [`ExecutorKind`] — a value describing which executor to use, plus a process-wide
//!   default ([`set_default_executor`]/[`default_executor`]) consulted by
//!   [`run_algorithm`], the entry point the algorithm drivers across the workspace go
//!   through.  Flipping the default reconfigures the whole stack.
//!
//! # Determinism guarantee
//!
//! For every graph, algorithm, shard count, and thread count, [`ShardedExecutor::run`]
//! produces **bit-identical** outputs, round counts, and message counts to the sequential
//! [`Executor`].  The argument:
//!
//! 1. Shards are contiguous vertex ranges in increasing vertex order, so concatenating the
//!    per-source-shard message batches in shard order reproduces the global
//!    sender-index order in every receiver's mailbox — exactly the order the sequential
//!    executor's delivery loop produces.
//! 2. Within a shard, nodes step in increasing vertex order and append to per-destination
//!    batches, so each batch is internally sender-ordered.
//! 3. The per-round barrier makes the exchange synchronous: no message produced in round
//!    `r` can be observed before round `r + 1`, regardless of which worker thread ran
//!    which shard, and the coordinator merges batches in a fixed order.
//!
//! Worker assignment therefore only decides *who* computes each shard, never *what* is
//! computed, so any thread count (including 1) yields the same execution.  The cross-crate
//! suite `tests/sharded_executor.rs` and the CI cross-executor diff enforce this.
//!
//! # Example
//!
//! ```
//! use arbcolor_graph::generators;
//! use arbcolor_runtime::{algorithms::FloodMaxId, Executor, ShardedExecutor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::cycle(64)?;
//! let algorithm = FloodMaxId { rounds: 8 };
//! let sequential = Executor::new(&g).run(&algorithm)?;
//! let sharded = ShardedExecutor::new(&g)
//!     .with_threads(2)
//!     .with_shards(3)
//!     .with_sequential_cutoff(0)
//!     .run(&algorithm)?;
//! assert_eq!(sequential.outputs, sharded.outputs);
//! assert_eq!(sequential.report, sharded.report);
//! # Ok(())
//! # }
//! ```

use crate::metrics::RoundReport;
use crate::network::{
    id_space_of, neighbor_id_table, node_ctx, ArcMailboxes, ExecutionResult, Executor,
    MailboxCursor, RuntimeError,
};
use crate::node::{Algorithm, NodeProgram, Outbox, Status};
use crate::reference::ReferenceExecutor;
use arbcolor_graph::{ArcIdx, Graph, Vertex};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

// ---------------------------------------------------------------------------
// Work pool
// ---------------------------------------------------------------------------

/// A unit of work shipped to a pool worker.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A hand-rolled fixed-size work pool: plain `std::thread` workers fed through `mpsc`
/// channels.
///
/// The pool itself is just a thread count; [`WorkPool::scope`] spawns the workers inside a
/// [`std::thread::scope`], so jobs may borrow data that outlives the scope call, and every
/// worker is joined before `scope` returns.  Use [`PoolScope::map`] for fork/join batches,
/// or the [`WorkPool::map`] convenience wrapper for a one-shot batch.
#[derive(Debug, Clone)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// Creates a pool that will run jobs on `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkPool { threads: threads.max(1) }
    }

    /// Number of worker threads this pool spawns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Spawns the workers, runs `f` with a [`PoolScope`] handle for submitting fork/join
    /// batches, then shuts the workers down and joins them.
    ///
    /// Jobs submitted through the scope must not themselves submit to the same scope (the
    /// API makes this impossible: jobs never see the [`PoolScope`]).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'env>) -> R) -> R {
        std::thread::scope(|s| {
            let mut workers = Vec::with_capacity(self.threads);
            for _ in 0..self.threads {
                let (sender, receiver) = mpsc::channel::<Job<'env>>();
                s.spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                });
                workers.push(sender);
            }
            f(&PoolScope { workers })
            // `PoolScope` (and with it every job sender) drops here, the workers' receive
            // loops end, and `std::thread::scope` joins them all.
        })
    }

    /// One-shot fork/join: spawns the workers, maps `f` over `items`, joins the workers.
    ///
    /// Results are returned in item order; see [`PoolScope::map`].
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Send + Sync,
    {
        self.scope(|scope| scope.map(items, f))
    }
}

/// Handle for submitting fork/join batches to a live [`WorkPool`] scope.
#[derive(Debug)]
pub struct PoolScope<'env> {
    workers: Vec<mpsc::Sender<Job<'env>>>,
}

impl<'env> PoolScope<'env> {
    /// Applies `f` to every item, distributing items round-robin over the workers, and
    /// blocks until all results are in.  Results are returned in item order, so the output
    /// is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if a job panics on a worker (the worker's panic is also propagated when the
    /// enclosing [`WorkPool::scope`] joins its threads).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'env,
        R: Send + 'env,
        F: Fn(usize, T) -> R + Send + Sync + 'env,
    {
        let count = items.len();
        if count == 0 {
            return Vec::new();
        }
        if self.workers.len() == 1 || count == 1 {
            // A single worker executes submissions in item order anyway; skip the channel
            // round-trips and run inline.
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let f = Arc::new(f);
        let (results_in, results_out) = mpsc::channel::<(usize, R)>();
        for (index, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let results_in = results_in.clone();
            let worker = &self.workers[index % self.workers.len()];
            worker
                .send(Box::new(move || {
                    // The coordinator may stop listening only after receiving all results,
                    // so this send can only fail during panic unwinding; ignore it then.
                    let _ = results_in.send((index, f(index, item)));
                }))
                .expect("pool worker exited before the scope ended");
        }
        drop(results_in);
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        for _ in 0..count {
            let (index, result) =
                results_out.recv().expect("a pool worker panicked while running a job");
            slots[index] = Some(result);
        }
        slots.into_iter().map(|slot| slot.expect("every job reports exactly once")).collect()
    }
}

// ---------------------------------------------------------------------------
// Executor selection
// ---------------------------------------------------------------------------

/// Which simulator implementation to run an algorithm on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// The single-threaded [`Executor`] on the flat message fabric.
    Sequential,
    /// The [`ShardedExecutor`] with explicit thread and shard counts.
    Sharded {
        /// Worker threads of the pool.
        threads: usize,
        /// Number of contiguous vertex shards.
        shards: usize,
    },
    /// The pre-fabric `Vec<Vec<…>>` [`ReferenceExecutor`] with linear-scan routing.  A test
    /// and bench oracle (the equivalence suites and experiment E18 race it against the flat
    /// executors); never faster, so not a production choice.
    Reference,
}

impl ExecutorKind {
    /// A sharded configuration with one shard per thread.
    pub fn sharded(threads: usize) -> Self {
        let threads = threads.max(1);
        ExecutorKind::Sharded { threads, shards: threads }
    }

    /// The worker-thread budget of this configuration (1 for [`ExecutorKind::Sequential`]).
    ///
    /// Phase drivers that parallelize *across* disjoint subgraphs (rather than across the
    /// vertices of one execution) use this as their pool size.
    pub fn threads(&self) -> usize {
        match self {
            ExecutorKind::Sequential | ExecutorKind::Reference => 1,
            ExecutorKind::Sharded { threads, .. } => (*threads).max(1),
        }
    }

    /// Runs `algorithm` on `graph` under this executor configuration.
    ///
    /// Both configurations produce bit-identical results; only wall-clock time differs.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the default round limit.
    pub fn run<A>(
        &self,
        graph: &Graph,
        algorithm: &A,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError>
    where
        A: Algorithm + Sync,
        A::Node: Send,
        <A::Node as NodeProgram>::Msg: Send,
        <A::Node as NodeProgram>::Output: Send,
    {
        match *self {
            ExecutorKind::Sequential => Executor::new(graph).run(algorithm),
            ExecutorKind::Sharded { threads, shards } => {
                ShardedExecutor::new(graph).with_threads(threads).with_shards(shards).run(algorithm)
            }
            ExecutorKind::Reference => ReferenceExecutor::new(graph).run(algorithm),
        }
    }
}

/// The process-wide default executor configuration (starts out sequential).
static DEFAULT_EXECUTOR: Mutex<ExecutorKind> = Mutex::new(ExecutorKind::Sequential);

/// Sets the process-wide default executor used by [`run_algorithm`].
///
/// Both kinds produce bit-identical results, so flipping the default mid-run changes
/// wall-clock behaviour only; binaries typically set it once from a CLI flag.
pub fn set_default_executor(kind: ExecutorKind) {
    *DEFAULT_EXECUTOR.lock().expect("executor-kind lock") = kind;
}

/// The current process-wide default executor configuration.
pub fn default_executor() -> ExecutorKind {
    *DEFAULT_EXECUTOR.lock().expect("executor-kind lock")
}

/// The process-wide default for the sharded executor's sequential cutoff (see
/// [`ShardedExecutor::with_sequential_cutoff`]).
static SEQUENTIAL_CUTOFF: AtomicUsize =
    AtomicUsize::new(ShardedExecutor::DEFAULT_SEQUENTIAL_CUTOFF);

/// Sets the process-wide default sequential cutoff picked up by new [`ShardedExecutor`]s
/// (and by the parallel phase drivers that mirror its small-work fallback).
///
/// Results are identical at any cutoff; lowering it only forces the parallel code paths on
/// smaller graphs.  The CI cross-executor gate runs the smoke tier with cutoff 0 so even
/// tiny workloads execute sharded and diff against the sequential rows.
pub fn set_default_sequential_cutoff(cutoff: usize) {
    SEQUENTIAL_CUTOFF.store(cutoff, Ordering::Relaxed);
}

/// The current process-wide default sequential cutoff.
pub fn default_sequential_cutoff() -> usize {
    SEQUENTIAL_CUTOFF.load(Ordering::Relaxed)
}

/// Runs `algorithm` on `graph` under the process-wide default executor configuration.
///
/// This is the entry point the algorithm drivers across the workspace use, so a single
/// [`set_default_executor`] call switches the whole stack between the sequential and the
/// sharded simulator.
///
/// # Errors
///
/// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate within
/// the default round limit.
pub fn run_algorithm<A>(
    graph: &Graph,
    algorithm: &A,
) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError>
where
    A: Algorithm + Sync,
    A::Node: Send,
    <A::Node as NodeProgram>::Msg: Send,
    <A::Node as NodeProgram>::Output: Send,
{
    default_executor().run(graph, algorithm)
}

// ---------------------------------------------------------------------------
// Shard layout
// ---------------------------------------------------------------------------

/// Balanced partition of `0..n` into contiguous shards: the first `n % shards` shards hold
/// `⌈n/shards⌉` vertices, the rest `⌊n/shards⌋`.
#[derive(Debug, Clone)]
struct ShardLayout {
    shards: usize,
    /// Vertices per small shard (`⌊n/shards⌋`).
    base: usize,
    /// Number of shards holding one extra vertex (`n % shards`).
    big: usize,
}

impl ShardLayout {
    fn new(n: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardLayout { shards, base: n / shards, big: n % shards }
    }

    fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning vertex `v`, in O(1).
    fn shard_of(&self, v: Vertex) -> usize {
        let split = self.big * (self.base + 1);
        if v < split {
            v / (self.base + 1)
        } else {
            self.big + (v - split) / self.base
        }
    }

    /// The contiguous vertex range of shard `s`.
    fn range(&self, s: usize) -> Range<usize> {
        let start = if s < self.big {
            s * (self.base + 1)
        } else {
            self.big * (self.base + 1) + (s - self.big) * self.base
        };
        let len = if s < self.big { self.base + 1 } else { self.base };
        start..start + len
    }

    fn ranges(&self) -> Vec<Range<usize>> {
        (0..self.shards).map(|s| self.range(s)).collect()
    }
}

// ---------------------------------------------------------------------------
// Sharded executor
// ---------------------------------------------------------------------------

/// A message batch from one source shard to one destination shard:
/// `(receiver arc, message)` pairs in sender order.  The arc index *is* the routing
/// information — it pins both the receiving vertex and its port.
type Batch<M> = Vec<(ArcIdx, M)>;

/// Everything one shard owns between rounds.
struct ShardState<N: NodeProgram> {
    /// First global vertex of the shard (vertices are `start..start + nodes.len()`).
    start: usize,
    contexts: Vec<crate::node::NodeCtx>,
    nodes: Vec<N>,
    active: Vec<bool>,
    active_count: usize,
    /// Flat arc-indexed mailboxes covering this shard's arc span; refilled from the merged
    /// incoming batches at every barrier (cleared in O(messages), capacity retained).
    mail: ArcMailboxes<N::Msg>,
    /// The one outbox every node of the shard reuses.
    outbox: Outbox<N::Msg>,
    /// Drained batch vectors recycled into the next round's outgoing batches.
    batch_pool: Vec<Batch<N::Msg>>,
}

/// What one shard reports back to the barrier after stepping its nodes.
struct StepOutput<M> {
    /// Outgoing batches indexed by destination shard.
    outgoing: Vec<Batch<M>>,
    /// Messages sent by this shard in this step.
    messages: usize,
}

/// Runs [`Algorithm`]s on a [`Graph`] by partitioning the vertices into contiguous shards
/// and stepping the shards on a [`WorkPool`], producing bit-identical results to the
/// sequential [`Executor`] (see the [module docs](self) for the argument).
///
/// Graphs at or below the [sequential cutoff](Self::with_sequential_cutoff) are delegated
/// to the sequential executor: the results are identical either way, and the many small
/// subgraph executions of the recursive drivers should not pay pool setup costs.
#[derive(Debug, Clone)]
pub struct ShardedExecutor<'g> {
    graph: &'g Graph,
    max_rounds: usize,
    threads: usize,
    shards: Option<usize>,
    sequential_cutoff: usize,
}

impl<'g> ShardedExecutor<'g> {
    /// Below this many vertices the sequential executor is used (results are identical; the
    /// pool only pays off once shards hold real work).
    pub const DEFAULT_SEQUENTIAL_CUTOFF: usize = 2048;

    /// Creates a sharded executor for `graph` with one thread (and one shard) per available
    /// CPU, the default round limit, and the process-wide default sequential cutoff (see
    /// [`set_default_sequential_cutoff`]).
    pub fn new(graph: &'g Graph) -> Self {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        ShardedExecutor {
            graph,
            max_rounds: Executor::DEFAULT_MAX_ROUNDS,
            threads,
            shards: None,
            sequential_cutoff: default_sequential_cutoff(),
        }
    }

    /// Overrides the round limit.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).  Unless
    /// [`with_shards`](Self::with_shards) is also called, the shard count follows the
    /// thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the shard count independently of the thread count (clamped to at least 1).
    ///
    /// The shard count never affects results — only how the vertex set is batched.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Sets the vertex count at or below which the sequential executor is used instead.
    /// Pass 0 to force the sharded path even on tiny graphs (the equivalence tests do).
    #[must_use]
    pub fn with_sequential_cutoff(mut self, cutoff: usize) -> Self {
        self.sequential_cutoff = cutoff;
        self
    }

    /// The graph this executor runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Runs `algorithm` until every node halts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the configured round limit.
    pub fn run<A>(
        &self,
        algorithm: &A,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError>
    where
        A: Algorithm + Sync,
        A::Node: Send,
        <A::Node as NodeProgram>::Msg: Send,
        <A::Node as NodeProgram>::Output: Send,
    {
        let n = self.graph.n();
        let shards = self.shards.unwrap_or(self.threads).max(1);
        if n <= self.sequential_cutoff || (self.threads == 1 && shards == 1) {
            return Executor::new(self.graph).with_max_rounds(self.max_rounds).run(algorithm);
        }

        let graph = self.graph;
        let layout = ShardLayout::new(n, shards);
        let id_space = id_space_of(graph);
        let id_table = neighbor_id_table(graph);
        let pool = WorkPool::new(self.threads);

        pool.scope(|scope| {
            // Build every shard's contexts and nodes (all borrowing the one shared
            // neighbor-id table), and run the initialization step (local computation plus
            // the sends of the first round), in parallel.
            let built = scope.map(layout.ranges(), |_, range| {
                let mut state = build_shard(graph, algorithm, id_space, &id_table, range);
                let out = step_shard(graph, &layout, &mut state, StepMode::Init);
                (state, out)
            });

            let mut report = RoundReport::zero();
            let mut states = Vec::with_capacity(shards);
            let mut outgoing = Vec::with_capacity(shards);
            let mut total_active = 0usize;
            let mut round_messages = 0usize;
            for (state, out) in built {
                report.messages += out.messages;
                round_messages += out.messages;
                total_active += state.active_count;
                states.push(state);
                outgoing.push(out.outgoing);
            }

            // Main loop: one iteration = one synchronous round, mirroring the sequential
            // executor statement for statement so round and message counts stay identical.
            while total_active > 0 || round_messages > 0 {
                if report.rounds >= self.max_rounds {
                    return Err(RuntimeError::RoundLimitExceeded {
                        limit: self.max_rounds,
                        still_active: total_active,
                    });
                }
                report.rounds += 1;

                // Barrier: regroup the outgoing batches by destination shard, keeping the
                // source-shard order (= global sender order, shards being contiguous).
                let mut per_dest: Vec<Vec<Batch<_>>> =
                    (0..shards).map(|_| Vec::with_capacity(shards)).collect();
                for source_row in outgoing.drain(..) {
                    for (dest, batch) in source_row.into_iter().enumerate() {
                        per_dest[dest].push(batch);
                    }
                }

                let stepped = scope.map(
                    states.drain(..).zip(per_dest).collect(),
                    |_, (mut state, incoming): (ShardState<A::Node>, Vec<Batch<_>>)| {
                        let out = step_shard(graph, &layout, &mut state, StepMode::Round(incoming));
                        (state, out)
                    },
                );

                total_active = 0;
                round_messages = 0;
                for (state, out) in stepped {
                    report.messages += out.messages;
                    round_messages += out.messages;
                    total_active += state.active_count;
                    states.push(state);
                    outgoing.push(out.outgoing);
                }
                if total_active == 0 {
                    break;
                }
            }

            let outputs = scope
                .map(states, |_, state| {
                    state
                        .nodes
                        .iter()
                        .zip(state.contexts.iter())
                        .map(|(node, ctx)| node.output(ctx))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            Ok(ExecutionResult { outputs, report })
        })
    }
}

/// Builds the contexts and node programs of one shard.
fn build_shard<A: Algorithm>(
    graph: &Graph,
    algorithm: &A,
    id_space: u64,
    id_table: &Arc<[u64]>,
    range: Range<usize>,
) -> ShardState<A::Node> {
    let len = range.len();
    let contexts: Vec<_> = range.clone().map(|v| node_ctx(graph, v, id_space, id_table)).collect();
    let nodes = contexts.iter().map(|ctx| algorithm.node(ctx)).collect();
    ShardState {
        start: range.start,
        contexts,
        nodes,
        active: vec![true; len],
        active_count: len,
        mail: ArcMailboxes::new(graph.arc_span(range)),
        outbox: Outbox::new(0),
        batch_pool: Vec::new(),
    }
}

/// Whether a shard step runs `init` or `round` (with the delivered batches).
enum StepMode<M> {
    Init,
    Round(Vec<Batch<M>>),
}

/// Steps every node of one shard, returning the outgoing batches and message count.
fn step_shard<N: NodeProgram>(
    graph: &Graph,
    layout: &ShardLayout,
    state: &mut ShardState<N>,
    mode: StepMode<N::Msg>,
) -> StepOutput<N::Msg> {
    let round = match mode {
        StepMode::Init => false,
        StepMode::Round(incoming) => {
            // Merge the delivered batches (source-shard order = sender order) into the flat
            // mailboxes, recycling the drained batch vectors, then seal for port-order
            // reads.
            state.mail.clear();
            for mut batch in incoming {
                for (arc, message) in batch.drain(..) {
                    state.mail.push(arc, message);
                }
                state.batch_pool.push(batch);
            }
            state.mail.seal();
            true
        }
    };

    let mut out = StepOutput {
        outgoing: (0..layout.shards())
            .map(|_| state.batch_pool.pop().unwrap_or_default())
            .collect(),
        messages: 0,
    };
    let mut cursor = MailboxCursor::default();
    for local in 0..state.nodes.len() {
        let arcs = graph.arc_range(state.start + local);
        let window = cursor.advance(&state.mail, arcs.end);
        if !state.active[local] {
            continue;
        }
        state.outbox.reset(state.contexts[local].degree);
        let status = if round {
            let inbox = state.mail.read(window, arcs);
            state.nodes[local].round(&state.contexts[local], &inbox, &mut state.outbox)
        } else {
            state.nodes[local].init(&state.contexts[local], &mut state.outbox)
        };
        if status == Status::Halted {
            state.active[local] = false;
            state.active_count -= 1;
        }
        route_outbox(graph, layout, state.start + local, &mut state.outbox, &mut out);
    }
    out
}

/// Routes the outbox of `sender` into per-destination-shard batches: one mirror-arc read
/// per message plus an O(1) shard-of division — pure index arithmetic, no adjacency scan.
fn route_outbox<M: Clone>(
    graph: &Graph,
    layout: &ShardLayout,
    sender: Vertex,
    outbox: &mut Outbox<M>,
    out: &mut StepOutput<M>,
) {
    let first_arc = graph.arc_range(sender).start;
    let mirror = graph.mirror_arcs();
    for (port, message) in outbox.drain() {
        let arc = first_arc + port;
        out.outgoing[layout.shard_of(graph.arc_target(arc))].push((mirror[arc], message));
        out.messages += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FloodMaxId, ProposeMaxId};
    use arbcolor_graph::generators;

    #[test]
    fn pool_map_returns_results_in_item_order() {
        for threads in [1usize, 2, 4, 7] {
            let pool = WorkPool::new(threads);
            assert_eq!(pool.threads(), threads);
            let squares = pool.map((0..40usize).collect(), |i, x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(squares, (0..40usize).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_scope_reuses_workers_across_batches() {
        let pool = WorkPool::new(3);
        let data: Vec<usize> = (0..10).collect();
        let total = pool.scope(|scope| {
            let doubled = scope.map(data.clone(), |_, x| 2 * x);
            let tripled = scope.map(doubled, |_, x| x + data[0]);
            tripled.into_iter().sum::<usize>()
        });
        assert_eq!(total, (0..10).map(|x| 2 * x).sum::<usize>());
    }

    #[test]
    fn pool_map_on_empty_input_is_empty() {
        let pool = WorkPool::new(4);
        let out: Vec<usize> = pool.map(Vec::<usize>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamp_to_one() {
        assert_eq!(WorkPool::new(0).threads(), 1);
        assert_eq!(ExecutorKind::sharded(0).threads(), 1);
    }

    #[test]
    fn shard_layout_is_a_balanced_contiguous_partition() {
        for (n, shards) in [(10usize, 3usize), (7, 7), (5, 8), (0, 4), (1, 1), (1000, 7)] {
            let layout = ShardLayout::new(n, shards);
            let mut covered = 0usize;
            for s in 0..layout.shards() {
                let range = layout.range(s);
                assert_eq!(range.start, covered, "ranges must be contiguous");
                for v in range.clone() {
                    assert_eq!(layout.shard_of(v), s, "shard_of({v}) for n={n}, shards={shards}");
                }
                covered = range.end;
            }
            assert_eq!(covered, n, "ranges must cover 0..n");
        }
    }

    #[test]
    fn sharded_executor_matches_sequential_on_a_cycle() {
        let g = generators::cycle(30).unwrap().with_shuffled_ids(7);
        let sequential = Executor::new(&g).run(&ProposeMaxId).unwrap();
        for shards in [1usize, 2, 3, 7] {
            for threads in [1usize, 2, 4] {
                let sharded = ShardedExecutor::new(&g)
                    .with_threads(threads)
                    .with_shards(shards)
                    .with_sequential_cutoff(0)
                    .run(&ProposeMaxId)
                    .unwrap();
                assert_eq!(sharded.outputs, sequential.outputs);
                assert_eq!(sharded.report, sequential.report);
            }
        }
    }

    #[test]
    fn sharded_round_limit_matches_sequential() {
        let g = generators::path(9).unwrap();
        let sequential =
            Executor::new(&g).with_max_rounds(3).run(&FloodMaxId { rounds: 100 }).unwrap_err();
        let sharded = ShardedExecutor::new(&g)
            .with_threads(2)
            .with_shards(3)
            .with_sequential_cutoff(0)
            .with_max_rounds(3)
            .run(&FloodMaxId { rounds: 100 })
            .unwrap_err();
        assert_eq!(sharded, sequential);
    }

    #[test]
    fn sharded_executor_handles_isolated_vertices_and_empty_graphs() {
        for n in [0usize, 5] {
            let g = Graph::empty(n);
            let result = ShardedExecutor::new(&g)
                .with_threads(2)
                .with_shards(3)
                .with_sequential_cutoff(0)
                .run(&ProposeMaxId)
                .unwrap();
            assert_eq!(result.report, RoundReport::zero());
            assert_eq!(result.outputs.len(), n);
        }
    }

    #[test]
    fn default_executor_round_trips() {
        let before = default_executor();
        set_default_executor(ExecutorKind::sharded(3));
        assert_eq!(default_executor().threads(), 3);
        set_default_executor(before);
    }

    #[test]
    fn executor_kind_dispatch_agrees_across_kinds() {
        let g = generators::grid(5, 6).unwrap().with_shuffled_ids(3);
        let sequential = ExecutorKind::Sequential.run(&g, &FloodMaxId { rounds: 4 }).unwrap();
        let sharded = ExecutorKind::Sharded { threads: 2, shards: 5 }
            .run(&g, &FloodMaxId { rounds: 4 })
            .unwrap();
        assert_eq!(sequential.outputs, sharded.outputs);
        assert_eq!(sequential.report, sharded.report);
    }
}
