//! Parallel execution of LOCAL algorithms by deterministic work-stealing.
//!
//! The LOCAL model charges one round of cost for all vertices acting *in parallel*, but the
//! sequential [`Executor`] simulates every node program on one thread, so
//! wall-clock time scales far worse than the round complexity the algorithms promise.  This
//! module closes that gap without giving up determinism:
//!
//! * [`WorkPool`] — a hand-rolled fixed-size work pool built from `std::thread` and `mpsc`
//!   channels only (the build environment has no registry access, so no rayon).  A pool is
//!   cheap to construct; [`WorkPool::scope`] spawns the workers, runs a closure that may
//!   submit any number of fork/join batches through [`PoolScope::map`], and joins all
//!   workers before returning.
//! * [`ShardedExecutor`] — steps each round's frontier (see [`frontier`](crate::frontier))
//!   in fixed-size chunks that worker threads **steal** off a shared atomic cursor.  The
//!   frontier replaces the fixed contiguous vertex shards of earlier revisions: work
//!   follows the vertices that actually act, so a round costs O(|frontier| + messages)
//!   regardless of `n`, and a collapsing frontier no longer leaves most workers idling over
//!   finalized vertices.
//! * [`ExecutorKind`] — a value describing which executor to use, plus a process-wide
//!   default ([`set_default_executor`]/[`default_executor`]) consulted by
//!   [`run_algorithm`], the entry point the algorithm drivers across the workspace go
//!   through.  Flipping the default reconfigures the whole stack.
//!
//! # Determinism guarantee
//!
//! For every graph, algorithm, chunk size, and thread count, [`ShardedExecutor::run`]
//! produces **bit-identical** outputs, round counts, and message counts to the sequential
//! [`Executor`].  The argument:
//!
//! 1. The round's work list is the sorted frontier — a deterministic vertex sequence fixed
//!    *before* any worker runs — split into fixed-size chunks.  The atomic claim cursor
//!    only decides **which worker** steps which chunk, never the chunk contents.
//! 2. Workers buffer everything they produce (outgoing `(arc, message)` pairs in
//!    vertex-then-port order, halts, wakeups) into per-chunk results; nothing is applied
//!    concurrently.  The coordinator then commits the chunks **in chunk order**, so the
//!    pending mailboxes receive messages in ascending sender order — exactly the order the
//!    sequential delivery loop produces, spill arrival included.
//! 3. The per-round barrier (the fork/join of [`PoolScope::map`]) makes the exchange
//!    synchronous: no message produced in round `r` is observable before round `r + 1`.
//!
//! Scheduling therefore decides *who* computes, never *what* is computed: any thread count
//! (including 1) and any chunk size yield the same execution.  The cross-crate suite
//! `tests/sharded_executor.rs` and the CI cross-executor diff enforce this at thread counts
//! {1, 2, 4} × chunk sizes {1, 64, 4096}.
//!
//! # Example
//!
//! ```
//! use arbcolor_graph::generators;
//! use arbcolor_runtime::{algorithms::FloodMaxId, Executor, ShardedExecutor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::cycle(64)?;
//! let algorithm = FloodMaxId { rounds: 8 };
//! let sequential = Executor::new(&g).run(&algorithm)?;
//! let stolen = ShardedExecutor::new(&g)
//!     .with_threads(2)
//!     .with_chunk_size(16)
//!     .with_sequential_cutoff(0)
//!     .run(&algorithm)?;
//! assert_eq!(sequential.outputs, stolen.outputs);
//! assert_eq!(sequential.report, stolen.report);
//! # Ok(())
//! # }
//! ```

use crate::cost::{default_cost_mode, BandwidthMeter, CostMode, MessageCost};
use crate::frontier::{ActiveSet, Frontier};
use crate::metrics::RoundReport;
use crate::network::{
    arc_owner, id_space_of, neighbor_id_table, node_ctx, ArcMailboxes, ExecutionResult, Executor,
    RuntimeError, TracedRun,
};
use crate::node::{Algorithm, NodeCtx, NodeProgram, Outbox, Status};
use crate::obs;
use crate::reference::ReferenceExecutor;
use crate::trace::{RoundTrace, TraceConfig, TraceRecorder};
use arbcolor_graph::{ArcIdx, Graph, Vertex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};

// ---------------------------------------------------------------------------
// Work pool
// ---------------------------------------------------------------------------

/// A unit of work shipped to a pool worker.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A hand-rolled fixed-size work pool: plain `std::thread` workers fed through `mpsc`
/// channels.
///
/// The pool itself is just a thread count; [`WorkPool::scope`] spawns the workers inside a
/// [`std::thread::scope`], so jobs may borrow data that outlives the scope call, and every
/// worker is joined before `scope` returns.  Use [`PoolScope::map`] for fork/join batches,
/// or the [`WorkPool::map`] convenience wrapper for a one-shot batch.
#[derive(Debug, Clone)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// Creates a pool that will run jobs on `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkPool { threads: threads.max(1) }
    }

    /// Number of worker threads this pool spawns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Spawns the workers, runs `f` with a [`PoolScope`] handle for submitting fork/join
    /// batches, then shuts the workers down and joins them.
    ///
    /// Jobs submitted through the scope must not themselves submit to the same scope (the
    /// API makes this impossible: jobs never see the [`PoolScope`]).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'env>) -> R) -> R {
        std::thread::scope(|s| {
            let mut workers = Vec::with_capacity(self.threads);
            for _ in 0..self.threads {
                let (sender, receiver) = mpsc::channel::<Job<'env>>();
                s.spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                });
                workers.push(sender);
            }
            f(&PoolScope { workers })
            // `PoolScope` (and with it every job sender) drops here, the workers' receive
            // loops end, and `std::thread::scope` joins them all.
        })
    }

    /// One-shot fork/join: spawns the workers, maps `f` over `items`, joins the workers.
    ///
    /// Results are returned in item order; see [`PoolScope::map`].
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Send + Sync,
    {
        self.scope(|scope| scope.map(items, f))
    }
}

/// Handle for submitting fork/join batches to a live [`WorkPool`] scope.
#[derive(Debug)]
pub struct PoolScope<'env> {
    workers: Vec<mpsc::Sender<Job<'env>>>,
}

impl<'env> PoolScope<'env> {
    /// Applies `f` to every item, distributing items round-robin over the workers, and
    /// blocks until all results are in.  Results are returned in item order, so the output
    /// is independent of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if a job panics on a worker (the worker's panic is also propagated when the
    /// enclosing [`WorkPool::scope`] joins its threads).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'env,
        R: Send + 'env,
        F: Fn(usize, T) -> R + Send + Sync + 'env,
    {
        let count = items.len();
        if count == 0 {
            return Vec::new();
        }
        if self.workers.len() == 1 || count == 1 {
            // A single worker executes submissions in item order anyway; skip the channel
            // round-trips and run inline.
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let f = Arc::new(f);
        let (results_in, results_out) = mpsc::channel::<(usize, R)>();
        for (index, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let results_in = results_in.clone();
            let worker = &self.workers[index % self.workers.len()];
            worker
                .send(Box::new(move || {
                    // The coordinator may stop listening only after receiving all results,
                    // so this send can only fail during panic unwinding; ignore it then.
                    let _ = results_in.send((index, f(index, item)));
                }))
                .expect("pool worker exited before the scope ended");
        }
        drop(results_in);
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        for _ in 0..count {
            let (index, result) =
                results_out.recv().expect("a pool worker panicked while running a job");
            slots[index] = Some(result);
        }
        slots.into_iter().map(|slot| slot.expect("every job reports exactly once")).collect()
    }
}

// ---------------------------------------------------------------------------
// Executor selection
// ---------------------------------------------------------------------------

/// Which simulator implementation to run an algorithm on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// The single-threaded [`Executor`] on the flat message fabric.
    Sequential,
    /// The work-stealing [`ShardedExecutor`] with explicit thread count and chunk size.
    Sharded {
        /// Worker threads of the pool.
        threads: usize,
        /// Vertices per stolen frontier chunk; 0 means "use the process-wide default"
        /// (see [`set_default_chunk_size`]).
        chunk_size: usize,
    },
    /// The pre-fabric `Vec<Vec<…>>` [`ReferenceExecutor`] with linear-scan routing.  A test
    /// and bench oracle (the equivalence suites and experiment E18 race it against the flat
    /// executors); never faster, so not a production choice.
    Reference,
}

impl ExecutorKind {
    /// A work-stealing configuration with the given thread count and the process-wide
    /// default chunk size.
    pub fn sharded(threads: usize) -> Self {
        ExecutorKind::Sharded { threads: threads.max(1), chunk_size: 0 }
    }

    /// The worker-thread budget of this configuration (1 for [`ExecutorKind::Sequential`]).
    ///
    /// Phase drivers that parallelize *across* disjoint subgraphs (rather than across the
    /// vertices of one execution) use this as their pool size.
    pub fn threads(&self) -> usize {
        match self {
            ExecutorKind::Sequential | ExecutorKind::Reference => 1,
            ExecutorKind::Sharded { threads, .. } => (*threads).max(1),
        }
    }

    /// Runs `algorithm` on `graph` under this executor configuration.
    ///
    /// All configurations produce bit-identical results; only wall-clock time differs.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the default round limit.
    pub fn run<A>(
        &self,
        graph: &Graph,
        algorithm: &A,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError>
    where
        A: Algorithm + Sync,
        A::Node: Send,
        <A::Node as NodeProgram>::Msg: Send + Sync,
        <A::Node as NodeProgram>::Output: Send,
    {
        match *self {
            ExecutorKind::Sequential => Executor::new(graph).run(algorithm),
            ExecutorKind::Sharded { threads, chunk_size } => {
                let mut executor = ShardedExecutor::new(graph).with_threads(threads);
                if chunk_size > 0 {
                    executor = executor.with_chunk_size(chunk_size);
                }
                executor.run(algorithm)
            }
            ExecutorKind::Reference => ReferenceExecutor::new(graph).run(algorithm),
        }
    }
}

/// The process-wide default executor configuration (starts out sequential).
static DEFAULT_EXECUTOR: Mutex<ExecutorKind> = Mutex::new(ExecutorKind::Sequential);

/// Sets the process-wide default executor used by [`run_algorithm`].
///
/// All kinds produce bit-identical results, so flipping the default mid-run changes
/// wall-clock behaviour only; binaries typically set it once from a CLI flag.
pub fn set_default_executor(kind: ExecutorKind) {
    *DEFAULT_EXECUTOR.lock().expect("executor-kind lock") = kind;
}

/// The current process-wide default executor configuration.
pub fn default_executor() -> ExecutorKind {
    *DEFAULT_EXECUTOR.lock().expect("executor-kind lock")
}

/// The process-wide default for the sharded executor's sequential cutoff (see
/// [`ShardedExecutor::with_sequential_cutoff`]).
static SEQUENTIAL_CUTOFF: AtomicUsize =
    AtomicUsize::new(ShardedExecutor::DEFAULT_SEQUENTIAL_CUTOFF);

/// Sets the process-wide default sequential cutoff picked up by new [`ShardedExecutor`]s
/// (and by the parallel phase drivers that mirror its small-work fallback).
///
/// Results are identical at any cutoff; lowering it only forces the parallel code paths on
/// smaller graphs.  The CI cross-executor gate runs the smoke tier with cutoff 0 so even
/// tiny workloads execute sharded and diff against the sequential rows.
pub fn set_default_sequential_cutoff(cutoff: usize) {
    SEQUENTIAL_CUTOFF.store(cutoff, Ordering::Relaxed);
}

/// The current process-wide default sequential cutoff.
pub fn default_sequential_cutoff() -> usize {
    SEQUENTIAL_CUTOFF.load(Ordering::Relaxed)
}

/// The process-wide default for the work-stealing chunk size (see
/// [`ShardedExecutor::with_chunk_size`]).
static CHUNK_SIZE: AtomicUsize = AtomicUsize::new(ShardedExecutor::DEFAULT_CHUNK_SIZE);

/// Sets the process-wide default chunk size picked up by new [`ShardedExecutor`]s (clamped
/// to at least 1).
///
/// Results are identical at any chunk size — the chunking only decides steal granularity.
/// Binaries expose it as `--chunk-size` so CI can diff a non-default granularity against
/// the sequential rows.
pub fn set_default_chunk_size(chunk_size: usize) {
    CHUNK_SIZE.store(chunk_size.max(1), Ordering::Relaxed);
}

/// The current process-wide default work-stealing chunk size.
pub fn default_chunk_size() -> usize {
    CHUNK_SIZE.load(Ordering::Relaxed)
}

/// Runs `algorithm` on `graph` under the process-wide default executor configuration.
///
/// This is the entry point the algorithm drivers across the workspace use, so a single
/// [`set_default_executor`] call switches the whole stack between the sequential and the
/// work-stealing simulator.
///
/// # Errors
///
/// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate within
/// the default round limit.
pub fn run_algorithm<A>(
    graph: &Graph,
    algorithm: &A,
) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError>
where
    A: Algorithm + Sync,
    A::Node: Send,
    <A::Node as NodeProgram>::Msg: Send + Sync,
    <A::Node as NodeProgram>::Output: Send,
{
    default_executor().run(graph, algorithm)
}

// ---------------------------------------------------------------------------
// Work-stealing executor
// ---------------------------------------------------------------------------

/// Everything one stolen chunk produced, buffered for an in-order commit: outgoing
/// `(receiver arc, message)` pairs in vertex-then-port order (the arc index *is* the
/// routing information — it pins both the receiving vertex and its port), plus the
/// vertices that halted or scheduled a wakeup.
struct ChunkOut<M> {
    outgoing: Vec<(ArcIdx, M)>,
    halts: Vec<Vertex>,
    wakeups: Vec<Vertex>,
    /// Vertices actually stepped in this chunk (the chunk's share of the round frontier).
    stepped: usize,
}

impl<M> ChunkOut<M> {
    fn new() -> Self {
        ChunkOut { outgoing: Vec::new(), halts: Vec::new(), wakeups: Vec::new(), stepped: 0 }
    }
}

/// Runs [`Algorithm`]s on a [`Graph`] by splitting each round's frontier into fixed-size
/// chunks that pool workers claim from a shared atomic cursor, committing results in chunk
/// order — bit-identical to the sequential [`Executor`] at any thread count and chunk size
/// (see the [module docs](self) for the argument).
///
/// Graphs at or below the [sequential cutoff](Self::with_sequential_cutoff) are delegated
/// to the sequential executor: the results are identical either way, and the many small
/// subgraph executions of the recursive drivers should not pay pool setup costs.
#[derive(Debug, Clone)]
pub struct ShardedExecutor<'g> {
    graph: &'g Graph,
    max_rounds: usize,
    threads: usize,
    chunk_size: usize,
    sequential_cutoff: usize,
    cost_mode: CostMode,
}

impl<'g> ShardedExecutor<'g> {
    /// Below this many vertices the sequential executor is used (results are identical; the
    /// pool only pays off once chunks hold real work).
    pub const DEFAULT_SEQUENTIAL_CUTOFF: usize = 2048;

    /// Default number of frontier vertices per stolen chunk: small enough to balance a
    /// skewed frontier across workers, large enough to amortize the claim.
    pub const DEFAULT_CHUNK_SIZE: usize = 1024;

    /// Creates a work-stealing executor for `graph` with one thread per available CPU, the
    /// default round limit, and the process-wide default sequential cutoff and chunk size
    /// (see [`set_default_sequential_cutoff`], [`set_default_chunk_size`]).
    pub fn new(graph: &'g Graph) -> Self {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        ShardedExecutor {
            graph,
            max_rounds: Executor::DEFAULT_MAX_ROUNDS,
            threads,
            chunk_size: default_chunk_size(),
            sequential_cutoff: default_sequential_cutoff(),
            cost_mode: default_cost_mode(),
        }
    }

    /// Overrides the round limit.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the number of frontier vertices per stolen chunk (clamped to at least 1).
    ///
    /// The chunk size never affects results — only how finely the frontier is dealt out to
    /// the workers.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Sets the vertex count at or below which the sequential executor is used instead.
    /// Pass 0 to force the work-stealing path even on tiny graphs (the equivalence tests
    /// do).
    #[must_use]
    pub fn with_sequential_cutoff(mut self, cutoff: usize) -> Self {
        self.sequential_cutoff = cutoff;
        self
    }

    /// Overrides the cost mode (see [`Executor::with_cost_mode`]); the accounting is
    /// bit-identical to the sequential executor's at any thread count and chunk size.
    #[must_use]
    pub fn with_cost_mode(mut self, cost_mode: CostMode) -> Self {
        self.cost_mode = cost_mode;
        self
    }

    /// The graph this executor runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Runs `algorithm` until every node halts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the configured round limit.
    pub fn run<A>(
        &self,
        algorithm: &A,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError>
    where
        A: Algorithm + Sync,
        A::Node: Send,
        <A::Node as NodeProgram>::Msg: Send + Sync,
        <A::Node as NodeProgram>::Output: Send,
    {
        self.run_inner(algorithm, None)
    }

    /// Runs `algorithm` like [`run`](Self::run), additionally recording one
    /// [`RoundTrace`] per round.  The deterministic trace columns (round, active nodes,
    /// frontier, messages, bits, halts) are bit-identical to the sequential
    /// [`Executor::run_traced`] at any thread count and chunk size; only `wall_ns` differs.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the configured round limit.
    pub fn run_traced<A>(
        &self,
        algorithm: &A,
    ) -> Result<TracedRun<<A::Node as NodeProgram>::Output>, RuntimeError>
    where
        A: Algorithm + Sync,
        A::Node: Send,
        <A::Node as NodeProgram>::Msg: Send + Sync,
        <A::Node as NodeProgram>::Output: Send,
    {
        self.run_traced_with(algorithm, TraceConfig::default())
    }

    /// Like [`run_traced`](Self::run_traced) with an explicit [`TraceConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the configured round limit.
    pub fn run_traced_with<A>(
        &self,
        algorithm: &A,
        config: TraceConfig,
    ) -> Result<TracedRun<<A::Node as NodeProgram>::Output>, RuntimeError>
    where
        A: Algorithm + Sync,
        A::Node: Send,
        <A::Node as NodeProgram>::Msg: Send + Sync,
        <A::Node as NodeProgram>::Output: Send,
    {
        let mut recorder = TraceRecorder::new();
        let result = self.run_inner(algorithm, Some((&mut recorder, config)))?;
        Ok((result, recorder))
    }

    fn run_inner<A>(
        &self,
        algorithm: &A,
        trace: Option<(&mut TraceRecorder, TraceConfig)>,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError>
    where
        A: Algorithm + Sync,
        A::Node: Send,
        <A::Node as NodeProgram>::Msg: Send + Sync,
        <A::Node as NodeProgram>::Output: Send,
    {
        let graph = self.graph;
        let n = graph.n();
        if n <= self.sequential_cutoff {
            let sequential = Executor::new(graph)
                .with_max_rounds(self.max_rounds)
                .with_cost_mode(self.cost_mode);
            return match trace {
                None => sequential.run(algorithm),
                Some((recorder, config)) => {
                    let (result, recorded) = sequential.run_traced_with(algorithm, config)?;
                    *recorder = recorded;
                    Ok(result)
                }
            };
        }
        let span = obs::exec_span(algorithm.name());
        let (mut trace, trace_config) = match trace {
            Some((recorder, config)) => (Some(recorder), config),
            None => (None, TraceConfig::default()),
        };

        let chunk = self.chunk_size.max(1);
        let id_space = id_space_of(graph);
        let id_table = neighbor_id_table(graph);
        let pool = WorkPool::new(self.threads);
        let workers = pool.threads();

        // Build contexts and node programs in parallel over contiguous ranges (results
        // concatenate in range order, so the build is deterministic), then wrap each node
        // in an uncontended per-vertex mutex: the runtime forbids unsafe code, and a vertex
        // is stepped by exactly one worker per round, so the locks never block.
        const BUILD_CHUNK: usize = 4096;
        let ranges: Vec<std::ops::Range<usize>> = (0..n.div_ceil(BUILD_CHUNK))
            .map(|c| c * BUILD_CHUNK..((c + 1) * BUILD_CHUNK).min(n))
            .collect();
        let mut contexts: Vec<NodeCtx> = Vec::with_capacity(n);
        let mut nodes: Vec<Mutex<A::Node>> = Vec::with_capacity(n);
        for (ctxs, ns) in pool.map(ranges, |_, range| {
            let ctxs: Vec<NodeCtx> =
                range.map(|v| node_ctx(graph, v, id_space, &id_table)).collect();
            let ns: Vec<Mutex<A::Node>> =
                ctxs.iter().map(|ctx| Mutex::new(algorithm.node(ctx))).collect();
            (ctxs, ns)
        }) {
            contexts.extend(ctxs);
            nodes.extend(ns);
        }

        // Shared round state.  Workers only ever read these during a fork/join batch; the
        // coordinator writes between batches, so the locks are uncontended.
        let inbox_lock: RwLock<ArcMailboxes<<A::Node as NodeProgram>::Msg>> =
            RwLock::new(ArcMailboxes::new(graph.arc_span(0..n)));
        let schedule_lock: RwLock<Vec<Vertex>> = RwLock::new(Vec::new());
        let active_lock: RwLock<ActiveSet> = RwLock::new(ActiveSet::new(n));
        let claim = AtomicUsize::new(0);
        // Shadow everything the worker closures capture with references: the closures are
        // `move` (they must not borrow the coordinator's per-round locals), and moving a
        // reference is a copy.
        let inbox_lock = &inbox_lock;
        let schedule_lock = &schedule_lock;
        let active_lock = &active_lock;
        let claim = &claim;
        let contexts = &contexts;
        let nodes = &nodes;

        let report = pool.scope(|scope| {
            let mut report = RoundReport::zero();
            let mut frontier = Frontier::new(n);
            let mut meter = BandwidthMeter::new(graph.num_arcs());
            let mut pending: ArcMailboxes<<A::Node as NodeProgram>::Msg> =
                ArcMailboxes::new(graph.arc_span(0..n));

            // Initialization: `init` runs for every vertex, in work-stolen chunks of
            // `0..n`.  Like every step, results are committed in chunk order.
            let init_chunks = n.div_ceil(chunk);
            claim.store(0, Ordering::SeqCst);
            let produced = scope.map(vec![(); workers], move |_, ()| {
                let mut produced: Vec<(usize, ChunkOut<_>)> = Vec::new();
                let mut outbox = Outbox::new(0);
                loop {
                    let c = claim.fetch_add(1, Ordering::Relaxed);
                    if c >= init_chunks {
                        break;
                    }
                    let mut out = ChunkOut::new();
                    for v in c * chunk..((c + 1) * chunk).min(n) {
                        outbox.reset(contexts[v].degree);
                        let status =
                            nodes[v].lock().expect("node lock").init(&contexts[v], &mut outbox);
                        let woke = contexts[v].take_wake();
                        if status == Status::Halted {
                            out.halts.push(v);
                        } else if woke {
                            out.wakeups.push(v);
                        }
                        route_outbox(graph, v, &mut outbox, &mut out);
                    }
                    produced.push((c, out));
                }
                produced
            });
            let init_messages = commit_chunks(
                graph,
                produced,
                &mut pending,
                &mut frontier,
                &mut active_lock.write().expect("active lock"),
                &mut meter,
                None,
            )
            .messages;
            report.messages += init_messages;
            // Delivery-side trace attribution, as in the sequential executor: round `r`
            // records what it delivers (the sends of round `r − 1`; round 1 carries `init`).
            let mut carry_messages = init_messages;
            let mut carry_bits =
                meter.finish_round(graph, report.rounds + 1, self.cost_mode, &mut report)?;
            let mut any_outgoing = init_messages > 0;
            let mut total_active = active_lock.read().expect("active lock").count();

            // Main loop: one iteration = one synchronous round, mirroring the sequential
            // executor statement for statement so round and message counts stay identical.
            while total_active > 0 || any_outgoing {
                if report.rounds >= self.max_rounds {
                    return Err(RuntimeError::RoundLimitExceeded {
                        limit: self.max_rounds,
                        still_active: total_active,
                    });
                }
                report.rounds += 1;
                let round_started = trace.as_ref().map(|_| std::time::Instant::now());
                let active_at_start = total_active;
                let messages_before = report.messages;
                let mut halted_this_round: Vec<Vertex> = Vec::new();

                // Flip the mailbox double buffer and publish the round's sorted frontier.
                {
                    let mut inboxes = inbox_lock.write().expect("inbox lock");
                    std::mem::swap(&mut pending, &mut *inboxes);
                    pending.clear();
                    inboxes.seal();
                }
                let round_chunks = {
                    let mut schedule = schedule_lock.write().expect("schedule lock");
                    frontier.take(&mut schedule);
                    schedule.len().div_ceil(chunk)
                };
                claim.store(0, Ordering::SeqCst);

                let produced = scope.map(vec![(); workers], move |_, ()| {
                    let schedule = schedule_lock.read().expect("schedule lock");
                    let inboxes = inbox_lock.read().expect("inbox lock");
                    let alive = active_lock.read().expect("active lock");
                    let mut produced: Vec<(usize, ChunkOut<_>)> = Vec::new();
                    let mut outbox = Outbox::new(0);
                    loop {
                        let c = claim.fetch_add(1, Ordering::Relaxed);
                        if c >= round_chunks {
                            break;
                        }
                        let mut out = ChunkOut::new();
                        for &v in &schedule[c * chunk..((c + 1) * chunk).min(schedule.len())] {
                            if !alive.is_active(v) {
                                // Mail to a halted vertex is dropped unread (it was
                                // counted at send time), as in the sequential executor.
                                continue;
                            }
                            out.stepped += 1;
                            let arcs = graph.arc_range(v);
                            let window = inboxes.window_of(arcs.clone());
                            let inbox = inboxes.read(window, arcs);
                            outbox.reset(contexts[v].degree);
                            let status = nodes[v].lock().expect("node lock").round(
                                &contexts[v],
                                &inbox,
                                &mut outbox,
                            );
                            let woke = contexts[v].take_wake();
                            if status == Status::Halted {
                                out.halts.push(v);
                            } else if woke {
                                out.wakeups.push(v);
                            }
                            route_outbox(graph, v, &mut outbox, &mut out);
                        }
                        produced.push((c, out));
                    }
                    produced
                });

                let halted_sink = (trace.is_some() && trace_config.capture_halted)
                    .then_some(&mut halted_this_round);
                let stats = commit_chunks(
                    graph,
                    produced,
                    &mut pending,
                    &mut frontier,
                    &mut active_lock.write().expect("active lock"),
                    &mut meter,
                    halted_sink,
                );
                report.messages += stats.messages;
                let round_bits =
                    meter.finish_round(graph, report.rounds + 1, self.cost_mode, &mut report)?;
                if let Some(recorder) = trace.as_deref_mut() {
                    recorder.record(RoundTrace {
                        round: report.rounds,
                        active_nodes: active_at_start,
                        frontier: stats.stepped,
                        messages: carry_messages,
                        total_bits: carry_bits.total,
                        max_edge_bits: carry_bits.max_edge,
                        halts: stats.halts,
                        halted: halted_this_round,
                        wall_ns: round_started
                            .map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                            .unwrap_or(0),
                    });
                }
                carry_messages = report.messages - messages_before;
                carry_bits = round_bits;
                any_outgoing = stats.messages > 0;
                total_active = active_lock.read().expect("active lock").count();
                if total_active == 0 {
                    break;
                }
            }
            Ok(report)
        })?;

        let outputs = nodes
            .iter()
            .zip(contexts.iter())
            .map(|(node, ctx)| node.lock().expect("node lock").output(ctx))
            .collect();
        span.charge(report);
        if let Some(recorder) = trace {
            span.attach_trace(recorder);
        }
        obs::record_run(&report);
        Ok(ExecutionResult { outputs, report })
    }
}

/// Routes a stepped vertex's outbox into its chunk's buffered output: one mirror-arc read
/// per message, no adjacency scan, appended in port order so the chunk's `outgoing` list
/// stays in global sender order.
fn route_outbox<M: Clone>(
    graph: &Graph,
    sender: Vertex,
    outbox: &mut Outbox<M>,
    out: &mut ChunkOut<M>,
) {
    let first_arc = graph.arc_range(sender).start;
    let mirror = graph.mirror_arcs();
    for (port, message) in outbox.drain() {
        out.outgoing.push((mirror[first_arc + port], message));
    }
}

/// What [`commit_chunks`] applied, summed over the committed chunks.
#[derive(Debug, Default, Clone, Copy)]
struct CommitStats {
    /// Messages pushed into the pending mailboxes.
    messages: usize,
    /// Vertices the workers actually stepped (the round's frontier).
    stepped: usize,
    /// Vertices that halted.
    halts: usize,
}

/// Commits the chunks produced by one fork/join step **in chunk order**: pushes the
/// outgoing messages into the pending mailboxes (ascending sender order — the order the
/// sequential delivery loop produces), charges each message's measured width to its arc in
/// `meter`, marks every receiver and self-scheduled wakeup in the frontier, and applies the
/// halts.  When `halted_sink` is given, the halted vertices are also collected into it (in
/// chunk order = ascending vertex order, matching the sequential trace).
fn commit_chunks<M: MessageCost>(
    graph: &Graph,
    produced: Vec<Vec<(usize, ChunkOut<M>)>>,
    pending: &mut ArcMailboxes<M>,
    frontier: &mut Frontier,
    active: &mut ActiveSet,
    meter: &mut BandwidthMeter,
    mut halted_sink: Option<&mut Vec<Vertex>>,
) -> CommitStats {
    let mut chunks: Vec<(usize, ChunkOut<M>)> = produced.into_iter().flatten().collect();
    chunks.sort_unstable_by_key(|&(c, _)| c);
    let mut stats = CommitStats::default();
    for (_, out) in chunks {
        stats.messages += out.outgoing.len();
        stats.stepped += out.stepped;
        stats.halts += out.halts.len();
        for (arc, message) in out.outgoing {
            meter.add(arc, message.encoded_bits());
            pending.push(arc, message);
            frontier.mark(arc_owner(graph, arc));
        }
        if let Some(sink) = halted_sink.as_deref_mut() {
            sink.extend_from_slice(&out.halts);
        }
        for v in out.halts {
            active.halt(v);
        }
        for v in out.wakeups {
            frontier.mark(v);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FloodMaxId, ProposeMaxId};
    use arbcolor_graph::generators;

    #[test]
    fn pool_map_returns_results_in_item_order() {
        for threads in [1usize, 2, 4, 7] {
            let pool = WorkPool::new(threads);
            assert_eq!(pool.threads(), threads);
            let squares = pool.map((0..40usize).collect(), |i, x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(squares, (0..40usize).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_scope_reuses_workers_across_batches() {
        let pool = WorkPool::new(3);
        let data: Vec<usize> = (0..10).collect();
        let total = pool.scope(|scope| {
            let doubled = scope.map(data.clone(), |_, x| 2 * x);
            let tripled = scope.map(doubled, |_, x| x + data[0]);
            tripled.into_iter().sum::<usize>()
        });
        assert_eq!(total, (0..10).map(|x| 2 * x).sum::<usize>());
    }

    #[test]
    fn pool_map_on_empty_input_is_empty() {
        let pool = WorkPool::new(4);
        let out: Vec<usize> = pool.map(Vec::<usize>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamp_to_one() {
        assert_eq!(WorkPool::new(0).threads(), 1);
        assert_eq!(ExecutorKind::sharded(0).threads(), 1);
    }

    #[test]
    fn work_stealing_matches_sequential_on_a_cycle() {
        let g = generators::cycle(30).unwrap().with_shuffled_ids(7);
        let sequential = Executor::new(&g).run(&ProposeMaxId).unwrap();
        for chunk_size in [1usize, 4, 64] {
            for threads in [1usize, 2, 4] {
                let stolen = ShardedExecutor::new(&g)
                    .with_threads(threads)
                    .with_chunk_size(chunk_size)
                    .with_sequential_cutoff(0)
                    .run(&ProposeMaxId)
                    .unwrap();
                assert_eq!(stolen.outputs, sequential.outputs);
                assert_eq!(stolen.report, sequential.report);
            }
        }
    }

    #[test]
    fn work_stealing_round_limit_matches_sequential() {
        let g = generators::path(9).unwrap();
        let sequential =
            Executor::new(&g).with_max_rounds(3).run(&FloodMaxId { rounds: 100 }).unwrap_err();
        let stolen = ShardedExecutor::new(&g)
            .with_threads(2)
            .with_chunk_size(2)
            .with_sequential_cutoff(0)
            .with_max_rounds(3)
            .run(&FloodMaxId { rounds: 100 })
            .unwrap_err();
        assert_eq!(stolen, sequential);
    }

    #[test]
    fn work_stealing_handles_isolated_vertices_and_empty_graphs() {
        for n in [0usize, 5] {
            let g = Graph::empty(n);
            let result = ShardedExecutor::new(&g)
                .with_threads(2)
                .with_chunk_size(2)
                .with_sequential_cutoff(0)
                .run(&ProposeMaxId)
                .unwrap();
            assert_eq!(result.report, RoundReport::zero());
            assert_eq!(result.outputs.len(), n);
        }
    }

    #[test]
    fn default_executor_round_trips() {
        let before = default_executor();
        set_default_executor(ExecutorKind::sharded(3));
        assert_eq!(default_executor().threads(), 3);
        set_default_executor(before);
    }

    #[test]
    fn default_chunk_size_round_trips_and_clamps() {
        let before = default_chunk_size();
        set_default_chunk_size(64);
        assert_eq!(default_chunk_size(), 64);
        set_default_chunk_size(0);
        assert_eq!(default_chunk_size(), 1, "chunk size clamps to at least 1");
        set_default_chunk_size(before);
    }

    #[test]
    fn executor_kind_dispatch_agrees_across_kinds() {
        let g = generators::grid(5, 6).unwrap().with_shuffled_ids(3);
        let sequential = ExecutorKind::Sequential.run(&g, &FloodMaxId { rounds: 4 }).unwrap();
        let stolen = ExecutorKind::Sharded { threads: 2, chunk_size: 5 }
            .run(&g, &FloodMaxId { rounds: 4 })
            .unwrap();
        assert_eq!(sequential.outputs, stolen.outputs);
        assert_eq!(sequential.report, stolen.report);
    }
}
