//! The reference executor: the pre-fabric `Vec<Vec<(port, message)>>` implementation.
//!
//! This is the simulator exactly as it worked before the arc-indexed message fabric: pending
//! messages are pushed into per-vertex mailboxes in sender order, and every delivery derives
//! the receiver's port with a linear scan of the receiver's adjacency list (the old
//! `port_of` behaviour — deliberately *not* the mirror table, so the two implementations
//! share no routing code).  It is kept for two jobs:
//!
//! * **Oracle.**  `tests/message_fabric.rs` pins the flat-mailbox executors to this one:
//!   outputs, rounds, and message counts must stay bit-identical on the generator suite and
//!   the headline pipelines.
//! * **Baseline.**  Experiment E18 and the `routing` Criterion group race old-vs-new
//!   delivery; [`ExecutorKind::Reference`](crate::ExecutorKind) dispatches whole pipelines
//!   onto it.
//!
//! It is not optimized, and should not be used outside tests and benches.

use crate::cost::{default_cost_mode, BandwidthMeter, CostMode, MessageCost};
use crate::metrics::RoundReport;
use crate::network::{
    id_space_of, neighbor_id_table, node_ctx, ExecutionResult, RuntimeError, TracedRun,
};
use crate::node::{Algorithm, Inbox, NodeProgram, Outbox, Status};
use crate::obs;
use crate::trace::{RoundTrace, TraceConfig, TraceRecorder};
use arbcolor_graph::Graph;

/// Runs [`Algorithm`]s with per-vertex `Vec` mailboxes and linear-scan routing (see the
/// module docs).  API mirrors [`Executor`](crate::Executor).
#[derive(Debug, Clone)]
pub struct ReferenceExecutor<'g> {
    graph: &'g Graph,
    max_rounds: usize,
    cost_mode: CostMode,
}

impl<'g> ReferenceExecutor<'g> {
    /// Creates a reference executor for `graph` with the default round limit and the
    /// process-wide default cost mode.
    pub fn new(graph: &'g Graph) -> Self {
        ReferenceExecutor {
            graph,
            max_rounds: crate::Executor::DEFAULT_MAX_ROUNDS,
            cost_mode: default_cost_mode(),
        }
    }

    /// Overrides the round limit.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the cost mode (see [`Executor::with_cost_mode`](crate::Executor::with_cost_mode));
    /// the oracle's bandwidth accounting must stay bit-identical to the flat executors'.
    #[must_use]
    pub fn with_cost_mode(mut self, cost_mode: CostMode) -> Self {
        self.cost_mode = cost_mode;
        self
    }

    /// The graph this executor runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Runs `algorithm` until every node halts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the configured round limit.
    pub fn run<A: Algorithm>(
        &self,
        algorithm: &A,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError> {
        self.run_inner(algorithm, None)
    }

    /// Runs `algorithm` like [`run`](Self::run), additionally recording one
    /// [`RoundTrace`] per round.  All deterministic trace columns are bit-identical to the
    /// flat executors' **except** `frontier`: this executor has no frontier — it steps every
    /// active vertex each round — so its `frontier` equals `active_nodes`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the configured round limit.
    pub fn run_traced<A: Algorithm>(
        &self,
        algorithm: &A,
    ) -> Result<TracedRun<<A::Node as NodeProgram>::Output>, RuntimeError> {
        self.run_traced_with(algorithm, TraceConfig::default())
    }

    /// Like [`run_traced`](Self::run_traced) with an explicit [`TraceConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RoundLimitExceeded`] if the algorithm does not terminate
    /// within the configured round limit.
    pub fn run_traced_with<A: Algorithm>(
        &self,
        algorithm: &A,
        config: TraceConfig,
    ) -> Result<TracedRun<<A::Node as NodeProgram>::Output>, RuntimeError> {
        let mut recorder = TraceRecorder::new();
        let result = self.run_inner(algorithm, Some((&mut recorder, config)))?;
        Ok((result, recorder))
    }

    fn run_inner<A: Algorithm>(
        &self,
        algorithm: &A,
        trace: Option<(&mut TraceRecorder, TraceConfig)>,
    ) -> Result<ExecutionResult<<A::Node as NodeProgram>::Output>, RuntimeError> {
        let span = obs::exec_span(algorithm.name());
        let (mut trace, trace_config) = match trace {
            Some((recorder, config)) => (Some(recorder), config),
            None => (None, TraceConfig::default()),
        };
        let graph = self.graph;
        let n = graph.n();
        let id_space = id_space_of(graph);
        let id_table = neighbor_id_table(graph);
        let contexts: Vec<_> =
            graph.vertices().map(|v| node_ctx(graph, v, id_space, &id_table)).collect();
        let mut nodes: Vec<A::Node> = contexts.iter().map(|ctx| algorithm.node(ctx)).collect();
        let mut active = vec![true; n];
        let mut report = RoundReport::zero();

        // Pending messages for the *next* delivery, stored per receiving vertex as
        // (receiver_port, message), double-buffered against the inboxes read by the current
        // round.
        let mut pending: Vec<Vec<(usize, <A::Node as NodeProgram>::Msg)>> =
            (0..n).map(|_| Vec::new()).collect();
        let mut inboxes: Vec<Vec<(usize, <A::Node as NodeProgram>::Msg)>> =
            (0..n).map(|_| Vec::new()).collect();

        // Initialization: local computation plus the sends of the first round.
        let mut meter = BandwidthMeter::new(graph.num_arcs());
        let mut any_outgoing = false;
        for v in 0..n {
            let mut outbox = Outbox::new(contexts[v].degree);
            let status = nodes[v].init(&contexts[v], &mut outbox);
            if status == Status::Halted {
                active[v] = false;
            }
            any_outgoing |= !outbox.is_empty();
            deliver_by_scan(graph, v, outbox, &mut pending, &mut report, &mut meter);
        }
        // Delivery-side trace attribution, as in the flat executors: round `r` records what
        // it delivers (the sends of round `r − 1`; round 1 carries `init`).
        let mut carry_messages = report.messages;
        let mut carry_bits =
            meter.finish_round(graph, report.rounds + 1, self.cost_mode, &mut report)?;

        // Main loop: one iteration = one synchronous round.
        while active.iter().any(|&a| a) || any_outgoing {
            if report.rounds >= self.max_rounds {
                return Err(RuntimeError::RoundLimitExceeded {
                    limit: self.max_rounds,
                    still_active: active.iter().filter(|&&a| a).count(),
                });
            }
            report.rounds += 1;
            swap_mailboxes(&mut pending, &mut inboxes);

            let round_started = trace.as_ref().map(|_| std::time::Instant::now());
            let active_at_start = active.iter().filter(|&&a| a).count();
            let messages_before = report.messages;
            let mut halted_this_round: Vec<usize> = Vec::new();
            let mut halts_this_round = 0usize;
            let mut stepped = 0usize;

            any_outgoing = false;
            for v in 0..n {
                if !active[v] {
                    continue;
                }
                stepped += 1;
                let inbox = Inbox::new(&inboxes[v]);
                let mut outbox = Outbox::new(contexts[v].degree);
                let status = nodes[v].round(&contexts[v], &inbox, &mut outbox);
                if status == Status::Halted {
                    active[v] = false;
                    halts_this_round += 1;
                    if trace_config.capture_halted && trace.is_some() {
                        halted_this_round.push(v);
                    }
                }
                any_outgoing |= !outbox.is_empty();
                deliver_by_scan(graph, v, outbox, &mut pending, &mut report, &mut meter);
            }
            let round_bits =
                meter.finish_round(graph, report.rounds + 1, self.cost_mode, &mut report)?;
            if let Some(recorder) = trace.as_deref_mut() {
                recorder.record(RoundTrace {
                    round: report.rounds,
                    active_nodes: active_at_start,
                    // No frontier here: every active vertex is stepped.
                    frontier: stepped,
                    messages: carry_messages,
                    total_bits: carry_bits.total,
                    max_edge_bits: carry_bits.max_edge,
                    halts: halts_this_round,
                    halted: halted_this_round,
                    wall_ns: round_started
                        .map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                        .unwrap_or(0),
                });
            }
            carry_messages = report.messages - messages_before;
            carry_bits = round_bits;
            if !active.iter().any(|&a| a) {
                break;
            }
        }

        let outputs =
            nodes.iter().zip(contexts.iter()).map(|(node, ctx)| node.output(ctx)).collect();
        span.charge(report);
        if let Some(recorder) = trace {
            span.attach_trace(recorder);
        }
        obs::record_run(&report);
        Ok(ExecutionResult { outputs, report })
    }
}

/// Flips a pending/inbox mailbox double buffer: after the call, `inbox` holds what `pending`
/// accumulated, and `pending` holds the previously read (now cleared) mailboxes with their
/// capacity retained.
fn swap_mailboxes<T>(pending: &mut Vec<Vec<T>>, inbox: &mut Vec<Vec<T>>) {
    std::mem::swap(pending, inbox);
    for mailbox in pending.iter_mut() {
        mailbox.clear();
    }
}

/// Routes the outbox of `sender` into the pending per-vertex inboxes, deriving each
/// receiver's port with a linear scan of its adjacency list — the O(deg)-per-message
/// delivery the mirror table replaced.  Bandwidth is charged to the receiver-side arc
/// `arc_range(receiver).start + receiver_port` (derived from the scan, not the mirror
/// table, to keep the no-shared-routing-code property), the same index the flat executors
/// charge, so the bit accounting is identical.
fn deliver_by_scan<M: Clone + MessageCost>(
    graph: &Graph,
    sender: usize,
    outbox: Outbox<M>,
    pending: &mut [Vec<(usize, M)>],
    report: &mut RoundReport,
    meter: &mut BandwidthMeter,
) {
    let neighbors = graph.neighbors(sender);
    for (port, message) in outbox.into_messages() {
        let receiver = neighbors[port];
        let receiver_port = graph
            .neighbors(receiver)
            .iter()
            .position(|&w| w == sender)
            .expect("graph adjacency is symmetric");
        meter.add(graph.arc_range(receiver).start + receiver_port, message.encoded_bits());
        pending[receiver].push((receiver_port, message));
        report.messages += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FloodMaxId, ProposeMaxId};
    use crate::Executor;
    use arbcolor_graph::generators;

    #[test]
    fn reference_and_flat_executor_agree_on_a_small_graph() {
        let g = generators::gnp(60, 0.1, 5).unwrap().with_shuffled_ids(6);
        for rounds in [1usize, 3, 7] {
            let flood = FloodMaxId { rounds };
            let reference = ReferenceExecutor::new(&g).run(&flood).unwrap();
            let flat = Executor::new(&g).run(&flood).unwrap();
            assert_eq!(reference.outputs, flat.outputs);
            assert_eq!(reference.report, flat.report);
        }
        let reference = ReferenceExecutor::new(&g).run(&ProposeMaxId).unwrap();
        let flat = Executor::new(&g).run(&ProposeMaxId).unwrap();
        assert_eq!(reference.outputs, flat.outputs);
        assert_eq!(reference.report, flat.report);
    }

    #[test]
    fn reference_round_limit_matches_flat() {
        let g = generators::path(6).unwrap();
        let reference = ReferenceExecutor::new(&g)
            .with_max_rounds(2)
            .run(&FloodMaxId { rounds: 50 })
            .unwrap_err();
        let flat =
            Executor::new(&g).with_max_rounds(2).run(&FloodMaxId { rounds: 50 }).unwrap_err();
        assert_eq!(reference, flat);
    }
}
