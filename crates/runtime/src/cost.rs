//! CONGEST-model cost accounting: measured message widths and per-edge bandwidth budgets.
//!
//! The LOCAL model charges rounds only — a message may carry arbitrarily much information,
//! so nothing distinguishes a polylog-round algorithm that ships `O(log n)`-bit colors from
//! one that floods whole neighborhood tables.  The **CONGEST** model closes that loophole:
//! every message is limited to `O(log n)` bits per edge per round.  This module makes the
//! distinction measurable and enforceable:
//!
//! * [`MessageCost`] — every message type reports its encoded width in bits.  Widths are
//!   *measured*, not declared: a `u64` carrying the color `5` costs 3 bits, not 64, so the
//!   accounting reflects what a real CONGEST encoding of the algorithm would transmit.
//! * [`CostMode`] — an executor knob.  Under [`CostMode::Local`] bandwidth is recorded but
//!   unlimited; under [`CostMode::Congest`] the executors return a typed
//!   [`RuntimeError::CongestBudgetExceeded`]
//!   (naming the round, the edge, and the measured width) as soon as any single edge
//!   carries more than `bits_per_edge` bits in one round.
//! * `BandwidthMeter` (crate-internal) — the per-arc accumulator all three executors feed
//!   from their delivery paths, symmetrically, so `total_bits` and `max_edge_bits` in
//!   [`RoundReport`] are bit-identical across the sequential, the
//!   work-stealing, and the reference executor.
//!
//! The process-wide default ([`set_default_cost_mode`]/[`default_cost_mode`]) mirrors
//! [`set_default_executor`](crate::set_default_executor): freshly constructed executors pick
//! it up, so one call switches every driver in the workspace into Congest accounting.

use crate::metrics::RoundReport;
use crate::network::{arc_owner, RuntimeError};
use arbcolor_graph::Graph;
use std::sync::Mutex;

/// The measured width of a message on the wire, in bits.
///
/// Implementations report the width of the *value being sent*, not of the Rust type: a
/// `u64` holding a color from a palette of size `p` costs `⌈log2(p)⌉`-ish bits, which is
/// what makes the CONGEST accounting meaningful.  Every message costs at least 1 bit
/// (receiving it is an observable event).
pub trait MessageCost {
    /// Number of bits this message occupies on an edge.
    fn encoded_bits(&self) -> u64;
}

impl MessageCost for u64 {
    /// The binary width of the value (1 bit minimum, so sending `0` is not free).
    fn encoded_bits(&self) -> u64 {
        u64::from(u64::BITS - self.leading_zeros()).max(1)
    }
}

impl MessageCost for u32 {
    fn encoded_bits(&self) -> u64 {
        u64::from(*self).encoded_bits()
    }
}

impl MessageCost for bool {
    fn encoded_bits(&self) -> u64 {
        1
    }
}

impl MessageCost for () {
    /// A payload-free pulse still occupies one bit: its arrival is the information.
    fn encoded_bits(&self) -> u64 {
        1
    }
}

/// Which cost model an executor charges (and enforces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostMode {
    /// Classical LOCAL: rounds are charged, message widths are recorded but unlimited.
    #[default]
    Local,
    /// CONGEST: additionally *asserts* that no edge carries more than `bits_per_edge` bits
    /// in any single round (per direction).  Violations surface as
    /// [`RuntimeError::CongestBudgetExceeded`].
    Congest {
        /// The per-edge per-round bit budget (the `c·log n` of the model definition).
        bits_per_edge: u64,
    },
}

impl CostMode {
    /// The standard CONGEST budget for an `n`-vertex network: `c · ⌈log2 n⌉` bits per edge
    /// per round (with `n` clamped to 2 so the budget is never zero).
    pub fn congest_for(n: usize, c: u64) -> Self {
        CostMode::Congest {
            bits_per_edge: c * u64::from(n.max(2).next_power_of_two().trailing_zeros()),
        }
    }

    /// The per-edge budget, or `None` under [`CostMode::Local`].
    pub fn bits_per_edge(&self) -> Option<u64> {
        match self {
            CostMode::Local => None,
            CostMode::Congest { bits_per_edge } => Some(*bits_per_edge),
        }
    }
}

/// The process-wide default cost mode (starts out LOCAL).
static DEFAULT_COST_MODE: Mutex<CostMode> = Mutex::new(CostMode::Local);

/// Sets the process-wide default cost mode picked up by freshly constructed executors.
///
/// Like [`set_default_executor`](crate::set_default_executor), binaries typically set this
/// once from a CLI flag; bandwidth is *recorded* in every mode, so flipping to
/// [`CostMode::Congest`] only adds the budget assertion.
pub fn set_default_cost_mode(mode: CostMode) {
    *DEFAULT_COST_MODE.lock().expect("cost-mode lock") = mode;
}

/// The current process-wide default cost mode.
pub fn default_cost_mode() -> CostMode {
    *DEFAULT_COST_MODE.lock().expect("cost-mode lock")
}

/// What one round put on the wire, as reported by [`BandwidthMeter::finish_round`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RoundBits {
    /// Bits summed over all messages of the round.
    pub(crate) total: u64,
    /// Bits over the most loaded single edge (per direction) of the round.
    pub(crate) max_edge: u64,
}

/// Per-arc bit accumulator for one execution.
///
/// All three executors call [`BandwidthMeter::add`] once per delivered message (keyed by the
/// receiver-side arc, the same index the flat mailboxes use) and
/// [`BandwidthMeter::finish_round`] once per round, in the same places, so the accounting is
/// bit-identical across them.  Clearing is O(messages of the round), not O(arcs).
pub(crate) struct BandwidthMeter {
    /// Bits accumulated on each arc in the current round.
    arc_bits: Vec<u64>,
    /// Arcs touched this round (so clearing is proportional to traffic).
    touched: Vec<usize>,
    /// Running total of the current round.
    round_total: u64,
    /// Running per-arc maximum of the current round, with its arg.
    round_max: u64,
    round_max_arc: usize,
}

impl BandwidthMeter {
    /// A meter over `num_arcs` arcs with nothing recorded.
    pub(crate) fn new(num_arcs: usize) -> Self {
        BandwidthMeter {
            arc_bits: vec![0; num_arcs],
            touched: Vec::new(),
            round_total: 0,
            round_max: 0,
            round_max_arc: 0,
        }
    }

    /// Records `bits` arriving on `arc` (a receiver-side arc index) in the current round.
    #[inline]
    pub(crate) fn add(&mut self, arc: usize, bits: u64) {
        let cell = &mut self.arc_bits[arc];
        if *cell == 0 {
            self.touched.push(arc);
        }
        *cell += bits;
        self.round_total += bits;
        if *cell > self.round_max {
            self.round_max = *cell;
            self.round_max_arc = arc;
        }
    }

    /// Closes the round labelled `round`: folds the round's bandwidth into `report`
    /// (`total_bits` adds, `max_edge_bits` maxes), enforces `mode`'s budget, resets the
    /// per-round state, and returns the round's figures for tracing.
    ///
    /// # Errors
    ///
    /// Under [`CostMode::Congest`], returns
    /// [`RuntimeError::CongestBudgetExceeded`] naming the round, the most loaded edge
    /// (sender → receiver), its measured bit load, and the budget.
    pub(crate) fn finish_round(
        &mut self,
        graph: &Graph,
        round: usize,
        mode: CostMode,
        report: &mut RoundReport,
    ) -> Result<RoundBits, RuntimeError> {
        let bits = RoundBits { total: self.round_total, max_edge: self.round_max };
        report.total_bits += bits.total;
        report.max_edge_bits = report.max_edge_bits.max(bits.max_edge);
        for &arc in &self.touched {
            self.arc_bits[arc] = 0;
        }
        self.touched.clear();
        self.round_total = 0;
        self.round_max = 0;
        if let CostMode::Congest { bits_per_edge } = mode {
            if bits.max_edge > bits_per_edge {
                let arc = self.round_max_arc;
                return Err(RuntimeError::CongestBudgetExceeded {
                    round,
                    sender: graph.arc_target(arc),
                    receiver: arc_owner(graph, arc),
                    bits: bits.max_edge,
                    budget: bits_per_edge,
                });
            }
        }
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_are_measured_not_declared() {
        assert_eq!(0u64.encoded_bits(), 1, "sending zero is not free");
        assert_eq!(1u64.encoded_bits(), 1);
        assert_eq!(2u64.encoded_bits(), 2);
        assert_eq!(255u64.encoded_bits(), 8);
        assert_eq!(256u64.encoded_bits(), 9);
        assert_eq!(u64::MAX.encoded_bits(), 64);
        assert_eq!(7u32.encoded_bits(), 3);
        assert_eq!(true.encoded_bits(), 1);
        assert_eq!(false.encoded_bits(), 1);
        assert_eq!(().encoded_bits(), 1);
    }

    #[test]
    fn congest_budget_is_c_log_n() {
        assert_eq!(CostMode::congest_for(1024, 4).bits_per_edge(), Some(40));
        assert_eq!(CostMode::congest_for(1000, 4).bits_per_edge(), Some(40), "ceil(log2)");
        assert_eq!(CostMode::congest_for(0, 4).bits_per_edge(), Some(4), "n clamps to 2");
        assert_eq!(CostMode::Local.bits_per_edge(), None);
    }

    #[test]
    fn default_cost_mode_round_trips() {
        let before = default_cost_mode();
        set_default_cost_mode(CostMode::Congest { bits_per_edge: 96 });
        assert_eq!(default_cost_mode().bits_per_edge(), Some(96));
        set_default_cost_mode(before);
    }

    #[test]
    fn meter_tracks_per_edge_maximum_and_resets_between_rounds() {
        let g = arbcolor_graph::generators::path(3).unwrap();
        let mut meter = BandwidthMeter::new(g.num_arcs());
        let mut report = RoundReport::zero();
        meter.add(0, 3);
        meter.add(1, 2);
        meter.add(1, 4);
        let bits = meter.finish_round(&g, 1, CostMode::Local, &mut report).unwrap();
        assert_eq!(bits, RoundBits { total: 9, max_edge: 6 });
        assert_eq!(report.total_bits, 9);
        assert_eq!(report.max_edge_bits, 6);
        // The next round starts from zero, and a lower round max keeps the report max.
        meter.add(2, 5);
        let bits = meter.finish_round(&g, 2, CostMode::Local, &mut report).unwrap();
        assert_eq!(bits, RoundBits { total: 5, max_edge: 5 });
        assert_eq!(report.total_bits, 14);
        assert_eq!(report.max_edge_bits, 6);
    }

    #[test]
    fn meter_enforces_the_congest_budget_with_a_typed_error() {
        let g = arbcolor_graph::generators::path(2).unwrap();
        let mut meter = BandwidthMeter::new(g.num_arcs());
        let mut report = RoundReport::zero();
        meter.add(0, 9);
        let err = meter
            .finish_round(&g, 3, CostMode::Congest { bits_per_edge: 8 }, &mut report)
            .unwrap_err();
        match err {
            RuntimeError::CongestBudgetExceeded { round, bits, budget, .. } => {
                assert_eq!((round, bits, budget), (3, 9, 8));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The report still records what the round put on the wire.
        assert_eq!(report.total_bits, 9);
        assert_eq!(report.max_edge_bits, 9);
    }
}
