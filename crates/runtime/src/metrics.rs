//! Round and message accounting.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// The cost of one execution (or one phase) of a distributed algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Number of synchronous communication rounds until every node halted.
    pub rounds: usize,
    /// Total number of point-to-point messages delivered.
    pub messages: usize,
}

impl RoundReport {
    /// A zero-cost report.
    pub fn zero() -> Self {
        RoundReport::default()
    }

    /// Creates a report from explicit counts.
    pub fn new(rounds: usize, messages: usize) -> Self {
        RoundReport { rounds, messages }
    }

    /// Sequential composition: rounds and messages both add.
    #[must_use]
    pub fn then(self, later: RoundReport) -> RoundReport {
        RoundReport { rounds: self.rounds + later.rounds, messages: self.messages + later.messages }
    }

    /// Parallel composition on disjoint subnetworks: rounds take the maximum (the subnetworks
    /// run concurrently), messages add.
    #[must_use]
    pub fn alongside(self, other: RoundReport) -> RoundReport {
        RoundReport {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
        }
    }
}

impl Add for RoundReport {
    type Output = RoundReport;

    fn add(self, rhs: RoundReport) -> RoundReport {
        self.then(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_composition() {
        let a = RoundReport::new(5, 100);
        let b = RoundReport::new(3, 50);
        assert_eq!(a.then(b), RoundReport::new(8, 150));
        assert_eq!(a + b, RoundReport::new(8, 150));
        assert_eq!(a.alongside(b), RoundReport::new(5, 150));
        assert_eq!(RoundReport::zero().then(a), a);
    }
}
