//! Round and message accounting.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// The cost of one execution (or one phase) of a distributed algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Number of synchronous communication rounds until every node halted.
    pub rounds: usize,
    /// Total number of point-to-point messages delivered.
    pub messages: usize,
    /// Total bits across all delivered messages, as measured by
    /// [`MessageCost`](crate::cost::MessageCost).  Zero for hand-modelled phases that charge
    /// messages without executing them.
    pub total_bits: u64,
    /// The largest bit load any single edge (per direction) carried in any one round — the
    /// quantity the CONGEST model bounds by `O(log n)`.
    pub max_edge_bits: u64,
}

impl RoundReport {
    /// A zero-cost report.
    pub fn zero() -> Self {
        RoundReport::default()
    }

    /// Creates a report from explicit round and message counts (no measured bandwidth —
    /// the executors fill the bit columns; hand-modelled phases leave them zero).
    pub fn new(rounds: usize, messages: usize) -> Self {
        RoundReport { rounds, messages, total_bits: 0, max_edge_bits: 0 }
    }

    /// Sequential composition: rounds, messages, and total bits add; the per-edge peak is
    /// the worst round of either phase, so it maxes.
    #[must_use]
    pub fn then(self, later: RoundReport) -> RoundReport {
        RoundReport {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            total_bits: self.total_bits + later.total_bits,
            max_edge_bits: self.max_edge_bits.max(later.max_edge_bits),
        }
    }

    /// Parallel composition on disjoint subnetworks: rounds take the maximum (the subnetworks
    /// run concurrently), messages and total bits add, and the per-edge peak maxes (disjoint
    /// subnetworks share no edge).
    #[must_use]
    pub fn alongside(self, other: RoundReport) -> RoundReport {
        RoundReport {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
            total_bits: self.total_bits + other.total_bits,
            max_edge_bits: self.max_edge_bits.max(other.max_edge_bits),
        }
    }
}

impl Add for RoundReport {
    type Output = RoundReport;

    fn add(self, rhs: RoundReport) -> RoundReport {
        self.then(rhs)
    }
}

/// Aggregate view of a per-round activity trace (see
/// [`TraceRecorder`](crate::trace::TraceRecorder)): how much round-loop work the
/// frontier-driven executor actually did, against what an everyone-runs executor would have
/// paid for the same execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivitySummary {
    /// Number of traced rounds.
    pub rounds: usize,
    /// Largest per-round frontier (vertices stepped in the busiest round).
    pub peak_frontier: usize,
    /// Total vertex steps across all rounds — what the frontier-driven round loops cost.
    pub frontier_steps: usize,
    /// Total active-vertex count across all rounds — what iterating every non-halted vertex
    /// each round (the pre-frontier executors) would have cost.
    pub active_steps: usize,
}

impl ActivitySummary {
    /// Summarizes a recorded trace.
    pub fn from_trace(trace: &crate::trace::TraceRecorder) -> Self {
        ActivitySummary {
            rounds: trace.len(),
            peak_frontier: trace.peak_frontier(),
            frontier_steps: trace.total_steps(),
            active_steps: trace.rounds().iter().map(|r| r.active_nodes).sum(),
        }
    }

    /// `active_steps / frontier_steps`: how many times cheaper the frontier-driven round
    /// loops were than stepping every active vertex each round (1.0 when every active vertex
    /// was on the frontier every round; ∞-free: returns 1.0 for an empty trace).
    pub fn savings_factor(&self) -> f64 {
        if self.frontier_steps == 0 {
            1.0
        } else {
            self.active_steps as f64 / self.frontier_steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_composition() {
        let a = RoundReport::new(5, 100);
        let b = RoundReport::new(3, 50);
        assert_eq!(a.then(b), RoundReport::new(8, 150));
        assert_eq!(a + b, RoundReport::new(8, 150));
        assert_eq!(a.alongside(b), RoundReport::new(5, 150));
        assert_eq!(RoundReport::zero().then(a), a);
    }

    #[test]
    fn activity_summary_compares_frontier_against_everyone_runs() {
        use crate::trace::{RoundTrace, TraceRecorder};
        let mut t = TraceRecorder::new();
        t.record(RoundTrace { round: 1, active_nodes: 8, frontier: 8, ..RoundTrace::default() });
        t.record(RoundTrace { round: 2, active_nodes: 8, frontier: 2, ..RoundTrace::default() });
        let summary = ActivitySummary::from_trace(&t);
        assert_eq!(summary.rounds, 2);
        assert_eq!(summary.peak_frontier, 8);
        assert_eq!(summary.frontier_steps, 10);
        assert_eq!(summary.active_steps, 16);
        assert!((summary.savings_factor() - 1.6).abs() < 1e-12);
        assert_eq!(ActivitySummary::default().savings_factor(), 1.0);
    }
}
