//! A synchronous LOCAL-model simulator.
//!
//! The paper's cost model is the classical **LOCAL** model: every vertex of the input graph
//! hosts a processor with a unique identifier; computation proceeds in synchronous rounds; in
//! each round every vertex may send one message to each neighbor, receive the messages its
//! neighbors sent in the same round, and perform arbitrary local computation.  The *running
//! time* of an algorithm is the number of rounds.
//!
//! This crate provides:
//!
//! * [`NodeProgram`] / [`Algorithm`] — the interface a distributed algorithm implements.  A
//!   node program only ever sees its own [`NodeCtx`] (identifier, degree, neighbor
//!   identifiers, `n`) and the messages delivered to it, which keeps implementations honest
//!   about locality.
//! * [`Executor`] — runs an algorithm on a graph until every node halts, returning the
//!   per-vertex outputs and a [`RoundReport`] with round and message counts.  Delivery runs
//!   on the arc-indexed message fabric (see [`network`]): O(1) mirror-table routing into
//!   flat one-slot-per-port mailboxes, zero heap allocation per steady-state round.
//! * [`mod@reference`] — the pre-fabric `Vec<Vec<…>>` executor with linear-scan routing, kept
//!   as the bit-identity oracle and the baseline the `routing` benches race against.
//! * [`frontier`] — the epoch-stamped frontier bitmap and shared halt bookkeeping behind
//!   both executors' O(|active|) rounds: delivery marks the receiver, programs self-schedule
//!   with [`NodeCtx::wake_next_round`], quiescent vertices cost nothing.
//! * [`shard`] — the parallel simulator: a hand-rolled [`WorkPool`] and the
//!   [`ShardedExecutor`], which work-steals fixed-size frontier chunks off a shared atomic
//!   cursor yet commits results in chunk order, so outputs, rounds, and message counts are
//!   bit-identical to [`Executor`] at any thread count and chunk size; plus the
//!   process-wide [`ExecutorKind`] switch consulted by [`run_algorithm`].
//! * [`composition`] — cost accounting for multi-phase algorithms (sequential phases add,
//!   parallel executions on disjoint subgraphs take the maximum), mirroring how the paper
//!   accounts for the recursion of Procedure Legal-Coloring, where disjoint subgraphs proceed
//!   concurrently.
//! * [`cost`] — CONGEST-model bandwidth accounting: every message reports a measured bit
//!   width ([`MessageCost`]), the executors accumulate per-edge and total bits into the
//!   [`RoundReport`], and [`CostMode::Congest`] turns the `c·log n` bits-per-edge bound of
//!   the CONGEST model into an enforced, typed assertion.
//! * [`obs`] — phase-attributed observability: an RAII span API
//!   ([`obs::phase`]/[`obs::PhaseGuard`]) over a thread-safe hierarchical
//!   [`SpanCollector`], where every span carries a deterministic [`RoundReport`] delta plus
//!   advisory wall time and frontier stats; a metrics registry fed by the executors; and
//!   exporters to Chrome trace-event JSON (Perfetto-viewable) and a text summary table.
//!
//! # Example
//!
//! ```
//! use arbcolor_graph::generators;
//! use arbcolor_runtime::{Executor, algorithms::ProposeMaxId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::cycle(8)?;
//! let result = Executor::new(&g).run(&ProposeMaxId)?;
//! // After one round every vertex knows the largest identifier in its closed neighborhood.
//! assert_eq!(result.report.rounds, 1);
//! assert!(result.outputs.iter().all(|&max_id| max_id >= 1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod composition;
pub mod cost;
pub mod frontier;
pub mod metrics;
pub mod network;
pub mod node;
pub mod obs;
pub mod reference;
pub mod shard;
pub mod trace;

pub use composition::{parallel_max, CostLedger, PhaseCost};
pub use cost::{default_cost_mode, set_default_cost_mode, CostMode, MessageCost};
pub use frontier::{ActiveSet, Frontier};
pub use metrics::{ActivitySummary, RoundReport};
pub use network::{ExecutionResult, Executor, RuntimeError, TracedRun};
pub use node::{Algorithm, Inbox, NeighborIds, NodeCtx, NodeProgram, Outbox, Status};
pub use obs::{PhaseGuard, RecordingGuard, SpanCollector, SpanKind, SpanRecord};
pub use reference::ReferenceExecutor;
pub use shard::{
    default_chunk_size, default_executor, default_sequential_cutoff, run_algorithm,
    set_default_chunk_size, set_default_executor, set_default_sequential_cutoff, ExecutorKind,
    PoolScope, ShardedExecutor, WorkPool,
};
pub use trace::{RoundTrace, TraceConfig, TraceRecorder};
