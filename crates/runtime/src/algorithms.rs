//! Reference algorithms and reusable scheduled node programs.
//!
//! The first half of this module holds tiny reference algorithms used by tests, documentation
//! examples and the runtime's own test-suite; they double as templates for how node programs
//! are written.  The second half holds two generic *scheduled* building blocks shared by the
//! list-coloring drivers in higher crates:
//!
//! * [`ScheduledListColor`] — slot-scheduled greedy list coloring: every vertex is given a
//!   *slot* and a private candidate list; in its slot it adopts the first list color not
//!   announced by a neighbor and not externally forbidden.  When the slots come from a legal
//!   coloring (neighbors never share a slot) and every list is larger than the vertex degree,
//!   every vertex succeeds.
//! * [`HalvingSplit`] — slot-scheduled color-space bipartition: every vertex is given a slot
//!   plus the sizes of its palette's intersection with the lower and upper halves of the
//!   current color space; in its slot it commits to the half with the larger remaining margin
//!   (palette share minus neighbors already committed there), and after all slots have fired
//!   it self-defers if its committed half cannot guarantee a proper greedy completion.
//!
//! Both programs take per-vertex inputs at construction time, exactly like the procedures of
//! the paper (the output of one phase is locally known to each vertex when the next starts).

use crate::node::{Algorithm, Inbox, NodeCtx, NodeProgram, Outbox, Status};

/// One-round algorithm: every vertex learns the maximum identifier in its closed neighborhood.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProposeMaxId;

/// Node program of [`ProposeMaxId`].
#[derive(Debug, Clone)]
pub struct ProposeMaxIdNode {
    best: u64,
}

impl NodeProgram for ProposeMaxIdNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        outbox.broadcast(ctx.id);
        if ctx.degree == 0 {
            Status::Halted
        } else {
            Status::Active
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        inbox: &Inbox<'_, u64>,
        _outbox: &mut Outbox<u64>,
    ) -> Status {
        for (_, &id) in inbox.iter() {
            self.best = self.best.max(id);
        }
        Status::Halted
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.best
    }
}

impl Algorithm for ProposeMaxId {
    type Node = ProposeMaxIdNode;

    fn node(&self, ctx: &NodeCtx) -> ProposeMaxIdNode {
        ProposeMaxIdNode { best: ctx.id }
    }

    fn name(&self) -> &'static str {
        "propose-max-id"
    }
}

/// Floods the maximum identifier for a fixed number of rounds; after `rounds ≥ diameter`
/// every vertex knows the global maximum.  Used to sanity-check multi-round execution and the
/// round accounting of the executor.
#[derive(Debug, Clone, Copy)]
pub struct FloodMaxId {
    /// How many rounds to flood for.
    pub rounds: usize,
}

/// Node program of [`FloodMaxId`].
#[derive(Debug, Clone)]
pub struct FloodMaxIdNode {
    best: u64,
    remaining: usize,
}

impl NodeProgram for FloodMaxIdNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        if self.remaining == 0 {
            return Status::Halted;
        }
        outbox.broadcast(self.best);
        // Counts rounds, so it must be stepped even when no mail arrives (e.g. isolated
        // vertices): self-schedule while active.
        ctx.wake_next_round();
        Status::Active
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, u64>, outbox: &mut Outbox<u64>) -> Status {
        for (_, &id) in inbox.iter() {
            self.best = self.best.max(id);
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            Status::Halted
        } else {
            outbox.broadcast(self.best);
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.best
    }
}

impl Algorithm for FloodMaxId {
    type Node = FloodMaxIdNode;

    fn node(&self, ctx: &NodeCtx) -> FloodMaxIdNode {
        FloodMaxIdNode { best: ctx.id, remaining: self.rounds }
    }

    fn name(&self) -> &'static str {
        "flood-max-id"
    }
}

/// Per-vertex input of [`ScheduledListColor`].
#[derive(Debug, Clone)]
pub struct ListColorSlot {
    /// The round in which this vertex picks its color (slot 0 picks immediately).
    pub slot: usize,
    /// Candidate colors in preference order (the vertex's private list).
    pub palette: Vec<u64>,
    /// Colors this vertex must avoid in addition to its neighbors' announcements (e.g. final
    /// colors of already-colored neighbors outside the current subgraph).
    pub forbidden: Vec<u64>,
}

/// Slot-scheduled greedy list coloring (node-program factory).
///
/// Cost: `max_slot + 1` rounds and one broadcast per vertex.
#[derive(Debug, Clone)]
pub struct ScheduledListColor<'a> {
    slots: &'a [ListColorSlot],
}

impl<'a> ScheduledListColor<'a> {
    /// Creates the algorithm from one [`ListColorSlot`] per vertex.
    pub fn new(slots: &'a [ListColorSlot]) -> Self {
        ScheduledListColor { slots }
    }
}

/// Node program of [`ScheduledListColor`].
#[derive(Debug, Clone)]
pub struct ScheduledListColorNode {
    input: ListColorSlot,
    taken: Vec<u64>,
    chosen: Option<u64>,
    round: usize,
}

impl ScheduledListColorNode {
    fn pick(&mut self) -> Option<u64> {
        let choice = self
            .input
            .palette
            .iter()
            .copied()
            .find(|c| !self.input.forbidden.contains(c) && !self.taken.contains(c));
        self.chosen = choice;
        choice
    }
}

impl NodeProgram for ScheduledListColorNode {
    type Msg = u64;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        self.round = 0;
        if self.input.slot == 0 {
            if let Some(c) = self.pick() {
                outbox.broadcast(c);
            }
            Status::Halted
        } else {
            // `round` counts rounds up to the slot, so the vertex must be stepped every
            // round, mail or not: self-schedule while active.
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, u64>, outbox: &mut Outbox<u64>) -> Status {
        self.round += 1;
        for (_, &c) in inbox.iter() {
            self.taken.push(c);
        }
        if self.round == self.input.slot {
            if let Some(c) = self.pick() {
                outbox.broadcast(c);
            }
            Status::Halted
        } else {
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> Option<u64> {
        self.chosen
    }
}

impl Algorithm for ScheduledListColor<'_> {
    type Node = ScheduledListColorNode;

    fn node(&self, ctx: &NodeCtx) -> ScheduledListColorNode {
        ScheduledListColorNode {
            input: self.slots[ctx.vertex].clone(),
            taken: Vec::new(),
            chosen: None,
            round: 0,
        }
    }

    fn name(&self) -> &'static str {
        "scheduled-list-color"
    }
}

/// Per-vertex input of [`HalvingSplit`].
#[derive(Debug, Clone)]
pub struct SplitSlot {
    /// The round in which this vertex announces its half (slot 0 announces immediately).
    pub slot: usize,
    /// `|Ψ(v) ∩ lower half|` — the vertex's palette share in the lower half.
    pub low_count: usize,
    /// `|Ψ(v) ∩ upper half|` — the vertex's palette share in the upper half.
    pub high_count: usize,
    /// Half preferred when the margins and the palette shares are both tied (used to break
    /// the symmetry of identical palettes deterministically).
    pub tie_high: bool,
}

/// The side a vertex ends up on after a [`HalvingSplit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitChoice {
    /// The vertex recurses on the lower half of the color space.
    Low,
    /// The vertex recurses on the upper half of the color space.
    High,
    /// The vertex's committed half cannot guarantee a greedy completion
    /// (`palette share < same-half neighbors + 1`); it drops out of the recursion and is
    /// colored by the final cleanup sweep from its original list.
    Deferred,
}

/// Slot-scheduled color-space bipartition (node-program factory).
///
/// Runs for exactly `num_slots` rounds; every vertex broadcasts its committed half once, in
/// its slot, and listens for the whole execution so it can count how many neighbors ended up
/// on its half.
#[derive(Debug, Clone)]
pub struct HalvingSplit<'a> {
    slots: &'a [SplitSlot],
    num_slots: usize,
}

impl<'a> HalvingSplit<'a> {
    /// Creates the algorithm from one [`SplitSlot`] per vertex; every slot must be smaller
    /// than `num_slots`.
    pub fn new(slots: &'a [SplitSlot], num_slots: usize) -> Self {
        assert!(num_slots > 0, "at least one slot is required");
        assert!(
            slots.iter().all(|s| s.slot < num_slots),
            "every slot must be smaller than num_slots"
        );
        HalvingSplit { slots, num_slots }
    }
}

/// Node program of [`HalvingSplit`].
#[derive(Debug, Clone)]
pub struct HalvingSplitNode {
    input: SplitSlot,
    num_slots: usize,
    committed_low: usize,
    committed_high: usize,
    side_high: Option<bool>,
    deferred: bool,
    round: usize,
}

impl HalvingSplitNode {
    /// Commits to the half with the larger remaining margin (palette share minus the
    /// neighbors already committed there).
    fn decide(&mut self) -> bool {
        let margin_low = self.input.low_count as i64 - self.committed_low as i64;
        let margin_high = self.input.high_count as i64 - self.committed_high as i64;
        let high = match margin_high.cmp(&margin_low) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.input.high_count.cmp(&self.input.low_count) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => self.input.tie_high,
            },
        };
        self.side_high = Some(high);
        high
    }

    /// After every slot has fired: self-defer when the committed half cannot guarantee a
    /// greedy completion against the neighbors that committed to the same half.
    fn finalize(&mut self) {
        let high = self.side_high.expect("every slot fired");
        let (share, rivals) = if high {
            (self.input.high_count, self.committed_high)
        } else {
            (self.input.low_count, self.committed_low)
        };
        self.deferred = share < rivals + 1;
    }
}

impl NodeProgram for HalvingSplitNode {
    type Msg = bool;
    type Output = SplitChoice;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<bool>) -> Status {
        self.round = 0;
        if self.input.slot == 0 {
            let high = self.decide();
            outbox.broadcast(high);
        }
        // Every vertex counts all num_slots rounds (its own slot fires on the count), so it
        // must be stepped every round, mail or not: self-schedule while active.
        ctx.wake_next_round();
        Status::Active
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        inbox: &Inbox<'_, bool>,
        outbox: &mut Outbox<bool>,
    ) -> Status {
        self.round += 1;
        for (_, &high) in inbox.iter() {
            if high {
                self.committed_high += 1;
            } else {
                self.committed_low += 1;
            }
        }
        if self.round == self.input.slot {
            let high = self.decide();
            outbox.broadcast(high);
        }
        // The slot-(K−1) announcements are delivered in round K, so everyone stays active for
        // exactly num_slots rounds before the deferral check.
        if self.round >= self.num_slots {
            self.finalize();
            Status::Halted
        } else {
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> SplitChoice {
        if self.deferred {
            SplitChoice::Deferred
        } else if self.side_high == Some(true) {
            SplitChoice::High
        } else {
            SplitChoice::Low
        }
    }
}

impl Algorithm for HalvingSplit<'_> {
    type Node = HalvingSplitNode;

    fn node(&self, ctx: &NodeCtx) -> HalvingSplitNode {
        HalvingSplitNode {
            input: self.slots[ctx.vertex].clone(),
            num_slots: self.num_slots,
            committed_low: 0,
            committed_high: 0,
            side_high: None,
            deferred: false,
            round: 0,
        }
    }

    fn name(&self) -> &'static str {
        "halving-split"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Executor;
    use arbcolor_graph::generators;

    #[test]
    fn flood_zero_rounds_is_free() {
        let g = generators::cycle(6).unwrap();
        let result = Executor::new(&g).run(&FloodMaxId { rounds: 0 }).unwrap();
        assert_eq!(result.report.rounds, 0);
        for v in g.vertices() {
            assert_eq!(result.outputs[v], g.id(v));
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProposeMaxId.name(), "propose-max-id");
        assert_eq!(FloodMaxId { rounds: 1 }.name(), "flood-max-id");
    }

    #[test]
    fn flood_on_star_converges_in_two_rounds() {
        let g = generators::star(9).unwrap().with_shuffled_ids(2);
        let result = Executor::new(&g).run(&FloodMaxId { rounds: 2 }).unwrap();
        let global_max = g.ids().iter().copied().max().unwrap();
        assert!(result.outputs.iter().all(|&x| x == global_max));
    }

    #[test]
    fn scheduled_list_color_respects_lists_and_schedule() {
        // A 4-cycle scheduled by a proper 2-coloring; lists are disjoint from {9} via the
        // forbidden set of vertex 0.
        let g = generators::cycle(4).unwrap();
        let slots = vec![
            ListColorSlot { slot: 0, palette: vec![9, 5], forbidden: vec![9] },
            ListColorSlot { slot: 1, palette: vec![5, 7], forbidden: vec![] },
            ListColorSlot { slot: 0, palette: vec![5, 6], forbidden: vec![] },
            ListColorSlot { slot: 1, palette: vec![5, 8], forbidden: vec![] },
        ];
        let result = Executor::new(&g).run(&ScheduledListColor::new(&slots)).unwrap();
        // Vertex 0 avoids forbidden 9 and takes 5; vertex 2 takes 5 (not adjacent to 0);
        // vertices 1 and 3 see both announcements and fall back to their second choice.
        assert_eq!(result.outputs, vec![Some(5), Some(7), Some(5), Some(8)]);
        // The slot-1 vertices pick (and halt) in round 1, so the whole sweep costs one round.
        assert_eq!(result.report.rounds, 1);
    }

    #[test]
    fn scheduled_list_color_reports_exhausted_lists_as_none() {
        let g = generators::path(2).unwrap();
        let slots = vec![
            ListColorSlot { slot: 0, palette: vec![1], forbidden: vec![] },
            ListColorSlot { slot: 1, palette: vec![1], forbidden: vec![] },
        ];
        let result = Executor::new(&g).run(&ScheduledListColor::new(&slots)).unwrap();
        assert_eq!(result.outputs[0], Some(1));
        assert_eq!(result.outputs[1], None);
    }

    #[test]
    fn halving_split_balances_identical_palettes_by_margin() {
        // A triangle with palettes split 2/2: the slot-0 vertex takes its tie-break half, and
        // the later vertices see it and flow to the other half, keeping every margin positive.
        let g = generators::complete(3).unwrap();
        let slots = vec![
            SplitSlot { slot: 0, low_count: 2, high_count: 2, tie_high: false },
            SplitSlot { slot: 1, low_count: 2, high_count: 2, tie_high: false },
            SplitSlot { slot: 2, low_count: 2, high_count: 2, tie_high: false },
        ];
        let result = Executor::new(&g).run(&HalvingSplit::new(&slots, 3)).unwrap();
        assert_eq!(result.outputs[0], SplitChoice::Low);
        assert_eq!(result.outputs[1], SplitChoice::High);
        // Vertex 2 sees one commitment per half; margins tie, counts tie, tie_high says Low.
        assert_eq!(result.outputs[2], SplitChoice::Low);
        assert_eq!(result.report.rounds, 3);
    }

    #[test]
    fn halving_split_defers_vertices_without_a_greedy_guarantee() {
        // Both endpoints of an edge hold a single lower-half color and announce in the same
        // slot, so neither can guarantee a proper completion: both must defer.
        let g = generators::path(2).unwrap();
        let slots = vec![
            SplitSlot { slot: 0, low_count: 1, high_count: 0, tie_high: false },
            SplitSlot { slot: 0, low_count: 1, high_count: 0, tie_high: false },
        ];
        let result = Executor::new(&g).run(&HalvingSplit::new(&slots, 1)).unwrap();
        assert_eq!(result.outputs, vec![SplitChoice::Deferred, SplitChoice::Deferred]);
    }
}
