//! Tiny reference algorithms used by tests, documentation examples and the runtime's own
//! test-suite.  They double as templates for how node programs are written.

use crate::node::{Algorithm, Inbox, NodeCtx, NodeProgram, Outbox, Status};

/// One-round algorithm: every vertex learns the maximum identifier in its closed neighborhood.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProposeMaxId;

/// Node program of [`ProposeMaxId`].
#[derive(Debug, Clone)]
pub struct ProposeMaxIdNode {
    best: u64,
}

impl NodeProgram for ProposeMaxIdNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        outbox.broadcast(ctx.id);
        if ctx.degree == 0 {
            Status::Halted
        } else {
            Status::Active
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        inbox: &Inbox<'_, u64>,
        _outbox: &mut Outbox<u64>,
    ) -> Status {
        for (_, &id) in inbox.iter() {
            self.best = self.best.max(id);
        }
        Status::Halted
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.best
    }
}

impl Algorithm for ProposeMaxId {
    type Node = ProposeMaxIdNode;

    fn node(&self, ctx: &NodeCtx) -> ProposeMaxIdNode {
        ProposeMaxIdNode { best: ctx.id }
    }

    fn name(&self) -> &'static str {
        "propose-max-id"
    }
}

/// Floods the maximum identifier for a fixed number of rounds; after `rounds ≥ diameter`
/// every vertex knows the global maximum.  Used to sanity-check multi-round execution and the
/// round accounting of the executor.
#[derive(Debug, Clone, Copy)]
pub struct FloodMaxId {
    /// How many rounds to flood for.
    pub rounds: usize,
}

/// Node program of [`FloodMaxId`].
#[derive(Debug, Clone)]
pub struct FloodMaxIdNode {
    best: u64,
    remaining: usize,
}

impl NodeProgram for FloodMaxIdNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, _ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        if self.remaining == 0 {
            return Status::Halted;
        }
        outbox.broadcast(self.best);
        Status::Active
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<u64>,
    ) -> Status {
        for (_, &id) in inbox.iter() {
            self.best = self.best.max(id);
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            Status::Halted
        } else {
            outbox.broadcast(self.best);
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.best
    }
}

impl Algorithm for FloodMaxId {
    type Node = FloodMaxIdNode;

    fn node(&self, ctx: &NodeCtx) -> FloodMaxIdNode {
        FloodMaxIdNode { best: ctx.id, remaining: self.rounds }
    }

    fn name(&self) -> &'static str {
        "flood-max-id"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Executor;
    use arbcolor_graph::generators;

    #[test]
    fn flood_zero_rounds_is_free() {
        let g = generators::cycle(6).unwrap();
        let result = Executor::new(&g).run(&FloodMaxId { rounds: 0 }).unwrap();
        assert_eq!(result.report.rounds, 0);
        for v in g.vertices() {
            assert_eq!(result.outputs[v], g.id(v));
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProposeMaxId.name(), "propose-max-id");
        assert_eq!(FloodMaxId { rounds: 1 }.name(), "flood-max-id");
    }

    #[test]
    fn flood_on_star_converges_in_two_rounds() {
        let g = generators::star(9).unwrap().with_shuffled_ids(2);
        let result = Executor::new(&g).run(&FloodMaxId { rounds: 2 }).unwrap();
        let global_max = g.ids().iter().copied().max().unwrap();
        assert!(result.outputs.iter().all(|&x| x == global_max));
    }
}
