//! Reference algorithms and reusable scheduled node programs.
//!
//! The first half of this module holds tiny reference algorithms used by tests, documentation
//! examples and the runtime's own test-suite; they double as templates for how node programs
//! are written.  The second half holds the generic *scheduled* building blocks shared by the
//! list-coloring drivers in higher crates:
//!
//! * [`ScheduledListColor`] — slot-scheduled greedy list coloring: every vertex is given a
//!   *slot* and a private candidate list; in its slot it adopts the first list color not
//!   announced by a neighbor and not externally forbidden.  When the slots come from a legal
//!   coloring (neighbors never share a slot) and every list is larger than the vertex degree,
//!   every vertex succeeds.  Slot data lives in a shared [`ListColorSchedule`] arena (flat
//!   [`ColorPool`]s) that nodes *borrow*, and announced colors are struck into a per-vertex
//!   [`PaletteSet`] bitset, so a pick is a word scan instead of nested `Vec` scans.
//! * [`VecScanListColor`] — the pre-palette-engine pick path, kept verbatim (per-vertex
//!   cloned `Vec`s, `contains` scans, duplicate-accumulating `taken`) as the raced reference
//!   of experiment E24, exactly like the `ReferenceExecutor` is kept as the executor oracle.
//! * [`HalvingSplit`] — slot-scheduled color-space bipartition: every vertex is given a slot
//!   plus the sizes of its palette's intersection with the lower and upper halves of the
//!   current color space; in its slot it commits to the half with the larger remaining margin
//!   (palette share minus neighbors already committed there), and after all slots have fired
//!   it self-defers if its committed half cannot guarantee a proper greedy completion.
//!
//! All programs take per-vertex inputs at construction time, exactly like the procedures of
//! the paper (the output of one phase is locally known to each vertex when the next starts).

use crate::node::{Algorithm, Inbox, NodeCtx, NodeProgram, Outbox, Status};
use arbcolor_graph::{ColorPool, PaletteSet, PaletteStats};

/// One-round algorithm: every vertex learns the maximum identifier in its closed neighborhood.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProposeMaxId;

/// Node program of [`ProposeMaxId`].
#[derive(Debug, Clone)]
pub struct ProposeMaxIdNode {
    best: u64,
}

impl NodeProgram for ProposeMaxIdNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        outbox.broadcast(ctx.id);
        if ctx.degree == 0 {
            Status::Halted
        } else {
            Status::Active
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        inbox: &Inbox<'_, u64>,
        _outbox: &mut Outbox<u64>,
    ) -> Status {
        for (_, &id) in inbox.iter() {
            self.best = self.best.max(id);
        }
        Status::Halted
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.best
    }
}

impl Algorithm for ProposeMaxId {
    type Node = ProposeMaxIdNode;

    fn node(&self, ctx: &NodeCtx) -> ProposeMaxIdNode {
        ProposeMaxIdNode { best: ctx.id }
    }

    fn name(&self) -> &'static str {
        "propose-max-id"
    }
}

/// Floods the maximum identifier for a fixed number of rounds; after `rounds ≥ diameter`
/// every vertex knows the global maximum.  Used to sanity-check multi-round execution and the
/// round accounting of the executor.
#[derive(Debug, Clone, Copy)]
pub struct FloodMaxId {
    /// How many rounds to flood for.
    pub rounds: usize,
}

/// Node program of [`FloodMaxId`].
#[derive(Debug, Clone)]
pub struct FloodMaxIdNode {
    best: u64,
    remaining: usize,
}

impl NodeProgram for FloodMaxIdNode {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        if self.remaining == 0 {
            return Status::Halted;
        }
        outbox.broadcast(self.best);
        // Counts rounds, so it must be stepped even when no mail arrives (e.g. isolated
        // vertices): self-schedule while active.
        ctx.wake_next_round();
        Status::Active
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, u64>, outbox: &mut Outbox<u64>) -> Status {
        for (_, &id) in inbox.iter() {
            self.best = self.best.max(id);
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            Status::Halted
        } else {
            outbox.broadcast(self.best);
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> u64 {
        self.best
    }
}

impl Algorithm for FloodMaxId {
    type Node = FloodMaxIdNode;

    fn node(&self, ctx: &NodeCtx) -> FloodMaxIdNode {
        FloodMaxIdNode { best: ctx.id, remaining: self.rounds }
    }

    fn name(&self) -> &'static str {
        "flood-max-id"
    }
}

/// Per-vertex input of [`ScheduledListColor`] (the construction-time view; at run time the
/// data lives flattened inside a [`ListColorSchedule`]).
#[derive(Debug, Clone)]
pub struct ListColorSlot {
    /// The round in which this vertex picks its color (slot 0 picks immediately).
    pub slot: usize,
    /// Candidate colors in preference order (the vertex's private list).
    pub palette: Vec<u64>,
    /// Colors this vertex must avoid in addition to its neighbors' announcements (e.g. final
    /// colors of already-colored neighbors outside the current subgraph).
    pub forbidden: Vec<u64>,
}

/// The shared per-execution arena of one [`ScheduledListColor`] run: slots, palettes and
/// forbidden sets for *all* vertices in flat [`ColorPool`]s, plus the per-vertex strike
/// bound and the [`PaletteStats`] reuse counters the nodes feed.
///
/// Node programs borrow slices out of this arena instead of cloning per-vertex `Vec`s, so
/// constructing a node allocates only its [`PaletteSet`] scratch.
#[derive(Debug)]
pub struct ListColorSchedule {
    slots: Vec<usize>,
    /// One past the largest palette color per vertex — the strike-space bound (colors a
    /// palette cannot contain are never struck: they cannot be picked either way).
    bounds: Vec<u64>,
    palettes: ColorPool,
    forbidden: ColorPool,
    stats: PaletteStats,
}

impl ListColorSchedule {
    /// Assembles a schedule from pre-flattened parts; the pools must hold one list per slot.
    pub fn new(slots: Vec<usize>, palettes: ColorPool, forbidden: ColorPool) -> Self {
        assert_eq!(slots.len(), palettes.len(), "one palette per vertex");
        assert_eq!(slots.len(), forbidden.len(), "one forbidden set per vertex");
        let bounds = (0..palettes.len())
            .map(|v| palettes.list(v).iter().copied().max().map_or(0, |c| c + 1))
            .collect();
        ListColorSchedule { slots, bounds, palettes, forbidden, stats: PaletteStats::default() }
    }

    /// Flattens one [`ListColorSlot`] per vertex into a schedule (the nested-input API).
    pub fn from_slots(inputs: &[ListColorSlot]) -> Self {
        let mut palettes =
            ColorPool::with_capacity(inputs.len(), inputs.iter().map(|s| s.palette.len()).sum());
        let mut forbidden =
            ColorPool::with_capacity(inputs.len(), inputs.iter().map(|s| s.forbidden.len()).sum());
        for input in inputs {
            palettes.push_slice(&input.palette);
            forbidden.push_slice(&input.forbidden);
        }
        ListColorSchedule::new(inputs.iter().map(|s| s.slot).collect(), palettes, forbidden)
    }

    /// Number of vertices the schedule covers.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// The reuse counters fed by this schedule's nodes; drivers flush them into the
    /// metrics registry via `obs::record_palette`.
    pub fn stats(&self) -> &PaletteStats {
        &self.stats
    }
}

/// Slot-scheduled greedy list coloring (node-program factory) on the bitset pick path.
///
/// Cost: `max_slot + 1` rounds and one broadcast per vertex.
#[derive(Debug, Clone)]
pub struct ScheduledListColor<'a> {
    schedule: &'a ListColorSchedule,
}

impl<'a> ScheduledListColor<'a> {
    /// Creates the algorithm over a shared [`ListColorSchedule`] arena.
    pub fn new(schedule: &'a ListColorSchedule) -> Self {
        ScheduledListColor { schedule }
    }
}

/// Node program of [`ScheduledListColor`]: borrows its palette from the schedule arena and
/// strikes forbidden plus announced colors into a [`PaletteSet`].
#[derive(Debug, Clone)]
pub struct ScheduledListColorNode<'a> {
    palette: &'a [u64],
    slot: usize,
    stats: &'a PaletteStats,
    struck: PaletteSet,
    chosen: Option<u64>,
    round: usize,
}

impl ScheduledListColorNode<'_> {
    fn pick(&mut self) -> Option<u64> {
        // The first unstruck color in preference order — identical to the Vec-scan
        // `find(|c| !forbidden.contains(c) && !taken.contains(c))`, because the strike set
        // is exactly `forbidden ∪ taken`.
        let choice = self.struck.first_unstruck_of(self.palette);
        self.chosen = choice;
        self.stats.record_pick(self.struck.struck_count());
        choice
    }
}

impl NodeProgram for ScheduledListColorNode<'_> {
    type Msg = u64;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        self.round = 0;
        if self.slot == 0 {
            if let Some(c) = self.pick() {
                outbox.broadcast(c);
            }
            Status::Halted
        } else {
            // `round` counts rounds up to the slot, so the vertex must be stepped every
            // round, mail or not: self-schedule while active.
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, u64>, outbox: &mut Outbox<u64>) -> Status {
        self.round += 1;
        for (_, &c) in inbox.iter() {
            self.struck.strike(c);
        }
        if self.round == self.slot {
            if let Some(c) = self.pick() {
                outbox.broadcast(c);
            }
            Status::Halted
        } else {
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> Option<u64> {
        self.chosen
    }
}

impl<'a> Algorithm for ScheduledListColor<'a> {
    type Node = ScheduledListColorNode<'a>;

    fn node(&self, ctx: &NodeCtx) -> ScheduledListColorNode<'a> {
        let v = ctx.vertex;
        let mut struck = PaletteSet::new(self.schedule.bounds[v]);
        for &c in self.schedule.forbidden.list(v) {
            struck.strike(c);
        }
        ScheduledListColorNode {
            palette: self.schedule.palettes.list(v),
            slot: self.schedule.slots[v],
            stats: self.schedule.stats(),
            struck,
            chosen: None,
            round: 0,
        }
    }

    fn name(&self) -> &'static str {
        "scheduled-list-color"
    }
}

/// The pre-palette-engine pick path of [`ScheduledListColor`], preserved verbatim: the node
/// clones its [`ListColorSlot`], accumulates announced colors (duplicates included) in a
/// `Vec`, and picks with nested `contains` scans.
///
/// Kept as the raced baseline of experiment E24 and the `palette` Criterion group — the
/// same role the `ReferenceExecutor` plays for the executors.  Outputs are bit-identical
/// to [`ScheduledListColor`] on every input.
#[derive(Debug, Clone)]
pub struct VecScanListColor<'a> {
    slots: &'a [ListColorSlot],
}

impl<'a> VecScanListColor<'a> {
    /// Creates the algorithm from one [`ListColorSlot`] per vertex.
    pub fn new(slots: &'a [ListColorSlot]) -> Self {
        VecScanListColor { slots }
    }
}

/// Node program of [`VecScanListColor`].
#[derive(Debug, Clone)]
pub struct VecScanListColorNode {
    input: ListColorSlot,
    taken: Vec<u64>,
    chosen: Option<u64>,
    round: usize,
}

impl VecScanListColorNode {
    fn pick(&mut self) -> Option<u64> {
        let choice = self
            .input
            .palette
            .iter()
            .copied()
            .find(|c| !self.input.forbidden.contains(c) && !self.taken.contains(c));
        self.chosen = choice;
        choice
    }
}

impl NodeProgram for VecScanListColorNode {
    type Msg = u64;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<u64>) -> Status {
        self.round = 0;
        if self.input.slot == 0 {
            if let Some(c) = self.pick() {
                outbox.broadcast(c);
            }
            Status::Halted
        } else {
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn round(&mut self, ctx: &NodeCtx, inbox: &Inbox<'_, u64>, outbox: &mut Outbox<u64>) -> Status {
        self.round += 1;
        for (_, &c) in inbox.iter() {
            self.taken.push(c);
        }
        if self.round == self.input.slot {
            if let Some(c) = self.pick() {
                outbox.broadcast(c);
            }
            Status::Halted
        } else {
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> Option<u64> {
        self.chosen
    }
}

impl Algorithm for VecScanListColor<'_> {
    type Node = VecScanListColorNode;

    fn node(&self, ctx: &NodeCtx) -> VecScanListColorNode {
        VecScanListColorNode {
            input: self.slots[ctx.vertex].clone(),
            taken: Vec::new(),
            chosen: None,
            round: 0,
        }
    }

    fn name(&self) -> &'static str {
        "vecscan-list-color"
    }
}

/// Per-vertex input of [`HalvingSplit`].
#[derive(Debug, Clone)]
pub struct SplitSlot {
    /// The round in which this vertex announces its half (slot 0 announces immediately).
    pub slot: usize,
    /// `|Ψ(v) ∩ lower half|` — the vertex's palette share in the lower half.
    pub low_count: usize,
    /// `|Ψ(v) ∩ upper half|` — the vertex's palette share in the upper half.
    pub high_count: usize,
    /// Half preferred when the margins and the palette shares are both tied (used to break
    /// the symmetry of identical palettes deterministically).
    pub tie_high: bool,
}

/// The side a vertex ends up on after a [`HalvingSplit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitChoice {
    /// The vertex recurses on the lower half of the color space.
    Low,
    /// The vertex recurses on the upper half of the color space.
    High,
    /// The vertex's committed half cannot guarantee a greedy completion
    /// (`palette share < same-half neighbors + 1`); it drops out of the recursion and is
    /// colored by the final cleanup sweep from its original list.
    Deferred,
}

/// Slot-scheduled color-space bipartition (node-program factory).
///
/// Runs for exactly `num_slots` rounds; every vertex broadcasts its committed half once, in
/// its slot, and listens for the whole execution so it can count how many neighbors ended up
/// on its half.  Nodes borrow their [`SplitSlot`] from the shared slice — a split slot is
/// all-scalar, so node construction is allocation-free.
#[derive(Debug, Clone)]
pub struct HalvingSplit<'a> {
    slots: &'a [SplitSlot],
    num_slots: usize,
}

impl<'a> HalvingSplit<'a> {
    /// Creates the algorithm from one [`SplitSlot`] per vertex; every slot must be smaller
    /// than `num_slots`.
    pub fn new(slots: &'a [SplitSlot], num_slots: usize) -> Self {
        assert!(num_slots > 0, "at least one slot is required");
        assert!(
            slots.iter().all(|s| s.slot < num_slots),
            "every slot must be smaller than num_slots"
        );
        HalvingSplit { slots, num_slots }
    }
}

/// Node program of [`HalvingSplit`].
#[derive(Debug, Clone)]
pub struct HalvingSplitNode<'a> {
    input: &'a SplitSlot,
    num_slots: usize,
    committed_low: usize,
    committed_high: usize,
    side_high: Option<bool>,
    deferred: bool,
    round: usize,
}

impl HalvingSplitNode<'_> {
    /// Commits to the half with the larger remaining margin (palette share minus the
    /// neighbors already committed there).
    fn decide(&mut self) -> bool {
        let margin_low = self.input.low_count as i64 - self.committed_low as i64;
        let margin_high = self.input.high_count as i64 - self.committed_high as i64;
        let high = match margin_high.cmp(&margin_low) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.input.high_count.cmp(&self.input.low_count) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => self.input.tie_high,
            },
        };
        self.side_high = Some(high);
        high
    }

    /// After every slot has fired: self-defer when the committed half cannot guarantee a
    /// greedy completion against the neighbors that committed to the same half.
    fn finalize(&mut self) {
        let high = self.side_high.expect("every slot fired");
        let (share, rivals) = if high {
            (self.input.high_count, self.committed_high)
        } else {
            (self.input.low_count, self.committed_low)
        };
        self.deferred = share < rivals + 1;
    }
}

impl NodeProgram for HalvingSplitNode<'_> {
    type Msg = bool;
    type Output = SplitChoice;

    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<bool>) -> Status {
        self.round = 0;
        if self.input.slot == 0 {
            let high = self.decide();
            outbox.broadcast(high);
        }
        // Every vertex counts all num_slots rounds (its own slot fires on the count), so it
        // must be stepped every round, mail or not: self-schedule while active.
        ctx.wake_next_round();
        Status::Active
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        inbox: &Inbox<'_, bool>,
        outbox: &mut Outbox<bool>,
    ) -> Status {
        self.round += 1;
        for (_, &high) in inbox.iter() {
            if high {
                self.committed_high += 1;
            } else {
                self.committed_low += 1;
            }
        }
        if self.round == self.input.slot {
            let high = self.decide();
            outbox.broadcast(high);
        }
        // The slot-(K−1) announcements are delivered in round K, so everyone stays active for
        // exactly num_slots rounds before the deferral check.
        if self.round >= self.num_slots {
            self.finalize();
            Status::Halted
        } else {
            ctx.wake_next_round();
            Status::Active
        }
    }

    fn output(&self, _ctx: &NodeCtx) -> SplitChoice {
        if self.deferred {
            SplitChoice::Deferred
        } else if self.side_high == Some(true) {
            SplitChoice::High
        } else {
            SplitChoice::Low
        }
    }
}

impl<'a> Algorithm for HalvingSplit<'a> {
    type Node = HalvingSplitNode<'a>;

    fn node(&self, ctx: &NodeCtx) -> HalvingSplitNode<'a> {
        HalvingSplitNode {
            input: &self.slots[ctx.vertex],
            num_slots: self.num_slots,
            committed_low: 0,
            committed_high: 0,
            side_high: None,
            deferred: false,
            round: 0,
        }
    }

    fn name(&self) -> &'static str {
        "halving-split"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Executor;
    use arbcolor_graph::generators;

    #[test]
    fn flood_zero_rounds_is_free() {
        let g = generators::cycle(6).unwrap();
        let result = Executor::new(&g).run(&FloodMaxId { rounds: 0 }).unwrap();
        assert_eq!(result.report.rounds, 0);
        for v in g.vertices() {
            assert_eq!(result.outputs[v], g.id(v));
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProposeMaxId.name(), "propose-max-id");
        assert_eq!(FloodMaxId { rounds: 1 }.name(), "flood-max-id");
    }

    #[test]
    fn flood_on_star_converges_in_two_rounds() {
        let g = generators::star(9).unwrap().with_shuffled_ids(2);
        let result = Executor::new(&g).run(&FloodMaxId { rounds: 2 }).unwrap();
        let global_max = g.ids().iter().copied().max().unwrap();
        assert!(result.outputs.iter().all(|&x| x == global_max));
    }

    fn four_cycle_slots() -> Vec<ListColorSlot> {
        vec![
            ListColorSlot { slot: 0, palette: vec![9, 5], forbidden: vec![9] },
            ListColorSlot { slot: 1, palette: vec![5, 7], forbidden: vec![] },
            ListColorSlot { slot: 0, palette: vec![5, 6], forbidden: vec![] },
            ListColorSlot { slot: 1, palette: vec![5, 8], forbidden: vec![] },
        ]
    }

    #[test]
    fn scheduled_list_color_respects_lists_and_schedule() {
        // A 4-cycle scheduled by a proper 2-coloring; lists are disjoint from {9} via the
        // forbidden set of vertex 0.
        let g = generators::cycle(4).unwrap();
        let schedule = ListColorSchedule::from_slots(&four_cycle_slots());
        let result = Executor::new(&g).run(&ScheduledListColor::new(&schedule)).unwrap();
        // Vertex 0 avoids forbidden 9 and takes 5; vertex 2 takes 5 (not adjacent to 0);
        // vertices 1 and 3 see both announcements and fall back to their second choice.
        assert_eq!(result.outputs, vec![Some(5), Some(7), Some(5), Some(8)]);
        // The slot-1 vertices pick (and halt) in round 1, so the whole sweep costs one round.
        assert_eq!(result.report.rounds, 1);
        // Four picks were served from the bitset; vertex 0's forbidden 9 plus the two
        // announcements received by each slot-1 vertex were struck.
        let stats = schedule.stats().snapshot();
        assert_eq!(stats.picks_served, 4);
        assert!(stats.colors_struck >= 3);
    }

    #[test]
    fn bitset_and_vecscan_pick_paths_are_bit_identical() {
        let g = generators::cycle(4).unwrap();
        let slots = four_cycle_slots();
        let schedule = ListColorSchedule::from_slots(&slots);
        let bitset = Executor::new(&g).run(&ScheduledListColor::new(&schedule)).unwrap();
        let vecscan = Executor::new(&g).run(&VecScanListColor::new(&slots)).unwrap();
        assert_eq!(bitset.outputs, vecscan.outputs);
        assert_eq!(bitset.report, vecscan.report);
    }

    #[test]
    fn scheduled_list_color_reports_exhausted_lists_as_none() {
        let g = generators::path(2).unwrap();
        let slots = vec![
            ListColorSlot { slot: 0, palette: vec![1], forbidden: vec![] },
            ListColorSlot { slot: 1, palette: vec![1], forbidden: vec![] },
        ];
        let schedule = ListColorSchedule::from_slots(&slots);
        let result = Executor::new(&g).run(&ScheduledListColor::new(&schedule)).unwrap();
        assert_eq!(result.outputs[0], Some(1));
        assert_eq!(result.outputs[1], None);
        let vecscan = Executor::new(&g).run(&VecScanListColor::new(&slots)).unwrap();
        assert_eq!(result.outputs, vecscan.outputs);
    }

    #[test]
    fn halving_split_balances_identical_palettes_by_margin() {
        // A triangle with palettes split 2/2: the slot-0 vertex takes its tie-break half, and
        // the later vertices see it and flow to the other half, keeping every margin positive.
        let g = generators::complete(3).unwrap();
        let slots = vec![
            SplitSlot { slot: 0, low_count: 2, high_count: 2, tie_high: false },
            SplitSlot { slot: 1, low_count: 2, high_count: 2, tie_high: false },
            SplitSlot { slot: 2, low_count: 2, high_count: 2, tie_high: false },
        ];
        let result = Executor::new(&g).run(&HalvingSplit::new(&slots, 3)).unwrap();
        assert_eq!(result.outputs[0], SplitChoice::Low);
        assert_eq!(result.outputs[1], SplitChoice::High);
        // Vertex 2 sees one commitment per half; margins tie, counts tie, tie_high says Low.
        assert_eq!(result.outputs[2], SplitChoice::Low);
        assert_eq!(result.report.rounds, 3);
    }

    #[test]
    fn halving_split_defers_vertices_without_a_greedy_guarantee() {
        // Both endpoints of an edge hold a single lower-half color and announce in the same
        // slot, so neither can guarantee a proper completion: both must defer.
        let g = generators::path(2).unwrap();
        let slots = vec![
            SplitSlot { slot: 0, low_count: 1, high_count: 0, tie_high: false },
            SplitSlot { slot: 0, low_count: 1, high_count: 0, tie_high: false },
        ];
        let result = Executor::new(&g).run(&HalvingSplit::new(&slots, 1)).unwrap();
        assert_eq!(result.outputs, vec![SplitChoice::Deferred, SplitChoice::Deferred]);
    }
}
