//! The node-program interface of the LOCAL-model simulator.

use arbcolor_graph::Vertex;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The neighbor identifiers of one vertex, as a view into a graph-wide CSR-shaped table.
///
/// The executors build **one** `Arc<[u64]>` holding the identifier of every arc target
/// (`table[a] = id(arc_target(a))`) per execution; every [`NodeCtx`] then borrows its own
/// window of it, so constructing `n` contexts costs one allocation instead of `n` owned
/// `Vec<u64>`s.  Dereferences to `[u64]`, so indexing and iteration work as before.
#[derive(Clone)]
pub struct NeighborIds {
    /// Identifiers of every arc target of the whole graph, shared by all contexts.
    table: Arc<[u64]>,
    /// Start of this vertex's window (its first arc index).
    start: usize,
    /// Window length (the vertex degree).
    len: usize,
}

impl NeighborIds {
    /// A view over `table[range]`; `range` must be the arc range of the vertex.
    pub fn from_table(table: Arc<[u64]>, range: std::ops::Range<usize>) -> Self {
        assert!(range.end <= table.len(), "arc range out of bounds");
        NeighborIds { start: range.start, len: range.len(), table }
    }

    /// Builds a standalone view from an owned list (tests and hand-rolled contexts).
    pub fn from_vec(ids: Vec<u64>) -> Self {
        let len = ids.len();
        NeighborIds { table: ids.into(), start: 0, len }
    }
}

impl From<Vec<u64>> for NeighborIds {
    fn from(ids: Vec<u64>) -> Self {
        NeighborIds::from_vec(ids)
    }
}

impl Deref for NeighborIds {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        &self.table[self.start..self.start + self.len]
    }
}

impl std::fmt::Debug for NeighborIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for NeighborIds {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for NeighborIds {}

/// Everything a vertex is allowed to know at the start of an algorithm.
///
/// In the LOCAL model a vertex initially knows its own unique identifier, its degree, and the
/// global parameters of the problem (`n`, and for Linial-style algorithms the size of the
/// identifier space).  We additionally expose the identifiers of the neighbors (the `KT1`
/// assumption); algorithms that want to work under `KT0` can simply ignore
/// [`NodeCtx::neighbor_ids`] and learn them with one round of communication.
#[derive(Debug)]
pub struct NodeCtx {
    /// Simulator-internal vertex index (stable across phases of a multi-phase algorithm, but
    /// *not* to be used as an identifier by node programs — use [`NodeCtx::id`]).
    pub vertex: Vertex,
    /// The unique LOCAL-model identifier of this vertex (in `1..=id_space`).
    pub id: u64,
    /// Number of vertices of the network.
    pub n: usize,
    /// Upper bound on the identifier space (identifiers are in `1..=id_space`).
    pub id_space: u64,
    /// Degree of this vertex.
    pub degree: usize,
    /// Identifiers of the neighbors, indexed by port (position in the adjacency list).
    /// Backed by one table shared across all contexts of an execution.
    pub neighbor_ids: NeighborIds,
    /// Set by [`NodeCtx::wake_next_round`], drained by the executors after every `init`/
    /// `round` call.  Atomic (not `Cell`) so contexts can be shared across the worker
    /// threads of the work-stealing executor.
    wake: AtomicBool,
}

impl NodeCtx {
    /// Assembles a context from its public fields (the executors and hand-rolled test
    /// contexts go through this).
    pub fn new(
        vertex: Vertex,
        id: u64,
        n: usize,
        id_space: u64,
        degree: usize,
        neighbor_ids: NeighborIds,
    ) -> Self {
        NodeCtx { vertex, id, n, id_space, degree, neighbor_ids, wake: AtomicBool::new(false) }
    }

    /// The port of the neighbor with identifier `id`, if any.
    pub fn port_of_neighbor_id(&self, id: u64) -> Option<usize> {
        self.neighbor_ids.iter().position(|&x| x == id)
    }

    /// Schedules this vertex to act in the next round even if no message arrives.
    ///
    /// The executors only invoke [`NodeProgram::round`] for vertices with pending mail or a
    /// wakeup (see the trait docs for the activation contract).  Programs that progress on
    /// an internal counter or phase machine — anything that must act on an empty inbox —
    /// call this from every `init`/`round` invocation after which they still want to run.
    /// The flag is consumed by the executor after each invocation, so a wakeup covers
    /// exactly one round.  Calling it from a `round` that returns [`Status::Halted`] has no
    /// effect.
    pub fn wake_next_round(&self) {
        self.wake.store(true, Ordering::Relaxed);
    }

    /// Consumes the wakeup flag set during the preceding `init`/`round` call.
    pub(crate) fn take_wake(&self) -> bool {
        self.wake.swap(false, Ordering::Relaxed)
    }
}

impl Clone for NodeCtx {
    fn clone(&self) -> Self {
        NodeCtx {
            vertex: self.vertex,
            id: self.id,
            n: self.n,
            id_space: self.id_space,
            degree: self.degree,
            neighbor_ids: self.neighbor_ids.clone(),
            wake: AtomicBool::new(self.wake.load(Ordering::Relaxed)),
        }
    }
}

/// Whether a node keeps participating after the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The node wants to receive the next round's messages.
    Active,
    /// The node's output is final; it sends the messages produced in this round and then
    /// stops participating.
    Halted,
}

/// Messages delivered to a node at the start of a round.
///
/// Logically a sequence of `(port, message)` pairs, where `port` is the receiving vertex's
/// port towards the sender.  Two physical representations exist: a plain pair slice
/// ([`Inbox::new`], used by the reference executor and tests) and the flat arc-indexed slot
/// view of the zero-allocation message fabric (`Inbox::from_slots`).  Iteration order is
/// identical in both: ports ascending — which equals sender-index ascending, because
/// adjacency lists are sorted — with multiple messages from the same port kept in send
/// order.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    repr: InboxRepr<'a, M>,
}

/// Physical layout of an [`Inbox`].
#[derive(Debug)]
enum InboxRepr<'a, M> {
    /// `(port, message)` pairs in delivery order.
    Pairs(&'a [(usize, M)]),
    /// Arc-indexed slots of the flat message fabric.
    Slots {
        /// This vertex's slot window, indexed by port; `Some` holds the first (usually
        /// only) message delivered to that port this round.
        slots: &'a [Option<M>],
        /// Occupied arcs of this vertex, ascending (a sub-slice of the round's sorted
        /// fill list).
        filled: &'a [usize],
        /// Overflow `(arc, message)` pairs for ports that received more than one message,
        /// sorted by arc with send order preserved within an arc.
        spill: &'a [(usize, M)],
        /// The vertex's first arc index; `port = arc - base`.
        base: usize,
    },
}

impl<'a, M> Inbox<'a, M> {
    /// Wraps a slice of `(port, message)` pairs.
    ///
    /// This representation is deliberately kept alive alongside the flat-slot one: the
    /// [`ReferenceExecutor`](crate::ReferenceExecutor) oracle must share no fabric code with
    /// the executors it checks, so it builds its inboxes from plain per-vertex pair vectors
    /// through this constructor (as do hand-rolled node-program tests).
    pub fn new(messages: &'a [(usize, M)]) -> Self {
        Inbox { repr: InboxRepr::Pairs(messages) }
    }

    /// Wraps one vertex's window of the flat arc-indexed fabric (see the type docs).
    pub(crate) fn from_slots(
        slots: &'a [Option<M>],
        filled: &'a [usize],
        spill: &'a [(usize, M)],
        base: usize,
    ) -> Self {
        Inbox { repr: InboxRepr::Slots { slots, filled, spill, base } }
    }

    /// Iterates over `(port, &message)` pairs (ports ascending; same-port messages in send
    /// order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a M)> + '_ {
        match self.repr {
            InboxRepr::Pairs(messages) => InboxIter::Pairs(messages.iter()),
            InboxRepr::Slots { slots, filled, spill, base } => {
                InboxIter::Slots { slots, filled, fpos: 0, spill, spos: 0, base, current: None }
            }
        }
    }

    /// The first message received from the neighbor at `port`, if any.
    ///
    /// O(1) on the flat-slot representation (one array read), O(len) on the pair slice.
    pub fn from_port(&self, port: usize) -> Option<&'a M> {
        match self.repr {
            InboxRepr::Pairs(messages) => messages.iter().find(|(p, _)| *p == port).map(|(_, m)| m),
            InboxRepr::Slots { slots, .. } => slots.get(port).and_then(|slot| slot.as_ref()),
        }
    }

    /// Number of messages received this round.
    pub fn len(&self) -> usize {
        match self.repr {
            InboxRepr::Pairs(messages) => messages.len(),
            InboxRepr::Slots { filled, spill, .. } => filled.len() + spill.len(),
        }
    }

    /// Whether no messages were received this round.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Iterator behind [`Inbox::iter`], merging slots and spill in port order.
enum InboxIter<'a, M> {
    Pairs(std::slice::Iter<'a, (usize, M)>),
    Slots {
        slots: &'a [Option<M>],
        filled: &'a [usize],
        fpos: usize,
        spill: &'a [(usize, M)],
        spos: usize,
        base: usize,
        /// Arc whose spill entries are being drained (its slot message was already
        /// yielded).
        current: Option<usize>,
    },
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (usize, &'a M);

    fn next(&mut self) -> Option<(usize, &'a M)> {
        match self {
            InboxIter::Pairs(iter) => iter.next().map(|(p, m)| (*p, m)),
            InboxIter::Slots { slots, filled, fpos, spill, spos, base, current } => {
                if let Some(arc) = *current {
                    if let Some((a, m)) = spill.get(*spos) {
                        if *a == arc {
                            *spos += 1;
                            return Some((arc - *base, m));
                        }
                    }
                    *current = None;
                }
                let arc = *filled.get(*fpos)?;
                *fpos += 1;
                *current = Some(arc);
                let message =
                    slots[arc - *base].as_ref().expect("filled arcs have an occupied slot");
                Some((arc - *base, message))
            }
        }
    }
}

/// Messages a node wants delivered to its neighbors at the start of the next round.
#[derive(Debug)]
pub struct Outbox<M> {
    messages: Vec<(usize, M)>,
    degree: usize,
}

impl<M: Clone> Outbox<M> {
    /// Creates an empty outbox for a vertex of the given degree.
    pub fn new(degree: usize) -> Self {
        Outbox { messages: Vec::new(), degree }
    }

    /// Re-targets the outbox at a vertex of the given degree, clearing queued messages but
    /// keeping the buffer's capacity — the executors reuse one outbox across all vertices
    /// so steady-state rounds allocate nothing.
    pub fn reset(&mut self, degree: usize) {
        self.messages.clear();
        self.degree = degree;
    }

    /// Sends `message` to the neighbor at `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a valid port of this vertex.
    pub fn send(&mut self, port: usize, message: M) {
        assert!(port < self.degree, "port {port} out of range (degree {})", self.degree);
        self.messages.push((port, message));
    }

    /// Sends a copy of `message` to every neighbor.
    pub fn broadcast(&mut self, message: M) {
        for port in 0..self.degree {
            self.messages.push((port, message.clone()));
        }
    }

    /// Number of messages queued.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Removes and returns the queued `(port, message)` pairs, keeping the buffer capacity.
    pub fn drain(&mut self) -> impl Iterator<Item = (usize, M)> + '_ {
        self.messages.drain(..)
    }

    /// Consumes the outbox, returning the queued `(port, message)` pairs.
    pub fn into_messages(self) -> Vec<(usize, M)> {
        self.messages
    }
}

/// The per-vertex state machine of a distributed algorithm.
///
/// The executor drives it as follows: `init` runs before the first communication round (for
/// **every** vertex) and may queue messages; then, in every round, the messages queued in the
/// previous step are delivered and `round` is invoked.  When a node returns
/// [`Status::Halted`], the messages it queued in that invocation are still delivered, but it
/// takes no further part in the execution.  `output` is read once the whole network has
/// halted.
///
/// # Activation contract
///
/// A round only invokes `round` on the **frontier**: vertices that either received at least
/// one message in that round or called [`NodeCtx::wake_next_round`] during their previous
/// `init`/`round` invocation.  Quiescent vertices are free — a round costs
/// O(|frontier| + messages), not O(n).  This puts one obligation on node programs:
///
/// * A program that must act without incoming mail (an internal round counter, a slot
///   schedule, a phase machine) calls `ctx.wake_next_round()` in every invocation after
///   which it still wants to run.  The flag covers exactly one round, so "wake while
///   [`Status::Active`]" is the usual idiom.
/// * A purely message-driven program (acts only when mail arrives, empty-inbox rounds would
///   be no-ops) needs no change — it is simply not invoked until mail shows up, which is
///   where the O(|frontier|) rounds come from.
///
/// An active vertex that is skipped in a round observes nothing: skipping a no-op invocation
/// is indistinguishable from running it.  The [`ReferenceExecutor`](crate::ReferenceExecutor)
/// oracle still invokes every active vertex every round and ignores wakeups, so the
/// bit-identity suites double as a check that converted programs treat a skipped no-op round
/// and an executed one identically.
pub trait NodeProgram {
    /// Message type exchanged by this algorithm.  The [`MessageCost`](crate::cost::MessageCost)
    /// bound is what lets the executors account CONGEST bandwidth for every algorithm.
    type Msg: Clone + crate::cost::MessageCost;
    /// Per-vertex output of the algorithm.
    type Output;

    /// Local initialization; may queue the messages of the first round.
    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<Self::Msg>) -> Status;

    /// One synchronous round: consume the delivered messages, queue the next round's messages.
    fn round(
        &mut self,
        ctx: &NodeCtx,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
    ) -> Status;

    /// The final output of this vertex.
    fn output(&self, ctx: &NodeCtx) -> Self::Output;
}

/// A distributed algorithm: a factory of node programs plus a display name.
///
/// The factory receives the [`NodeCtx`] of the vertex, so per-vertex inputs computed by a
/// previous phase (an orientation, a defective coloring, …) can be embedded into the node
/// program at construction time — exactly as in the paper, where the output of one procedure
/// is locally known to each vertex when the next procedure starts.
pub trait Algorithm {
    /// The node program type.
    type Node: NodeProgram;

    /// Creates the node program for the vertex described by `ctx`.
    fn node(&self, ctx: &NodeCtx) -> Self::Node;

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str {
        "algorithm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_send_and_broadcast() {
        let mut out: Outbox<u32> = Outbox::new(3);
        assert!(out.is_empty());
        out.send(1, 7);
        out.broadcast(9);
        assert_eq!(out.len(), 4);
        let msgs = out.into_messages();
        assert_eq!(msgs[0], (1, 7));
        assert_eq!(msgs.len(), 4);
    }

    #[test]
    fn outbox_reset_retargets_and_clears() {
        let mut out: Outbox<u32> = Outbox::new(1);
        out.send(0, 3);
        out.reset(2);
        assert!(out.is_empty());
        out.send(1, 4); // port 1 is valid after the reset to degree 2
        assert_eq!(out.drain().collect::<Vec<_>>(), vec![(1, 4)]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn outbox_rejects_bad_port() {
        let mut out: Outbox<u32> = Outbox::new(2);
        out.send(2, 1);
    }

    #[test]
    fn inbox_lookup() {
        let raw = vec![(0usize, 5u32), (2, 7)];
        let inbox = Inbox::new(&raw);
        assert_eq!(inbox.len(), 2);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.from_port(2), Some(&7));
        assert_eq!(inbox.from_port(1), None);
        let collected: Vec<_> = inbox.iter().collect();
        assert_eq!(collected, vec![(0, &5), (2, &7)]);
    }

    #[test]
    fn slot_inbox_matches_pair_inbox() {
        // A degree-4 vertex whose arcs are 10..14; ports 0 and 2 received one message each,
        // port 3 received three (one slotted + two spilled).
        let slots = vec![Some(5u32), None, Some(7), Some(9)];
        let filled = vec![10usize, 12, 13];
        let spill = vec![(13usize, 11u32), (13, 13)];
        let inbox = Inbox::from_slots(&slots, &filled, &spill, 10);
        assert_eq!(inbox.len(), 5);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.from_port(0), Some(&5));
        assert_eq!(inbox.from_port(1), None);
        assert_eq!(inbox.from_port(3), Some(&9));
        assert_eq!(inbox.from_port(9), None);
        let collected: Vec<_> = inbox.iter().collect();
        assert_eq!(collected, vec![(0, &5), (2, &7), (3, &9), (3, &11), (3, &13)]);

        let empty: Inbox<'_, u32> = Inbox::from_slots(&slots[1..2], &[], &[], 11);
        assert!(empty.is_empty());
        assert_eq!(empty.iter().count(), 0);
    }

    #[test]
    fn neighbor_ids_window_views_the_shared_table() {
        let table: Arc<[u64]> = vec![9, 4, 7, 2].into();
        let view = NeighborIds::from_table(Arc::clone(&table), 1..3);
        assert_eq!(&*view, &[4, 7]);
        assert_eq!(view, NeighborIds::from_vec(vec![4, 7]));
        assert_eq!(format!("{view:?}"), "[4, 7]");
    }

    #[test]
    fn ctx_port_lookup() {
        let ctx = NodeCtx::new(0, 3, 4, 4, 2, NeighborIds::from_vec(vec![9, 4]));
        assert_eq!(ctx.port_of_neighbor_id(4), Some(1));
        assert_eq!(ctx.port_of_neighbor_id(8), None);
    }

    #[test]
    fn wakeup_flag_is_consumed_once_and_survives_clone() {
        let ctx = NodeCtx::new(0, 1, 1, 1, 0, NeighborIds::from_vec(vec![]));
        assert!(!ctx.take_wake());
        ctx.wake_next_round();
        ctx.wake_next_round(); // idempotent
        let copy = ctx.clone();
        assert!(ctx.take_wake());
        assert!(!ctx.take_wake(), "the flag covers exactly one drain");
        assert!(copy.take_wake(), "a clone carries the pending wakeup");
    }
}
