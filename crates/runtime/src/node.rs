//! The node-program interface of the LOCAL-model simulator.

use arbcolor_graph::Vertex;

/// Everything a vertex is allowed to know at the start of an algorithm.
///
/// In the LOCAL model a vertex initially knows its own unique identifier, its degree, and the
/// global parameters of the problem (`n`, and for Linial-style algorithms the size of the
/// identifier space).  We additionally expose the identifiers of the neighbors (the `KT1`
/// assumption); algorithms that want to work under `KT0` can simply ignore
/// [`NodeCtx::neighbor_ids`] and learn them with one round of communication.
#[derive(Debug, Clone)]
pub struct NodeCtx {
    /// Simulator-internal vertex index (stable across phases of a multi-phase algorithm, but
    /// *not* to be used as an identifier by node programs — use [`NodeCtx::id`]).
    pub vertex: Vertex,
    /// The unique LOCAL-model identifier of this vertex (in `1..=id_space`).
    pub id: u64,
    /// Number of vertices of the network.
    pub n: usize,
    /// Upper bound on the identifier space (identifiers are in `1..=id_space`).
    pub id_space: u64,
    /// Degree of this vertex.
    pub degree: usize,
    /// Identifiers of the neighbors, indexed by port (position in the adjacency list).
    pub neighbor_ids: Vec<u64>,
}

impl NodeCtx {
    /// The port of the neighbor with identifier `id`, if any.
    pub fn port_of_neighbor_id(&self, id: u64) -> Option<usize> {
        self.neighbor_ids.iter().position(|&x| x == id)
    }
}

/// Whether a node keeps participating after the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The node wants to receive the next round's messages.
    Active,
    /// The node's output is final; it sends the messages produced in this round and then
    /// stops participating.
    Halted,
}

/// Messages delivered to a node at the start of a round.
///
/// Each entry is `(port, message)`, where `port` is the receiving vertex's port towards the
/// sender.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    messages: &'a [(usize, M)],
}

impl<'a, M> Inbox<'a, M> {
    /// Wraps a slice of `(port, message)` pairs.
    pub fn new(messages: &'a [(usize, M)]) -> Self {
        Inbox { messages }
    }

    /// Iterates over `(port, &message)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a M)> + '_ {
        self.messages.iter().map(|(p, m)| (*p, m))
    }

    /// The message received from the neighbor at `port`, if any.
    pub fn from_port(&self, port: usize) -> Option<&'a M> {
        self.messages.iter().find(|(p, _)| *p == port).map(|(_, m)| m)
    }

    /// Number of messages received this round.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether no messages were received this round.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// Messages a node wants delivered to its neighbors at the start of the next round.
#[derive(Debug)]
pub struct Outbox<M> {
    messages: Vec<(usize, M)>,
    degree: usize,
}

impl<M: Clone> Outbox<M> {
    /// Creates an empty outbox for a vertex of the given degree.
    pub fn new(degree: usize) -> Self {
        Outbox { messages: Vec::new(), degree }
    }

    /// Sends `message` to the neighbor at `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a valid port of this vertex.
    pub fn send(&mut self, port: usize, message: M) {
        assert!(port < self.degree, "port {port} out of range (degree {})", self.degree);
        self.messages.push((port, message));
    }

    /// Sends a copy of `message` to every neighbor.
    pub fn broadcast(&mut self, message: M) {
        for port in 0..self.degree {
            self.messages.push((port, message.clone()));
        }
    }

    /// Number of messages queued.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Consumes the outbox, returning the queued `(port, message)` pairs.
    pub fn into_messages(self) -> Vec<(usize, M)> {
        self.messages
    }
}

/// The per-vertex state machine of a distributed algorithm.
///
/// The executor drives it as follows: `init` runs before the first communication round and
/// may queue messages; then, for every round, the messages queued in the previous step are
/// delivered and `round` is invoked.  When a node returns [`Status::Halted`], the messages it
/// queued in that invocation are still delivered, but it takes no further part in the
/// execution.  `output` is read once the whole network has halted.
pub trait NodeProgram {
    /// Message type exchanged by this algorithm.
    type Msg: Clone;
    /// Per-vertex output of the algorithm.
    type Output;

    /// Local initialization; may queue the messages of the first round.
    fn init(&mut self, ctx: &NodeCtx, outbox: &mut Outbox<Self::Msg>) -> Status;

    /// One synchronous round: consume the delivered messages, queue the next round's messages.
    fn round(
        &mut self,
        ctx: &NodeCtx,
        inbox: &Inbox<'_, Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
    ) -> Status;

    /// The final output of this vertex.
    fn output(&self, ctx: &NodeCtx) -> Self::Output;
}

/// A distributed algorithm: a factory of node programs plus a display name.
///
/// The factory receives the [`NodeCtx`] of the vertex, so per-vertex inputs computed by a
/// previous phase (an orientation, a defective coloring, …) can be embedded into the node
/// program at construction time — exactly as in the paper, where the output of one procedure
/// is locally known to each vertex when the next procedure starts.
pub trait Algorithm {
    /// The node program type.
    type Node: NodeProgram;

    /// Creates the node program for the vertex described by `ctx`.
    fn node(&self, ctx: &NodeCtx) -> Self::Node;

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str {
        "algorithm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_send_and_broadcast() {
        let mut out: Outbox<u32> = Outbox::new(3);
        assert!(out.is_empty());
        out.send(1, 7);
        out.broadcast(9);
        assert_eq!(out.len(), 4);
        let msgs = out.into_messages();
        assert_eq!(msgs[0], (1, 7));
        assert_eq!(msgs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn outbox_rejects_bad_port() {
        let mut out: Outbox<u32> = Outbox::new(2);
        out.send(2, 1);
    }

    #[test]
    fn inbox_lookup() {
        let raw = vec![(0usize, 5u32), (2, 7)];
        let inbox = Inbox::new(&raw);
        assert_eq!(inbox.len(), 2);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.from_port(2), Some(&7));
        assert_eq!(inbox.from_port(1), None);
        let collected: Vec<_> = inbox.iter().collect();
        assert_eq!(collected, vec![(0, &5), (2, &7)]);
    }

    #[test]
    fn ctx_port_lookup() {
        let ctx =
            NodeCtx { vertex: 0, id: 3, n: 4, id_space: 4, degree: 2, neighbor_ids: vec![9, 4] };
        assert_eq!(ctx.port_of_neighbor_id(4), Some(1));
        assert_eq!(ctx.port_of_neighbor_id(8), None);
    }
}
