//! Chrome trace-event JSON export (viewable in Perfetto / `chrome://tracing`).
//!
//! [`chrome_trace_json`] renders a [`SpanCollector`] as a JSON
//! object with a `traceEvents` array:
//!
//! * every span becomes a complete (`"ph": "X"`) slice — one slice per span, in span-index
//!   order, all on `pid` 1 / `tid` 1 so slices nest by interval containment.  The span's
//!   deterministic costs (rounds/messages/total_bits/max_edge_bits) ride in `args`,
//!   together with the span kind and the collector index of the parent slice;
//! * every traced round attached to a span becomes an instant (`"ph": "i"`) event placed
//!   at the round's cumulative wall-clock offset within its span.
//!
//! Timestamps are microseconds from the collector's epoch.  Wall time is advisory, so
//! child intervals are clamped into their parent's interval before emission — the RAII
//! span API guarantees logical nesting, and the clamp makes the emitted integers honor it
//! exactly despite rounding.  Load the file via Perfetto's "Open trace file" (the legacy
//! JSON format is auto-detected).

use super::{SpanCollector, SpanKind, SpanRecord};
use std::fmt::Write as _;

/// Escapes `text` as the body of a JSON string literal.
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A span's emission interval in integer microseconds, clamped into its parent.
fn slice_bounds(spans: &[SpanRecord], now_ns: u64) -> Vec<(u64, u64)> {
    let mut bounds: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for span in spans {
        let end_ns = if span.open { now_ns } else { span.start_ns.saturating_add(span.wall_ns) };
        let (mut start_us, mut end_us) = (span.start_ns / 1_000, end_ns / 1_000);
        if let Some(parent) = span.parent {
            // Parents always precede children in collector order, so bounds[parent] exists.
            let (parent_start, parent_end) = bounds[parent];
            start_us = start_us.clamp(parent_start, parent_end);
            end_us = end_us.clamp(start_us, parent_end);
        } else {
            end_us = end_us.max(start_us);
        }
        bounds.push((start_us, end_us));
    }
    bounds
}

/// Renders the collector as Chrome trace-event JSON (see the module docs).
pub fn chrome_trace_json(collector: &SpanCollector) -> String {
    let spans = collector.snapshot();
    let bounds = slice_bounds(&spans, collector.elapsed_ns());
    let mut events: Vec<String> = Vec::with_capacity(spans.len());
    for (index, span) in spans.iter().enumerate() {
        let (start_us, end_us) = bounds[index];
        let category = match span.kind {
            SpanKind::Phase => "phase",
            SpanKind::Exec => "exec",
        };
        let parent = match span.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        events.push(format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,",
                "\"ts\":{},\"dur\":{},\"args\":{{\"parent\":{},\"rounds\":{},",
                "\"messages\":{},\"total_bits\":{},\"max_edge_bits\":{},",
                "\"peak_frontier\":{},\"frontier_steps\":{}}}}}"
            ),
            escape_json(&span.name),
            category,
            start_us,
            end_us - start_us,
            parent,
            span.report.rounds,
            span.report.messages,
            span.report.total_bits,
            span.report.max_edge_bits,
            span.peak_frontier,
            span.frontier_steps,
        ));
    }
    // Instants after all slices, so a slice's array index equals its collector index.
    for (index, span) in spans.iter().enumerate() {
        let (start_us, end_us) = bounds[index];
        let mut offset_ns: u64 = 0;
        for round in &span.rounds {
            let ts = (start_us + offset_ns / 1_000).min(end_us);
            offset_ns = offset_ns.saturating_add(round.wall_ns);
            events.push(format!(
                concat!(
                    "{{\"name\":\"round {}\",\"cat\":\"round\",\"ph\":\"i\",\"s\":\"t\",",
                    "\"pid\":1,\"tid\":1,\"ts\":{},\"args\":{{\"span\":{},\"frontier\":{},",
                    "\"messages\":{},\"total_bits\":{}}}}}"
                ),
                round.round, ts, index, round.frontier, round.messages, round.total_bits,
            ));
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RoundReport;
    use crate::obs::{self, SpanCollector};
    use crate::trace::{RoundTrace, TraceRecorder};

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn slices_nest_and_instants_follow() {
        let collector = SpanCollector::new();
        let _guard = obs::install(&collector);
        {
            let outer = obs::phase("outer");
            outer.charge(RoundReport::new(4, 10));
            {
                let exec = obs::exec_span("flood");
                exec.charge(RoundReport::new(4, 10));
                let mut trace = TraceRecorder::new();
                trace.record(RoundTrace {
                    round: 1,
                    frontier: 3,
                    messages: 10,
                    ..RoundTrace::default()
                });
                exec.attach_trace(&trace);
            }
            obs::record_leaf("leaf", RoundReport::new(1, 2));
        }
        let json = chrome_trace_json(&collector);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"cat\":\"exec\""));
        assert!(json.contains("\"name\":\"round 1\""));
        assert!(json.contains("\"ph\":\"i\""));
        // The child slices reference the outer span (collector index 0).
        assert!(json.contains("\"parent\":0"));
        // Deterministic costs ride in args.
        assert!(json.contains("\"rounds\":4,\"messages\":10"));
    }

    #[test]
    fn child_bounds_are_clamped_into_the_parent() {
        let collector = SpanCollector::new();
        let _guard = obs::install(&collector);
        {
            let _outer = obs::phase("outer");
            let _inner = obs::phase("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let spans = collector.snapshot();
        let bounds = slice_bounds(&spans, collector.elapsed_ns());
        let (outer_start, outer_end) = bounds[0];
        let (inner_start, inner_end) = bounds[1];
        assert!(outer_start <= inner_start);
        assert!(inner_start <= inner_end);
        assert!(inner_end <= outer_end);
    }
}
