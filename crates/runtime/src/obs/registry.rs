//! A small hand-rolled metrics registry: named counters and power-of-two-bucket histograms.
//!
//! The registry lives inside a [`SpanCollector`](super::SpanCollector) and is fed by the
//! executors via [`record_run`](super::record_run): per-run counters (runs, rounds,
//! messages, bits) and per-run distributions (rounds per run, messages per run) in
//! power-of-two buckets.  Everything is deterministic — wall time never enters the
//! registry — and renders as text via [`MetricsRegistry::render`].

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket `i` counts values whose bit length is `i`, i.e.
/// bucket 0 holds the value 0 and bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A distribution over `u64` values in power-of-two buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: vec![0; BUCKETS], total: 0, sum: 0 }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// The bucket index of `value`: its bit length (0 for the value 0).
    fn bucket(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The non-empty buckets as `(upper_bound_exclusive, count)` pairs, in value order.
    /// The upper bound of bucket 0 is 1 (it holds only the value 0).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, &count)| {
                let bound = if i >= 64 { u64::MAX } else { 1u64 << i };
                (bound, count)
            })
            .collect()
    }
}

/// Named counters and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records `value` into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// The counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(name, &value)| (name.as_str(), value))
    }

    /// The histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(name, histogram)| (name.as_str(), histogram))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders counters and histograms as indented text lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in self.counters() {
            let _ = writeln!(out, "  {name} = {value}");
        }
        for (name, histogram) in self.histograms() {
            let _ = writeln!(out, "  {name}: count={} sum={}", histogram.count(), histogram.sum());
            for (bound, count) in histogram.buckets() {
                let _ = writeln!(out, "    < {bound}: {count}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut registry = MetricsRegistry::default();
        assert!(registry.is_empty());
        registry.incr("runs", 1);
        registry.incr("runs", 2);
        registry.incr("rounds", 7);
        let counters: Vec<_> = registry.counters().collect();
        assert_eq!(counters, vec![("rounds", 7), ("runs", 3)]);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        // 0 → bucket 0 (<1); 1 → <2; 2,3 → <4; 4 → <8; 1000 → <1024.
        assert_eq!(h.buckets(), vec![(1, 1), (2, 1), (4, 2), (8, 1), (1024, 1)]);
    }

    #[test]
    fn render_lists_counters_then_histograms() {
        let mut registry = MetricsRegistry::default();
        registry.incr("executor.runs", 2);
        registry.observe("rounds_per_run", 5);
        let text = registry.render();
        assert!(text.contains("executor.runs = 2"));
        assert!(text.contains("rounds_per_run: count=1 sum=5"));
        assert!(text.contains("< 8: 1"));
    }
}
