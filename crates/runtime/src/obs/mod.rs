//! Phase-attributed observability: spans, a metrics registry, and trace exporters.
//!
//! The executors report *aggregate* costs ([`RoundReport`]) and, when asked, a flat
//! per-round stream ([`TraceRecorder`]) — but the paper's
//! algorithms are *analyzed* phase by phase (H-partition → arbdefective coloring →
//! legal-coloring cleanup for Barenboim–Elkin; a recursion of color-space-halving levels
//! for Ghaffari–Kuhn), and none of the measured rounds, messages, or bits could so far be
//! attributed to the phase that spent them.  This module closes that gap:
//!
//! * [`SpanCollector`] — a thread-safe hierarchical collector of [`SpanRecord`]s.  A
//!   collector is *installed* on the current thread ([`install`]); while one is installed,
//!   the span functions below record into it, and the executors feed the embedded
//!   [`MetricsRegistry`].  Without an installed collector every
//!   hook is a no-op, so uninstrumented runs pay one thread-local read per executor run.
//! * [`phase`] — opens an RAII [`PhaseGuard`]: the span closes (and records its advisory
//!   wall time) when the guard drops, and [`PhaseGuard::charge`] attributes a
//!   deterministic [`RoundReport`] delta to it.  Spans nest: a span opened while another
//!   is open becomes its child.
//! * [`record_leaf`] — records an already-closed child span with a known report, for
//!   attributions that are *computed* rather than measured in place (e.g. the per-iteration
//!   H-partition share of Procedure Legal-Coloring, which interleaves with the rest of the
//!   arbdefective work across branches and is separated out with [`residual`]).
//! * [`phase_rollup`] — aggregates the direct phase children of a span by name, in
//!   first-seen order.  Because the drivers charge spans with the exact ledger entries the
//!   headline [`RoundReport`] is composed from, the rollup of a run's phases sums (via
//!   [`RoundReport::then`]) to the headline report — the invariant experiment E23 and the
//!   `obs_spans` suite assert across all three executors.
//! * [`chrome`] — exports a collector as Chrome trace-event JSON (loadable in Perfetto:
//!   spans as nested slices, traced rounds as instant events), and [`summary_table`]
//!   renders the same tree as text together with the metrics registry.
//!
//! Wall-clock fields (`start_ns`, `wall_ns`) are advisory: they vary with hardware and are
//! never gated or diffed.  The `report` field of every span is deterministic — for a fixed
//! graph, algorithm, and seed it is bit-identical across the sequential, work-stealing,
//! and reference executors at any thread count and chunk size.

pub mod chrome;
pub mod registry;

pub use chrome::chrome_trace_json;
pub use registry::{Histogram, MetricsRegistry};

use crate::metrics::RoundReport;
use crate::trace::TraceRecorder;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// What produced a span: a named algorithm phase, or an executor run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A driver-level algorithm phase (the spans [`phase_rollup`] aggregates).
    Phase,
    /// One executor run (recorded automatically by the executors; trace detail only).
    Exec,
}

/// One traced round attached to an executor span as a Chrome instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundInstant {
    /// The round number (1-based) within the run.
    pub round: usize,
    /// Vertices actually stepped in the round.
    pub frontier: usize,
    /// Messages sent in the round.
    pub messages: usize,
    /// Bits across the round's sends.
    pub total_bits: u64,
    /// Advisory wall-clock nanoseconds of the round.
    pub wall_ns: u64,
}

/// One recorded span: a named slice of work with its deterministic cost delta.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (a phase name like `"h-partition"`, or an algorithm name for executor
    /// spans).
    pub name: String,
    /// Whether this is a driver phase or an executor run.
    pub kind: SpanKind,
    /// Index of the enclosing span in the collector, if any.
    pub parent: Option<usize>,
    /// The deterministic cost attributed to this span (rounds/messages/bits).
    pub report: RoundReport,
    /// Advisory: nanoseconds from the collector's epoch to the span opening.
    pub start_ns: u64,
    /// Advisory: wall-clock nanoseconds the span was open (0 for recorded leaves).
    pub wall_ns: u64,
    /// Largest per-round frontier observed by traces attached to this span.
    pub peak_frontier: usize,
    /// Total vertex steps across traces attached to this span.
    pub frontier_steps: usize,
    /// Per-round instants from attached traces (empty unless a traced run fed the span).
    pub rounds: Vec<RoundInstant>,
    /// Whether the span is still open (exporters treat open spans as ending "now").
    pub(crate) open: bool,
}

/// Shared mutable state of one collector.
struct CollectorState {
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
    metrics: MetricsRegistry,
}

/// A thread-safe hierarchical span collector with an embedded metrics registry.
///
/// Cheap to clone (all clones share the same state).  Install one with [`install`] to
/// start recording; read it back with [`SpanCollector::snapshot`] and the exporters.
#[derive(Clone)]
pub struct SpanCollector {
    epoch: Instant,
    state: Arc<Mutex<CollectorState>>,
}

impl std::fmt::Debug for SpanCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanCollector").field("spans", &self.len()).finish()
    }
}

impl Default for SpanCollector {
    fn default() -> Self {
        SpanCollector::new()
    }
}

impl SpanCollector {
    /// An empty collector whose wall-clock epoch is "now".
    pub fn new() -> Self {
        SpanCollector {
            epoch: Instant::now(),
            state: Arc::new(Mutex::new(CollectorState {
                spans: Vec::new(),
                stack: Vec::new(),
                metrics: MetricsRegistry::default(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CollectorState> {
        self.state.lock().expect("span-collector lock")
    }

    /// Number of spans recorded so far (open or closed).  Callers that want to attribute
    /// only *their* spans take the length before running and pass it to [`phase_rollup`].
    pub fn len(&self) -> usize {
        self.lock().spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all recorded spans, in open order (parents precede their children).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// A copy of the metrics registry the executors fed.
    pub fn metrics(&self) -> MetricsRegistry {
        self.lock().metrics.clone()
    }

    /// Advisory nanoseconds since the collector was created.
    pub fn elapsed_ns(&self) -> u64 {
        saturate_ns(self.epoch.elapsed().as_nanos())
    }
}

fn saturate_ns(ns: u128) -> u64 {
    ns.min(u64::MAX as u128) as u64
}

thread_local! {
    /// The stack of collectors installed on this thread (innermost last).
    static CURRENT: RefCell<Vec<SpanCollector>> = const { RefCell::new(Vec::new()) };
}

/// Installs `collector` as the current thread's recording target until the returned guard
/// drops (restoring whatever was installed before — installs nest).
#[must_use = "recording stops when the guard drops"]
pub fn install(collector: &SpanCollector) -> RecordingGuard {
    CURRENT.with(|c| c.borrow_mut().push(collector.clone()));
    RecordingGuard { _private: () }
}

/// The currently installed collector of this thread, if any.
pub fn current() -> Option<SpanCollector> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Restores the previously installed collector (if any) on drop.  Returned by [`install`].
#[derive(Debug)]
pub struct RecordingGuard {
    _private: (),
}

impl Drop for RecordingGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Opens a driver-phase span named `name` on the installed collector (no-op without one).
///
/// The span closes when the guard drops; attribute its deterministic cost with
/// [`PhaseGuard::charge`].
pub fn phase(name: impl Into<String>) -> PhaseGuard {
    open_span(name.into(), SpanKind::Phase)
}

/// Opens an executor-run span (the executors call this; [`SpanKind::Exec`] spans are trace
/// detail and are skipped by [`phase_rollup`]).
pub fn exec_span(name: impl Into<String>) -> PhaseGuard {
    open_span(name.into(), SpanKind::Exec)
}

fn open_span(name: String, kind: SpanKind) -> PhaseGuard {
    let Some(collector) = current() else { return PhaseGuard { target: None } };
    let start_ns = collector.elapsed_ns();
    let mut state = collector.lock();
    let parent = state.stack.last().copied();
    let index = state.spans.len();
    state.spans.push(SpanRecord {
        name,
        kind,
        parent,
        report: RoundReport::zero(),
        start_ns,
        wall_ns: 0,
        peak_frontier: 0,
        frontier_steps: 0,
        rounds: Vec::new(),
        open: true,
    });
    state.stack.push(index);
    drop(state);
    PhaseGuard { target: Some((collector, index)) }
}

/// Records an already-closed child span of the currently open span, carrying a computed
/// report (no-op without an installed collector).  Used for exact attributions that are
/// derived after the fact rather than measured in place — see [`residual`].
pub fn record_leaf(name: impl Into<String>, report: RoundReport) {
    let Some(collector) = current() else { return };
    let start_ns = collector.elapsed_ns();
    let mut state = collector.lock();
    let parent = state.stack.last().copied();
    state.spans.push(SpanRecord {
        name: name.into(),
        kind: SpanKind::Phase,
        parent,
        report,
        start_ns,
        wall_ns: 0,
        peak_frontier: 0,
        frontier_steps: 0,
        rounds: Vec::new(),
        open: false,
    });
}

/// Feeds the executor counters and histograms of the installed collector's metrics
/// registry with one finished run (no-op without a collector).  All three executors call
/// this once per successful run.
pub fn record_run(report: &RoundReport) {
    let Some(collector) = current() else { return };
    let mut state = collector.lock();
    let metrics = &mut state.metrics;
    metrics.incr("executor.runs", 1);
    metrics.incr("executor.rounds", report.rounds as u64);
    metrics.incr("executor.messages", report.messages as u64);
    metrics.incr("executor.total_bits", report.total_bits);
    metrics.observe("executor.rounds_per_run", report.rounds as u64);
    metrics.observe("executor.messages_per_run", report.messages as u64);
}

/// Increments an arbitrary named counter on the installed collector's metrics registry
/// (no-op without a collector).  The dynamic-coloring driver and the serving layer feed
/// their `dynamic.*` / `service.*` traffic counters through here; executor and
/// palette-engine ingestion keep their dedicated [`record_run`] / [`record_palette`]
/// entry points.
pub fn incr_counter(name: &str, by: u64) {
    let Some(collector) = current() else { return };
    let mut state = collector.lock();
    state.metrics.incr(name, by);
}

/// Feeds one sample into a named power-of-two histogram of the installed collector's
/// metrics registry (no-op without a collector) — e.g. per-batch frontier sizes or repair
/// latencies from the serving layer.
pub fn observe_value(name: &str, value: u64) {
    let Some(collector) = current() else { return };
    let mut state = collector.lock();
    state.metrics.observe(name, value);
}

/// Drains the given palette-engine reuse counters into the installed collector's metrics
/// registry (no-op without a collector): global `palette.*` counters plus per-phase
/// copies tagged with the name of the innermost open span, so `--trace-out` runs
/// attribute pick-path work to the phase that performed it.
///
/// Takes the counters via [`arbcolor_graph::PaletteStats::take`], so drivers can flush the
/// same shared stats object once per phase without double counting.
pub fn record_palette(stats: &arbcolor_graph::PaletteStats) {
    let snap = stats.take();
    if snap == arbcolor_graph::PaletteStatsSnapshot::default() {
        return;
    }
    let Some(collector) = current() else { return };
    let mut state = collector.lock();
    let phase = state.stack.last().copied().map(|i| state.spans[i].name.clone());
    let metrics = &mut state.metrics;
    metrics.incr("palette.picks_served", snap.picks_served);
    metrics.incr("palette.colors_struck", snap.colors_struck);
    metrics.incr("palette.words_cleared", snap.words_cleared);
    if let Some(phase) = phase {
        metrics.incr(&format!("palette.{phase}.picks_served"), snap.picks_served);
        metrics.incr(&format!("palette.{phase}.colors_struck"), snap.colors_struck);
        metrics.incr(&format!("palette.{phase}.words_cleared"), snap.words_cleared);
    }
}

/// The exact remainder of `total` after removing the `part` attributed elsewhere:
/// rounds/messages/bits subtract (saturating), while `max_edge_bits` keeps `total`'s peak
/// so that `part.then(residual(total, part))` reproduces `total` exactly.
pub fn residual(total: RoundReport, part: RoundReport) -> RoundReport {
    RoundReport {
        rounds: total.rounds.saturating_sub(part.rounds),
        messages: total.messages.saturating_sub(part.messages),
        total_bits: total.total_bits.saturating_sub(part.total_bits),
        max_edge_bits: total.max_edge_bits,
    }
}

/// Aggregates the direct [`SpanKind::Phase`] children of span `parent` by name, in
/// first-seen order, composing repeated names sequentially with [`RoundReport::then`].
///
/// When the drivers charge their phase spans with the ledger entries the headline report
/// is composed from, the `then`-fold of the returned reports equals the headline
/// [`RoundReport`] exactly.
pub fn phase_rollup(spans: &[SpanRecord], parent: usize) -> Vec<(String, RoundReport)> {
    let mut rollup: Vec<(String, RoundReport)> = Vec::new();
    for span in spans {
        if span.parent != Some(parent) || span.kind != SpanKind::Phase {
            continue;
        }
        match rollup.iter_mut().find(|(name, _)| *name == span.name) {
            Some((_, report)) => *report = report.then(span.report),
            None => rollup.push((span.name.clone(), span.report)),
        }
    }
    rollup
}

/// RAII handle of an open span; the span closes when the guard drops.
///
/// All methods are no-ops when the guard was created without an installed collector.
#[derive(Debug)]
pub struct PhaseGuard {
    target: Option<(SpanCollector, usize)>,
}

impl PhaseGuard {
    /// Attributes a deterministic cost delta to this span (accumulating via
    /// [`RoundReport::then`] when called repeatedly).
    pub fn charge(&self, report: RoundReport) {
        if let Some((collector, index)) = &self.target {
            let mut state = collector.lock();
            let span = &mut state.spans[*index];
            span.report = span.report.then(report);
        }
    }

    /// Attaches a recorded per-round trace: frontier statistics fold into the span and
    /// every round becomes a [`RoundInstant`] (a Chrome instant event on export).
    pub fn attach_trace(&self, trace: &TraceRecorder) {
        if let Some((collector, index)) = &self.target {
            let mut state = collector.lock();
            let span = &mut state.spans[*index];
            for round in trace.rounds() {
                span.peak_frontier = span.peak_frontier.max(round.frontier);
                span.frontier_steps += round.frontier;
                span.rounds.push(RoundInstant {
                    round: round.round,
                    frontier: round.frontier,
                    messages: round.messages,
                    total_bits: round.total_bits,
                    wall_ns: round.wall_ns,
                });
            }
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((collector, index)) = self.target.take() {
            let end_ns = collector.elapsed_ns();
            let mut state = collector.lock();
            let start_ns = state.spans[index].start_ns;
            state.spans[index].wall_ns = end_ns.saturating_sub(start_ns);
            state.spans[index].open = false;
            // Well-nested by RAII; `retain` keeps this robust if a guard outlives an
            // inner one across an unwind.
            state.stack.retain(|&i| i != index);
        }
    }
}

/// Renders the span tree and the metrics registry as an indented text table — the
/// human-readable companion of the Chrome export.
pub fn summary_table(collector: &SpanCollector) -> String {
    use std::fmt::Write as _;
    let spans = collector.snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>8} {:>12} {:>14} {:>10}",
        "span", "rounds", "messages", "total_bits", "wall_ms"
    );
    let mut depths: Vec<usize> = Vec::with_capacity(spans.len());
    for (i, span) in spans.iter().enumerate() {
        let depth = span.parent.map(|p| depths[p] + 1).unwrap_or(0);
        depths.push(depth);
        let label = format!("{}{}", "  ".repeat(depth), span.name);
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>14} {:>10.3}",
            label,
            span.report.rounds,
            span.report.messages,
            span.report.total_bits,
            span.wall_ns as f64 / 1e6,
        );
        let _ = i;
    }
    let metrics = collector.metrics();
    if !metrics.is_empty() {
        let _ = writeln!(out, "\nmetrics:");
        out.push_str(&metrics.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_charge_and_restore_on_drop() {
        let collector = SpanCollector::new();
        let guard = install(&collector);
        {
            let outer = phase("outer");
            outer.charge(RoundReport::new(2, 10));
            {
                let inner = phase("inner");
                inner.charge(RoundReport::new(1, 3));
            }
            record_leaf("leaf", RoundReport::new(4, 4));
        }
        drop(guard);
        // Recording is off again: this span must not land in the collector.
        let _ = phase("after");
        let spans = collector.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].report, RoundReport::new(2, 10));
        assert!(!spans[0].open);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].name, "leaf");
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[2].wall_ns, 0);
    }

    #[test]
    fn installs_nest_and_restore_the_previous_collector() {
        let a = SpanCollector::new();
        let b = SpanCollector::new();
        let ga = install(&a);
        {
            let gb = install(&b);
            let _ = phase("in-b");
            drop(gb);
        }
        let _ = phase("in-a");
        drop(ga);
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(a.snapshot()[0].name, "in-a");
        assert_eq!(b.snapshot()[0].name, "in-b");
    }

    #[test]
    fn no_collector_means_no_ops() {
        assert!(current().is_none());
        let guard = phase("nowhere");
        guard.charge(RoundReport::new(1, 1));
        record_leaf("nowhere-leaf", RoundReport::zero());
        record_run(&RoundReport::new(3, 3));
    }

    #[test]
    fn residual_is_exact_under_then() {
        let total = RoundReport { rounds: 10, messages: 100, total_bits: 400, max_edge_bits: 9 };
        let part = RoundReport { rounds: 3, messages: 40, total_bits: 150, max_edge_bits: 4 };
        let rest = residual(total, part);
        assert_eq!(part.then(rest), total);
        // Saturation never underflows.
        assert_eq!(residual(part, total).rounds, 0);
    }

    #[test]
    fn rollup_aggregates_phase_children_by_name_and_skips_exec_spans() {
        let collector = SpanCollector::new();
        let _guard = install(&collector);
        let run = phase("run");
        run.charge(RoundReport::new(9, 9));
        record_leaf("a", RoundReport::new(2, 20));
        {
            let e = exec_span("flood");
            e.charge(RoundReport::new(100, 100));
        }
        record_leaf("b", RoundReport::new(3, 30));
        record_leaf("a", RoundReport::new(1, 10));
        {
            // Grandchildren are not part of the run's direct rollup.
            let child = phase("b");
            record_leaf("deep", RoundReport::new(7, 7));
            child.charge(RoundReport::new(4, 40));
        }
        drop(run);
        let spans = collector.snapshot();
        let rollup = phase_rollup(&spans, 0);
        assert_eq!(
            rollup,
            vec![
                ("a".to_string(), RoundReport::new(3, 30)),
                ("b".to_string(), RoundReport::new(7, 70)),
            ]
        );
    }

    #[test]
    fn attach_trace_folds_frontier_stats_and_round_instants() {
        use crate::trace::{RoundTrace, TraceRecorder};
        let collector = SpanCollector::new();
        let _guard = install(&collector);
        let mut trace = TraceRecorder::new();
        trace.record(RoundTrace {
            round: 1,
            frontier: 5,
            messages: 9,
            total_bits: 20,
            ..RoundTrace::default()
        });
        trace.record(RoundTrace { round: 2, frontier: 2, ..RoundTrace::default() });
        {
            let span = exec_span("traced");
            span.attach_trace(&trace);
        }
        let spans = collector.snapshot();
        assert_eq!(spans[0].peak_frontier, 5);
        assert_eq!(spans[0].frontier_steps, 7);
        assert_eq!(spans[0].rounds.len(), 2);
        assert_eq!(spans[0].rounds[0].messages, 9);
        assert_eq!(spans[0].rounds[0].total_bits, 20);
    }

    #[test]
    fn summary_table_lists_spans_with_indentation() {
        let collector = SpanCollector::new();
        let _guard = install(&collector);
        {
            let outer = phase("outer");
            outer.charge(RoundReport::new(1, 2));
            record_leaf("child", RoundReport::new(3, 4));
        }
        record_run(&RoundReport::new(1, 2));
        let table = summary_table(&collector);
        assert!(table.contains("outer"));
        assert!(table.contains("  child"), "children indent under parents:\n{table}");
        assert!(table.contains("executor.runs"));
    }
}
